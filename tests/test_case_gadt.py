"""Pattern matching (Appendix A) and existential/GADT-style constructors."""

import pytest

from repro.core import Environment, Inferencer
from repro.core.env import DataCon
from repro.core.errors import GIError, SkolemEscapeError, UnificationError
from repro.core.types import BOOL, INT, TCon, TVar, forall, fun, list_of
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import figure2_env


@pytest.fixture(scope="module")
def gi():
    return Inferencer(figure2_env())


class TestPlainCase:
    def test_list_case(self, gi):
        result = gi.infer(
            parse_term("case [1, 2] of { Cons x xs -> x ; Nil -> 0 }")
        )
        assert str(result.type_) == "Int"

    def test_maybe_case(self, gi):
        result = gi.infer(
            parse_term("case Just True of { Just b -> b ; Nothing -> False }")
        )
        assert str(result.type_) == "Bool"

    def test_branch_types_must_agree(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term("case Just 1 of { Just x -> x ; Nothing -> True }"))

    def test_scrutinee_must_match_constructor(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term("case 1 of { Just x -> x ; Nothing -> 2 }"))

    def test_wrong_arity_pattern(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term("case Just 1 of { Just x y -> x ; Nothing -> 2 }"))

    def test_mixed_constructors_rejected(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term("case Just 1 of { Just x -> x ; Nil -> 2 }"))

    def test_case_on_polymorphic_list(self, gi):
        # The paper's point: matching on [∀a.a→a] keeps the elements
        # polymorphic in the branch.
        result = gi.infer(
            parse_term("case ids of { Cons f fs -> f 1 ; Nil -> 0 }")
        )
        assert str(result.type_) == "Int"

    def test_polymorphic_element_used_at_two_types(self, gi):
        result = gi.infer(
            parse_term(
                "case ids of { Cons f fs -> pair (f 1) (f True) ; Nil -> (0, False) }"
            )
        )
        assert str(result.type_) == "(Int, Bool)"

    def test_case_result_can_feed_application(self, gi):
        result = gi.infer(
            parse_term("inc (case Just 1 of { Just x -> x ; Nothing -> 0 })")
        )
        assert str(result.type_) == "Int"


def _existential_env() -> Environment:
    """data Box = forall b. MkBox b ([b] -> Int)"""
    env = figure2_env()
    b = TVar("b")
    env = env.with_datacon(
        DataCon(
            "MkBox",
            universals=(),
            existentials=("b",),
            fields=(b, fun(list_of(b), INT)),
            result_con="Box",
        )
    )
    return env.extended(
        "box", parse_type("Box")
    ).extended(
        "mkBox", parse_type("forall b. b -> ([b] -> Int) -> Box")
    )


class TestExistentials:
    def test_existential_use_inside_branch(self):
        gi = Inferencer(_existential_env())
        result = gi.infer(
            parse_term("case box of { MkBox x f -> f (single x) }")
        )
        assert str(result.type_) == "Int"

    def test_existential_escape_rejected(self):
        gi = Inferencer(_existential_env())
        with pytest.raises(GIError):
            gi.infer(parse_term("case box of { MkBox x f -> x }"))

    def test_existential_escape_via_list(self):
        gi = Inferencer(_existential_env())
        with pytest.raises(GIError):
            gi.infer(parse_term("case box of { MkBox x f -> single x }"))


def _gadt_env() -> Environment:
    """A GADT-flavoured expression type:

        data Expr a where
          IntLit  :: Int  -> Expr Int
          BoolLit :: Bool -> Expr Bool

    encoded with local equality givens on the constructors.
    """
    env = figure2_env()
    a = TVar("a")
    env = env.with_datacon(
        DataCon(
            "IntLit",
            universals=("a",),
            existentials=(),
            fields=(INT,),
            result_con="Expr",
            givens=((a, INT),),
        )
    ).with_datacon(
        DataCon(
            "BoolLit",
            universals=("a",),
            existentials=(),
            fields=(BOOL,),
            result_con="Expr",
            givens=((a, BOOL),),
        )
    )
    return env.extended_many(
        {
            "intLit": parse_type("Int -> Expr Int"),
            "boolLit": parse_type("Bool -> Expr Bool"),
            "anExpr": parse_type("Expr Int"),
        }
    )


class TestGADTs:
    def test_refinement_in_branch(self):
        # Inside the IntLit branch, a ~ Int is assumed, so the payload
        # can be used at Int.
        gi = Inferencer(_gadt_env())
        result = gi.infer(
            parse_term(
                "case anExpr of { IntLit n -> inc n ; BoolLit b -> 0 }"
            )
        )
        assert str(result.type_) == "Int"

    def test_construction(self):
        gi = Inferencer(_gadt_env())
        assert str(gi.infer(parse_term("intLit 1")).type_) == "Expr Int"
