"""Deep types must never escape as ``RecursionError``.

The core traversals (``ftv``/``fuv``/``contains_uvar``/``subst_uvars``/
``zonk``/``unify``/``render_type``/``alpha_equal``) are iterative with
explicit stacks, so type depth is bounded by memory — not by Python's
recursion limit.  These tests drive each one at depths far beyond
``sys.getrecursionlimit()``; a regression to recursive form fails them
immediately.  Budgets still apply: a depth *budget* must trip as a
:class:`BudgetExceededError`, never as a raw ``RecursionError``.
"""

import sys

import pytest

from repro.core.errors import BudgetExceededError, UnificationError
from repro.core.sorts import Sort
from repro.core.types import (
    INT,
    TCon,
    UVar,
    alpha_equal,
    contains_uvar,
    ftv,
    fun,
    fuv,
    render_type,
    subst_uvars,
)
from repro.core.unify import Unifier
from repro.robustness.budget import Budget

DEPTH = 50_000
assert DEPTH > sys.getrecursionlimit()


def deep_arrow(depth: int, leaf=INT):
    type_ = leaf
    for _ in range(depth):
        type_ = fun(INT, type_)
    return type_


class TestDeepTraversals:
    def test_ftv_fuv_contains(self):
        variable = UVar("u0", Sort.M)
        type_ = deep_arrow(DEPTH, leaf=variable)
        assert list(fuv(type_)) == [variable]
        assert ftv(type_) == set()
        assert contains_uvar(type_, variable)
        assert not contains_uvar(type_, UVar("other", Sort.M))

    def test_subst_rebuilds_deep_spine(self):
        variable = UVar("u0", Sort.M)
        type_ = deep_arrow(DEPTH, leaf=variable)
        image = subst_uvars({variable: INT}, type_)
        assert not contains_uvar(image, variable)
        # Identity-sharing: substituting nothing returns the same object.
        assert subst_uvars({UVar("other", Sort.M): INT}, type_) is type_

    def test_alpha_equal_deep(self):
        left = deep_arrow(DEPTH)
        right = deep_arrow(DEPTH)
        assert alpha_equal(left, right)
        assert not alpha_equal(left, deep_arrow(DEPTH, leaf=TCon("Bool")))

    def test_render_deep(self):
        rendered = render_type(deep_arrow(DEPTH))
        assert rendered.startswith("Int -> Int")

    def test_hash_and_equality_deep(self):
        left = deep_arrow(DEPTH)
        right = deep_arrow(DEPTH)
        assert hash(left) == hash(right)
        assert left == right


class TestDeepUnifier:
    def test_zonk_through_deep_binding(self):
        unifier = Unifier()
        variable = UVar("u0", Sort.M)
        unifier.bind(variable, deep_arrow(DEPTH))
        assert unifier.zonk(variable) == deep_arrow(DEPTH)

    def test_zonk_long_var_chain(self):
        unifier = Unifier()
        chain = [UVar(f"u{index}", Sort.M) for index in range(DEPTH)]
        for left, right in zip(chain, chain[1:]):
            unifier.assign(left, right)
        unifier.assign(chain[-1], INT)
        assert unifier.zonk(chain[0]) == INT

    def test_unify_deep_spines(self):
        unifier = Unifier()
        variable = UVar("u0", Sort.M)
        unifier.unify(deep_arrow(DEPTH, leaf=variable), deep_arrow(DEPTH))
        assert unifier.zonk(variable) == INT

    def test_unify_deep_mismatch_is_type_error(self):
        unifier = Unifier()
        with pytest.raises(UnificationError):
            unifier.unify(deep_arrow(DEPTH), deep_arrow(DEPTH, leaf=TCon("Bool")))

    def test_occurs_check_deep(self):
        from repro.core.errors import OccursCheckError

        unifier = Unifier()
        variable = UVar("u0", Sort.M)
        with pytest.raises(OccursCheckError):
            unifier.bind(variable, deep_arrow(DEPTH, leaf=variable))

    def test_depth_budget_still_trips_as_budget_error(self):
        # The worklist unifier keeps the old recursion-depth accounting,
        # so ``max_unify_depth`` semantics are unchanged — and the error
        # class stays BudgetExceededError even on hyper-deep input.
        budget = Budget(max_unify_depth=64).start()
        unifier = Unifier(budget=budget)
        with pytest.raises(BudgetExceededError):
            unifier.unify(deep_arrow(DEPTH), deep_arrow(DEPTH))
