"""Inference output must not depend on ``PYTHONHASHSEED``.

The engine iterates over free-variable collections in many places
(generalisation order, promotion, defaulting, watch registration); if
any of those iterate a hash-ordered ``set`` of variables, binder names
and trace streams silently reshuffle between interpreter runs.  The core
therefore keeps every ``fuv``/``ftv`` result in first-occurrence order
(:class:`repro.core.types.OrderedSet`) — and this test proves the
end-to-end property the hard way: two subprocesses with *different* hash
seeds must produce byte-identical pretty-printed types and canonicalized
trace streams.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Every run infers the Figure-2 sweep plus the synthetic stress terms and
# prints: one line per term (type or error class), then every trace event
# with the volatile fields (timestamps, durations, thread ids) removed.
CHILD_SCRIPT = r"""
import json, sys
from repro.core.errors import GIError
from repro.core.infer import Inferencer
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.evalsuite.workloads import deep_chain_term, defaulting_fan, mixed_program
from repro.observability import JsonlWriter, Tracer

VOLATILE = {"ts", "start", "end", "dur", "duration", "elapsed_seconds", "thread"}

def scrub(value):
    if isinstance(value, dict):
        return {k: scrub(v) for k, v in sorted(value.items()) if k not in VOLATILE}
    if isinstance(value, list):
        return [scrub(item) for item in value]
    return value

env = figure2_env()
terms = [example.term for example in FIGURE2]
terms += [deep_chain_term(40), defaulting_fan(8), mixed_program(12, seed=7)]

trace_path = sys.argv[1]
with open(trace_path, "w", encoding="utf-8") as handle:
    tracer = Tracer(sink=JsonlWriter(handle))
    inferencer = Inferencer(env, tracer=tracer)
    for term in terms:
        try:
            print(str(inferencer.infer(term).type_))
        except GIError as error:
            print(f"{type(error).__name__}: {error}")

with open(trace_path, "r", encoding="utf-8") as handle:
    for line in handle:
        print(json.dumps(scrub(json.loads(line)), sort_keys=True))
"""


def _run(hashseed: str, tmp_path: Path, tag: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    trace_path = str(tmp_path / f"trace-{tag}.jsonl")
    completed = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, trace_path],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_output_identical_across_hash_seeds(tmp_path):
    first = _run("0", tmp_path, "a")
    second = _run("4242", tmp_path, "b")
    assert first, "the child run must produce output"
    if first != second:
        for line_a, line_b in zip(first.splitlines(), second.splitlines()):
            assert line_a == line_b, f"first divergence:\n  {line_a}\n  {line_b}"
    assert first == second

    # Sanity: the stream really contains both inference results and the
    # solver's scheduling events, so the comparison has teeth.
    assert "forall" in first
    assert '"event"' in first


# An arena snapshot taken in one interpreter must restore in another —
# even one with a different hash seed — to the exact same node table: the
# intern memo is re-derived from the arrays, never serialised as a dict,
# so hash-ordering can't leak into node ids.  Each child restores the
# parent's prelude snapshot, runs the Figure-2 sweep against the restored
# table, prints every inferred type plus a digest of its own re-snapshot.
RESTORE_SCRIPT = r"""
import hashlib, sys
from repro.core.arena import ArenaInternTable
from repro.core.errors import GIError
from repro.core.infer import Inferencer
from repro.evalsuite.figure2 import FIGURE2, figure2_env

with open(sys.argv[1], "rb") as handle:
    buffer = handle.read()
table = ArenaInternTable.restore(buffer)
print(f"nodes={len(table)}")
print(f"resnapshot={hashlib.sha256(table.snapshot()).hexdigest()}")

inferencer = Inferencer(figure2_env(), intern=table)
for example in FIGURE2:
    try:
        print(str(inferencer.infer(example.term).type_))
    except GIError as error:
        print(f"{type(error).__name__}: {error}")
print(f"stats={sorted(table.stats().items())}")
"""


def _run_restore(hashseed: str, snapshot_path: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", RESTORE_SCRIPT, snapshot_path],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_arena_snapshot_restores_identically_across_hash_seeds(tmp_path):
    from repro.core.arena import snapshot_environment
    from repro.evalsuite.figure2 import figure2_env

    buffer = snapshot_environment(figure2_env())
    snapshot_path = tmp_path / "prelude.arena"
    snapshot_path.write_bytes(buffer)

    first = _run_restore("0", str(snapshot_path))
    second = _run_restore("4242", str(snapshot_path))
    assert first == second

    # The children restored a non-trivial table and their own snapshots
    # round-trip to the parent's bytes exactly.
    import hashlib

    assert first.startswith("nodes=")
    assert int(first.splitlines()[0].split("=")[1]) > 0
    assert f"resnapshot={hashlib.sha256(buffer).hexdigest()}" in first
    assert "forall" in first
