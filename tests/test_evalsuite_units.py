"""Unit tests for the evaluation-suite plumbing: report rendering,
workload generators, the Figure 2 corpus metadata, and evidence store."""

import pytest

from repro.core import Inferencer
from repro.core.evidence import EvidenceStore, GenEvidence, TakeArg, TypeArgs
from repro.core.terms import term_size
from repro.core.types import INT, UVar
from repro.core.sorts import Sort
from repro.evalsuite.figure2 import BY_KEY, FIGURE2, REPAIRS
from repro.evalsuite.report import CHECK, CROSS, mark, render_table
from repro.evalsuite.workloads import (
    application_chain,
    impredicative_pipeline,
    lambda_tower,
    let_chain,
    mixed_program,
    wide_application,
)
from repro.evalsuite.figure2 import figure2_env

ENV = figure2_env()


class TestReport:
    def test_mark(self):
        assert mark(True) == CHECK
        assert mark(False) == CROSS

    def test_render_alignment(self):
        table = render_table(["a", "bbbb"], [["xx", "y"], ["z", "wwwww"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_render_title(self):
        table = render_table(["h"], [["v"]], title="T")
        assert table.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestWorkloads:
    def test_application_chain_size(self):
        assert term_size(application_chain(10)) == 21

    def test_all_workloads_typecheck(self):
        gi = Inferencer(ENV)
        for term in (
            application_chain(5),
            wide_application(4),
            let_chain(5),
            lambda_tower(4),
            impredicative_pipeline(4),
            mixed_program(5, seed=1),
        ):
            assert gi.accepts(term), term

    def test_impredicative_pipeline_type(self):
        gi = Inferencer(ENV)
        result = gi.infer(impredicative_pipeline(3))
        assert str(result.type_) == "[forall a. a -> a]"

    def test_mixed_program_deterministic(self):
        assert mixed_program(7, seed=3) == mixed_program(7, seed=3)

    def test_let_chain_empty(self):
        gi = Inferencer(ENV)
        assert str(gi.infer(let_chain(0)).type_) == "Int"


class TestFigure2Corpus:
    def test_unique_keys(self):
        keys = [ex.key for ex in FIGURE2]
        assert len(keys) == len(set(keys))

    def test_by_key_is_complete(self):
        assert set(BY_KEY) == {ex.key for ex in FIGURE2}

    def test_all_sources_parse(self):
        for ex in FIGURE2:
            assert ex.term is not None

    def test_all_gi_types_parse(self):
        from repro.syntax import parse_type

        for ex in FIGURE2:
            if ex.gi_type:
                parse_type(ex.gi_type)

    def test_repairs_target_rejected_rows(self):
        for key in REPAIRS:
            assert not BY_KEY[key].expected["GI"], key

    def test_groups(self):
        counts = {}
        for ex in FIGURE2:
            counts[ex.group] = counts.get(ex.group, 0) + 1
        assert counts == {"A": 12, "B": 2, "C": 10, "D": 5, "E": 3}


class TestEvidenceStore:
    def test_zonk_applies_everywhere(self):
        store = EvidenceStore()
        alpha = UVar("x", Sort.M)
        store.inst_trace(("p",)).extend([TypeArgs([alpha]), TakeArg()])
        info = store.gen_info(("q",))
        info.star_type_args = [alpha]
        store.lam_binders[("r",)] = alpha
        store.let_types[("s",)] = alpha
        case = store.case_info(("t",))
        case.tycon_args = [alpha]
        case.field_types = [[alpha]]

        store.zonk(lambda _t: INT)
        assert store.inst_traces[("p",)][0].types == [INT]
        assert store.gen_infos[("q",)].star_type_args == [INT]
        assert store.lam_binders[("r",)] == INT
        assert store.let_types[("s",)] == INT
        assert store.case_infos[("t",)].tycon_args == [INT]
        assert store.case_infos[("t",)].field_types == [[INT]]

    def test_gen_info_is_memoised(self):
        store = EvidenceStore()
        assert store.gen_info(("a",)) is store.gen_info(("a",))

    def test_default_gen_evidence(self):
        info = GenEvidence()
        assert not info.star and not info.skolems
