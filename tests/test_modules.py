"""The module layer's front half: parsing and binding-group analysis.

Includes the golden tests for module-file parse errors: every rejection
carries the *file* position of the offending token, even when the fault
sits deep inside the third multi-line binding.
"""

import pytest

from repro.core.errors import DuplicateBindingError, ParseError
from repro.core.terms import App, Lam, Var
from repro.modules import (
    GraphSummary,
    binding_groups,
    dependencies,
    dependents_closure,
    parse_module,
    parse_module_file,
    strongly_connected_components,
    topo_layers,
)

WELL_FORMED = """\
module Demo where

-- signatures may precede their bindings
setters :: [forall a. a -> a]
setters = id : ids

pick =
  head
    setters

n :: Int
n = runST $ argST
"""


class TestParseModule:
    def test_header_and_order(self):
        module = parse_module(WELL_FORMED)
        assert module.name == "Demo"
        assert module.names == ["setters", "pick", "n"]

    def test_signatures_attach(self):
        module = parse_module(WELL_FORMED)
        assert str(module.binding("setters").signature) == "[forall a. a -> a]"
        assert module.binding("pick").signature is None
        assert str(module.binding("n").signature) == "Int"

    def test_multiline_continuation(self):
        module = parse_module(WELL_FORMED)
        pick = module.binding("pick").term
        assert pick == App(Var("head"), (Var("setters"),))

    def test_positions_are_file_positions(self):
        module = parse_module(WELL_FORMED)
        assert module.binding("setters").line == 5
        assert module.binding("pick").line == 7
        assert module.binding("n").line == 12
        assert module.binding("n").signature_line == 11

    def test_no_header_is_fine(self):
        module = parse_module("x = 1\n")
        assert module.name is None
        assert module.names == ["x"]

    def test_source_key_ignores_formatting(self):
        dense = parse_module("f = \\x -> single x\n")
        airy = parse_module("f =\n  \\x ->\n    single x   -- comment\n")
        assert dense.binding("f").source_key == airy.binding("f").source_key

    def test_source_key_sees_signature_changes(self):
        signed = parse_module("f :: Int -> [Int]\nf = \\x -> single x\n")
        unsigned = parse_module("f = \\x -> single x\n")
        assert signed.binding("f").source_key != unsigned.binding("f").source_key

    def test_parse_module_file(self, tmp_path):
        path = tmp_path / "demo.gi"
        path.write_text(WELL_FORMED)
        module = parse_module_file(str(path))
        assert module.path == str(path)
        assert module.names == ["setters", "pick", "n"]


class TestModuleParseErrorsGolden:
    """Golden positions: the error points at the offending binding."""

    def _fail(self, source, error=ParseError):
        with pytest.raises(error) as info:
            parse_module(source)
        return info.value

    def test_error_deep_in_third_binding(self):
        source = "a = 1\n\nb = 2\n\nc =\n  inc )\n"
        error = self._fail(source)
        assert (error.line, error.column) == (6, 7)
        assert "6:7" in str(error)

    def test_bad_separator_position(self):
        error = self._fail("a = 1\nb :: Int\nc inc 1\n")
        assert (error.line, error.column) == (3, 3)
        assert "expected `::` or `=` after `c`" in str(error)

    def test_leading_indentation_rejected(self):
        error = self._fail("  x = 1\n")
        assert (error.line, error.column) == (1, 3)

    def test_orphan_signature_points_at_signature(self):
        error = self._fail("a = 1\n\nghost :: Int\n")
        assert (error.line, error.column) == (3, 1)
        assert "ghost" in str(error)

    def test_malformed_type_in_signature(self):
        error = self._fail("a = 1\nb :: forall .\nb = 2\n")
        assert error.line == 2

    def test_module_header_trailing_garbage(self):
        error = self._fail("module Demo where extra\nx = 1\n")
        assert (error.line, error.column) == (1, 19)

    def test_non_binding_declaration(self):
        error = self._fail("a = 1\nData = 3\n")
        assert (error.line, error.column) == (2, 1)

    def test_duplicate_binding(self):
        error = self._fail("x = 1\ny = 2\nx = 3\n", DuplicateBindingError)
        assert error.name == "x"
        assert error.kind == "binding"
        assert (error.line, error.first_line) == (3, 1)
        assert "duplicate binding for `x` at 3:1" in str(error)

    def test_duplicate_signature(self):
        error = self._fail(
            "x :: Int\nx :: Bool\nx = 1\n", DuplicateBindingError
        )
        assert error.kind == "signature"
        assert (error.line, error.first_line) == (2, 1)


CHAIN = "a = 1\nb = inc a\nc = inc b\nfree = head ids\n"
MUTUAL = (
    "evens :: Int -> Bool\nevens = \\x -> odds x\n"
    "odds :: Int -> Bool\nodds = \\x -> evens x\n"
    "use = evens 3\n"
)


class TestDependencyGraph:
    def test_only_module_names_count(self):
        graph = dependencies(parse_module(CHAIN))
        assert graph == {"a": set(), "b": {"a"}, "c": {"b"}, "free": set()}

    def test_scc_order_is_dependency_first(self):
        components = strongly_connected_components(
            {"a": set(), "b": {"a"}, "c": {"b"}}
        )
        assert components == [["a"], ["b"], ["c"]]

    def test_mutual_recursion_is_one_group(self):
        groups = binding_groups(parse_module(MUTUAL))
        shapes = [group.names for group in groups]
        assert ("evens", "odds") in shapes
        recursive = next(g for g in groups if len(g.names) == 2)
        assert recursive.recursive
        use = next(g for g in groups if g.names == ("use",))
        assert use.deps == {"evens"}
        assert not use.recursive

    def test_self_recursion_detected(self):
        groups = binding_groups(parse_module("loop = \\x -> loop x\n"))
        assert groups[0].recursive

    def test_topo_layers_are_independent(self):
        module = parse_module(CHAIN)
        layers = topo_layers(binding_groups(module))
        names = [sorted(g.names[0] for g in layer) for layer in layers]
        assert names == [["a", "free"], ["b"], ["c"]]

    def test_dependents_closure(self):
        module = parse_module(CHAIN)
        assert dependents_closure(module, {"a"}) == {"a", "b", "c"}
        assert dependents_closure(module, {"c"}) == {"c"}
        assert dependents_closure(module, {"free"}) == {"free"}

    def test_graph_summary(self):
        summary = GraphSummary.of(binding_groups(parse_module(MUTUAL)))
        assert summary.bindings == 3
        assert summary.groups == 2
        assert summary.largest_group == 2
        assert summary.recursive_groups == 1
        assert summary.layers == 2

    def test_long_chain_does_not_recurse(self):
        # The iterative Tarjan must survive a chain far deeper than the
        # Python recursion limit would allow a recursive version.
        lines = ["x0 = 1"]
        lines += [f"x{i} = inc x{i - 1}" for i in range(1, 1500)]
        module = parse_module("\n".join(lines) + "\n")
        groups = binding_groups(module)
        assert len(groups) == 1500
        assert groups[0].names == ("x0",)
        assert groups[-1].names == ("x1499",)
