"""Tests for the observability layer (tracing, metrics, JSONL, explain).

Covers the tentpole contracts:

* tracing is pure observation — identical inference results with no
  tracer, the null tracer, and a live tracer;
* the span tree is well-formed, including under ``--jobs`` concurrency
  where worker threads attach spans via explicit parents;
* every emitted event round-trips through the JSONL schema
  (:func:`validate_event` is the single source of truth) and the span
  tree is rebuildable from the file alone;
* the explainer narrates solver traces in paper vocabulary;
* the CLI surfaces (``--trace``/``--metrics``/``--explain``,
  ``repro trace``, ``--seed``) behave.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.errors import GIError, InternalError
from repro.core.infer import Inferencer
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.evalsuite.modules_corpus import synthetic_module_source
from repro.modules import ModuleCache, ModuleEngine
from repro.observability import (
    NULL_TRACER,
    JsonlWriter,
    NullTracer,
    Tracer,
    explain_tracer,
    read_trace,
    render_span_tree,
    spans_from_events,
    validate_event,
    validate_line,
)
from repro.robustness import check_batch, seeded_fault_plan
from repro.syntax import parse_term

ENV = figure2_env()


def _traced_infer(source: str) -> Tracer:
    tracer = Tracer()
    Inferencer(ENV, tracer=tracer).infer(parse_term(source))
    return tracer


class TestTracerCore:
    def test_span_nesting_single_thread(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("tick", n=1)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent_id == outer.span_id
        assert outer.end is not None and inner.end is not None
        assert inner.start >= outer.start and inner.end <= outer.end

    def test_explicit_parent_crosses_threads(self):
        import threading

        tracer = Tracer()
        with tracer.span("layer") as layer:

            def worker():
                with tracer.span("group", parent=layer):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        (child,) = layer.children
        assert child.name == "group"
        assert child.parent_id == layer.span_id

    def test_attrs_are_sanitized_to_json_types(self):
        tracer = Tracer()
        with tracer.span("s", type=parse_term("id"), pair=(1, "two")) as span:
            pass
        assert span.attrs["type"] == "id"
        assert span.attrs["pair"] == [1, "two"]
        json.dumps(span.attrs)  # must be serialisable as-is

    def test_null_tracer_is_inert(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1) as span:
            assert span is None
        NULL_TRACER.event("e")
        NULL_TRACER.inc("c")
        NULL_TRACER.gauge("g", 1.0)
        NULL_TRACER.observe("h", 1.0)

    def test_tracing_never_changes_results(self):
        """Observation only: all tracer configurations agree with none."""
        for example in FIGURE2:
            outcomes = []
            for tracer in (None, NULL_TRACER, Tracer()):
                inferencer = Inferencer(ENV, tracer=tracer)
                try:
                    outcomes.append(str(inferencer.infer(example.term).type_))
                except GIError as error:
                    outcomes.append(type(error).__name__)
            assert len(set(outcomes)) == 1, (example.key, outcomes)

    def test_infer_emits_phase_spans(self):
        tracer = _traced_infer("app runST argST")
        (root,) = tracer.roots
        assert root.name == "infer"
        assert [child.name for child in root.children] == [
            "generate",
            "solve",
            "generalize",
        ]
        solve = root.children[1]
        assert solve.attrs["constraints"] >= 1

    def test_metrics_counters_populated(self):
        tracer = _traced_infer("app runST argST")
        counters = tracer.metrics.to_dict()["counters"]
        assert counters["infer.runs"] == 1
        assert counters["solver.steps"] > 0
        assert counters["unify.calls"] > 0

    def test_failed_inference_closes_spans_and_counts_error(self):
        tracer = Tracer()
        with pytest.raises(GIError):
            Inferencer(ENV, tracer=tracer).infer(parse_term("inc True"))
        assert all(span.end is not None for span in tracer.spans.values())
        assert tracer.metrics.to_dict()["counters"]["infer.errors"] == 1
        assert any(
            event["event"] == "point" and event["name"] == "infer.error"
            for event in tracer.events
        )


class TestJsonlSchema:
    def test_every_emitted_event_validates(self):
        tracer = _traced_infer("app runST argST")
        tracer.emit_metrics_event()
        assert tracer.events, "trace must not be empty"
        for event in tracer.events:
            assert validate_event(event) == [], event

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = JsonlWriter(open(path, "w", encoding="utf-8"))
        tracer = Tracer(sink=writer)
        Inferencer(ENV, tracer=tracer).infer(parse_term("app runST argST"))
        tracer.emit_metrics_event()
        writer.close()
        assert writer.lines == len(tracer.events)

        events = read_trace(str(path))
        assert events == tracer.events
        for line in path.read_text(encoding="utf-8").splitlines():
            assert validate_line(line) == []

        # The span tree is rebuildable from the file alone (timestamps are
        # rounded to microseconds in JSONL, so compare structure, not time).
        rebuilt = spans_from_events(events)
        live = tracer.roots
        assert [
            (span.span_id, span.parent_id, span.name, span.attrs)
            for root in rebuilt
            for span in root.walk()
        ] == [
            (span.span_id, span.parent_id, span.name, span.attrs)
            for root in live
            for span in root.walk()
        ]
        assert render_span_tree(rebuilt).splitlines()[0].startswith("infer")

    def test_validator_rejects_bad_events(self):
        good = {"v": 1, "event": "gauge", "ts": 0.1, "name": "g", "value": 2}
        assert validate_event(good) == []
        assert validate_event({**good, "v": 2})  # wrong version
        assert validate_event({**good, "event": "nope"})  # unknown kind
        assert validate_event({**good, "extra": 1})  # unexpected field
        missing = dict(good)
        del missing["value"]
        assert validate_event(missing)
        assert validate_event([1, 2])  # not an object
        assert validate_line("{not json")
        assert validate_line(json.dumps(good)) == []


class TestSpanTreeUnderJobs:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_module_span_tree_well_formed(self, jobs):
        source = synthetic_module_source(chains=3, depth=4)
        tracer = Tracer()
        engine = ModuleEngine(ENV, jobs=jobs, tracer=tracer)
        result = engine.check_source(source)
        assert result.ok

        spans = tracer.spans
        # Parent/child agreement: every non-root span's parent exists and
        # lists it as a child; every span was closed.
        for span in spans.values():
            assert span.end is not None, span.name
            if span.parent_id is None:
                assert span in tracer.roots
            else:
                parent = spans[span.parent_id]
                assert span in parent.children

        # Worker spans attach under the layer that scheduled them, even
        # when checked on pool threads.
        by_name = {}
        for span in spans.values():
            by_name.setdefault(span.name, []).append(span)
        assert by_name["group.check"], "no groups traced"
        for group in by_name["group.check"]:
            assert spans[group.parent_id].name == "layer"
        for layer in by_name["layer"]:
            assert spans[layer.parent_id].name == "module.check"
        for infer in by_name["infer"]:
            assert spans[infer.parent_id].name == "group.check"

    def test_batch_jobs_item_spans_parent_to_batch(self):
        tracer = Tracer()
        sources = ["head ids", "app runST argST", "single id", "ids"]
        result = check_batch(sources, ENV, jobs=3, tracer=tracer)
        assert result.ok
        (batch,) = [s for s in tracer.spans.values() if s.name == "batch"]
        items = [s for s in tracer.spans.values() if s.name == "batch.item"]
        assert len(items) == len(sources)
        assert {item.parent_id for item in items} == {batch.span_id}
        assert sorted(item.attrs["index"] for item in items) == [0, 1, 2, 3]


class TestExplainer:
    def test_narrative_uses_paper_vocabulary(self):
        tracer = _traced_infer("app runST argST")
        narrative = explain_tracer(tracer)
        assert "classification" in narrative
        assert "inst∀l" in narrative or "instϵ" in narrative
        assert "picked" in narrative
        assert "bound" in narrative

    def test_defer_reasons_explained(self):
        tracer = _traced_infer("app runST argST")
        narrative = explain_tracer(tracer)
        assert "deferred:" in narrative


class TestModuleCachePersistence:
    def test_save_load_round_trip(self, tmp_path):
        source = synthetic_module_source(chains=2, depth=3)
        cache = ModuleCache()
        engine = ModuleEngine(ENV, cache=cache)
        cold = engine.check_source(source)
        assert cold.ok and cold.stats.cache_misses == len(cold.types)

        path = tmp_path / "mod.cache.json"
        cache.save(str(path))
        reloaded = ModuleCache.load(str(path))
        assert len(reloaded) == len(cache)

        warm = ModuleEngine(ENV, cache=reloaded).check_source(source)
        assert warm.ok and warm.stats.cache_hits == len(warm.types)

    def test_load_damaged_file_cold_starts(self, tmp_path):
        path = tmp_path / "bad.cache.json"
        path.write_text("{definitely not json", encoding="utf-8")
        assert len(ModuleCache.load(str(path))) == 0
        path.write_text(json.dumps({"version": 99, "entries": {}}), encoding="utf-8")
        assert len(ModuleCache.load(str(path))) == 0
        assert len(ModuleCache.load(str(tmp_path / "missing.json"))) == 0

    def _populated_cache(self):
        cache = ModuleCache()
        engine = ModuleEngine(ENV, cache=cache)
        result = engine.check_source(synthetic_module_source(chains=1, depth=2))
        assert result.ok
        return cache

    def test_crashed_save_leaves_old_sidecar_intact(self, tmp_path, monkeypatch):
        # A writer dying mid-save (full disk, kill -9 between write and
        # rename) must never corrupt the sidecar: the write goes to a
        # temp file that is renamed over the target only when complete.
        cache = self._populated_cache()
        path = tmp_path / "mod.cache.json"
        cache.save(str(path))
        before = path.read_text(encoding="utf-8")

        import repro.modules.cache as cache_module

        def explode(*_args, **_kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module.json, "dump", explode)
        with pytest.raises(OSError):
            cache.save(str(path))
        assert path.read_text(encoding="utf-8") == before
        assert len(ModuleCache.load(str(path))) == len(cache)
        # ... and the aborted attempt cleans up its temp file.
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_save_is_effective_through_rename(self, tmp_path):
        cache = self._populated_cache()
        path = tmp_path / "fresh"
        path.mkdir()
        target = path / "mod.cache.json"
        cache.save(str(target))
        assert len(ModuleCache.load(str(target))) == len(cache)
        assert [p.name for p in path.iterdir()] == ["mod.cache.json"]


class TestSeededSweeps:
    def test_seeded_plans_are_deterministic(self):
        plans = [seeded_fault_plan(7, i) for i in range(16)]
        again = [seeded_fault_plan(7, i) for i in range(16)]
        assert [
            (p.fail_at_solver_step, p.fail_at_unify_depth) for p in plans
        ] == [(p.fail_at_solver_step, p.fail_at_unify_depth) for p in again]
        # Both trigger families appear across a modest sweep.
        assert any(p.fail_at_solver_step for p in plans)
        assert any(p.fail_at_unify_depth for p in plans)

    def test_seeded_batch_reproducible_and_stamped(self):
        sources = ["head ids", "app runST argST", "single id"]
        # seed 7 deterministically faults two of these three items.
        first = check_batch(sources, ENV, seed=7)
        second = check_batch(sources, ENV, seed=7)
        assert [item.to_dict() for item in first.items] == [
            item.to_dict() for item in second.items
        ]
        assert len(first.failures) == 2
        for diagnostic in first.diagnostics:
            assert diagnostic.seed == 7

    def test_seed_forces_serial(self):
        sources = ["head ids"] * 4
        result = check_batch(sources, ENV, seed=3, jobs=8)
        assert len(result.items) == 4  # ran, serially, without error


class TestWorkerTraceback:
    def test_pool_crash_snapshot_carries_remote_traceback(self):
        from repro.robustness.pool import WorkerPool

        def boom(item, budget):
            raise ValueError("kaput")

        with pytest.raises(InternalError) as info:
            WorkerPool(jobs=2).map(boom, [1, 2])
        snapshot = info.value.snapshot
        assert "kaput" in snapshot["traceback"]
        assert "Traceback (most recent call last)" in snapshot["traceback"]
        assert snapshot["worker"]
        assert "\n" not in str(info.value)

    def test_internal_error_traceback_reaches_batch_json(self):
        result = check_batch(["(" * 2000 + "x" + ")" * 2000], ENV)
        (diagnostic,) = result.diagnostics
        assert diagnostic.severity == "internal"
        payload = json.dumps(result.to_dict())
        assert "RecursionError" in payload


class TestCliObservability:
    def test_infer_trace_to_stdout(self, capsys):
        assert main(["infer", "app runST argST", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "infer" in out and "solve" in out and "generalize" in out

    def test_infer_metrics_table(self, capsys):
        assert main(["infer", "head ids", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "solver.steps" in out and "metric" in out

    def test_infer_explain(self, capsys):
        assert main(["infer", "app runST argST", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "picked" in out and "classification" in out

    def test_trace_file_validates(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["infer", "head ids", "--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "events written" in err
        assert main(["trace", str(trace), "--validate"]) == 0
        assert "valid (schema v1)" in capsys.readouterr().out

    def test_trace_replay_and_explain(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["infer", "app runST argST", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        assert "infer" in capsys.readouterr().out
        assert main(["trace", str(trace), "--explain"]) == 0
        assert "picked" in capsys.readouterr().out

    def test_trace_validate_flags_corruption(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"v":1,"event":"nope","ts":0}\n', encoding="utf-8")
        assert main(["trace", str(trace), "--validate"]) == 1
        assert "unknown event kind" in capsys.readouterr().err

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/run.jsonl", "--validate"]) == 2

    def test_module_trace_metrics_and_warm_cache(self, tmp_path, capsys):
        path = tmp_path / "m.gi"
        path.write_text(
            "module M where\nx :: Int\nx = 1\ny :: Int\ny = inc x\n",
            encoding="utf-8",
        )
        assert main(["module", str(path), "--trace", "--metrics"]) == 0
        cold = capsys.readouterr().out
        assert "module.check" in cold and "group.check" in cold
        assert "module.cache.misses" in cold
        assert main(["module", str(path), "--trace", "--metrics"]) == 0
        warm = capsys.readouterr().out
        assert "module.cache.hits" in warm

    def test_module_no_cache_skips_sidecar(self, tmp_path, capsys):
        path = tmp_path / "m.gi"
        path.write_text("module M where\nx :: Int\nx = 1\n", encoding="utf-8")
        assert main(["module", str(path), "--no-cache"]) == 0
        assert not (tmp_path / "m.gi.cache.json").exists()

    def test_batch_seed_stamped_in_json(self, tmp_path, capsys):
        batch = tmp_path / "batch.txt"
        batch.write_text("head ids\napp runST argST\nsingle id\n", encoding="utf-8")
        assert main(["batch", str(batch), "--seed", "42", "--json"]) in (0, 1)
        payload = json.loads(capsys.readouterr().out)
        seeds = {
            item["diagnostic"]["seed"]
            for item in payload["items"]
            if item["diagnostic"]
        }
        assert seeds == {42}

    def test_repl_trace_and_stats(self, capsys, monkeypatch):
        lines = iter([":trace on", "head ids", ":stats", ":trace off", ":q"])
        monkeypatch.setattr("builtins.input", lambda _="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "tracing on" in out
        assert "infer" in out and "generalize" in out  # the span tree
        assert "solver.steps" in out  # :stats
        assert "tracing off" in out
