"""The fault-injection soak: thousands of mixed requests, zero deaths.

The acceptance scenario for the serve daemon: one server, many client
threads, a request mix spanning well-typed, ill-typed, adversarial-deep,
fault-injected, oversized and mid-disconnect traffic — and at the end
the server is alive, every response was schema-valid, every failure was
a *structured* error response, and sessions never leaked into each
other.
"""

import json

from repro.robustness.loadgen import (
    SERVED_STATUSES,
    LoadConfig,
    run_load,
)
from repro.robustness.server import ServeConfig, start_server_in_thread
from repro.robustness.serveclient import ServeClient

TOTAL_REQUESTS = 2_048
CLIENTS = 8


class TestServeSoak:
    def test_soak_mixed_traffic_no_server_deaths(self, tmp_path):
        sock = str(tmp_path / "soak.sock")
        config = ServeConfig(
            socket_path=sock,
            jobs=4,
            queue_limit=64,
            allow_faults=True,
            max_line_bytes=64_000,
            trace_path=str(tmp_path / "soak.jsonl"),
        )
        with start_server_in_thread(config) as handle:
            report = run_load(
                LoadConfig(
                    socket_path=sock,
                    clients=CLIENTS,
                    requests=TOTAL_REQUESTS // CLIENTS,
                    seed=2026,
                    ill_rate=0.2,
                    deep_rate=0.08,
                    deep_depth=25,
                    fault_rate=0.12,
                    oversize_rate=0.02,
                    oversize_bytes=128_000,
                    disconnect_rate=0.03,
                )
            )
            assert handle.thread.is_alive(), "server died during the soak"

            # Every response line was schema-valid (the client validates
            # on read; any violation lands in report.violations).
            assert report.violations == [], report.violations[:5]
            assert report.requests_sent == TOTAL_REQUESTS

            # Fault-injected requests produced *structured* internal
            # responses — never a dead connection.
            assert report.by_status.get("internal", 0) > 0
            assert report.by_error_class.get("InternalError", 0) > 0
            # Ill-typed traffic came back as typed errors.
            assert report.by_status.get("error", 0) > 0
            # Adversarial transports happened and were survived.
            assert report.by_status.get("oversized", 0) > 0
            assert report.by_status.get("disconnected", 0) > 0
            assert report.by_error_class.get("PayloadTooLarge", 0) > 0
            # Nothing fell through to an unstructured failure.
            assert report.by_status.get("connection_lost", 0) == 0

            # The server held every request it admitted, and its own
            # books agree a soak's worth of traffic went through.
            counts = handle.server.counts
            assert counts["internal"] == report.by_status.get("internal", 0)
            assert counts["total"] >= sum(
                report.by_status.get(status, 0) for status in SERVED_STATUSES
            )

            # Sessions stayed isolated through all of it: a module bound
            # in one fresh session is invisible from another.
            with ServeClient(socket_path=sock) as alice, ServeClient(
                socket_path=sock
            ) as bob:
                assert alice.request(
                    "module", source="soaked :: Int\nsoaked = 1\n"
                )["ok"]
                assert alice.request("infer", expr="soaked")["type"] == "Int"
                assert (
                    bob.request("infer", expr="soaked")["error"]["class"]
                    == "ScopeError"
                )
                stats = bob.request("stats")
                assert stats["requests"]["total"] >= TOTAL_REQUESTS * 0.9

        # Clean drain at the end: thread exits, trace flushed and valid.
        assert not handle.thread.is_alive()
        from repro.observability import validate_line

        lines = (tmp_path / "soak.jsonl").read_text(encoding="utf-8").splitlines()
        assert len(lines) > TOTAL_REQUESTS  # at least one event per request
        bad = [problem for line in lines if line for problem in validate_line(line)]
        assert bad == [], bad[:5]
        assert json.loads(lines[-1])["event"] == "metrics"
