"""FreezeML backend unit tests (PLDI 2020, "FreezeML: complete and easy
type inference for first-class polymorphism").

In the shared syntax (no dedicated freeze marker) a type annotation is
the freeze: ``(e :: σ)`` keeps σ verbatim, everything else instantiates
eagerly as in ML.  λ-binders are monomorphic *transitively* — a binder's
image must stay ∀-free through every later substitution.
"""

import pytest

from repro.baselines import FreezeMLError, FreezeMLInferencer, freezeml_infer
from repro.core.errors import GIError
from repro.evalsuite.figure2 import figure2_env
from repro.syntax import parse_term

ENV = figure2_env()


def fz(source: str) -> str:
    return str(freezeml_infer(parse_term(source), ENV))


class TestMLCore:
    def test_identity(self):
        assert fz(r"\x -> x") == "forall a. a -> a"

    def test_let_generalises(self):
        assert fz(r"let f = \x -> x in pair (f 1) (f True)") == "(Int, Bool)"

    def test_eager_instantiation_at_vars(self):
        # A bare `id` is instantiated, so `single id` is predicative.
        assert fz("single id") == "forall a. [a -> a]"

    def test_occurs_check(self):
        with pytest.raises(GIError):
            fz(r"\x -> x x")


class TestFreeze:
    def test_annotation_freezes_sigma(self):
        # The annotated argument reaches `single` as a σ, un-instantiated.
        assert fz("single (id :: forall a. a -> a)") == "[forall a. a -> a]"

    def test_env_sigma_list(self):
        # `ids : [∀a. a → a]` is a frozen σ inside a type constructor, so
        # eager instantiation does not fire and C1-C3 typecheck.
        assert fz("head ids") == "forall a. a -> a"
        assert fz("tail ids") == "[forall a. a -> a]"
        assert fz("length ids") == "Int"

    def test_annotated_binder_is_polymorphic(self):
        # A4: the binder keeps its σ; the self-application's result is a
        # fresh instantiation that generalisation closes over.
        assert (
            fz(r"\(x :: forall a. a -> a) -> x x") == "forall a. (forall b. b -> b) -> a -> a"
        )

    def test_unannotated_poly_argument_rejected(self):
        # Without an annotation there is no freeze: `poly id` instantiates
        # id's σ and the rank-2 parameter of poly cannot be met.
        with pytest.raises(GIError):
            fz("poly id")

    def test_freeze_then_apply(self):
        assert fz("poly (id :: forall a. a -> a)") == "(Int, Bool)"


class TestMonomorphicBinders:
    def test_direct_poly_binding_rejected(self):
        # The λ-body forces x mono (Int vs Bool) before the frozen σ even
        # arrives; one way or the other B1-shaped terms are out.
        with pytest.raises(GIError):
            fz(r"(\x -> pair (x 1) (x True)) (id :: forall a. a -> a)")

    def test_poly_binding_via_annotation_freeze_rejected(self):
        # Here the body is σ-compatible, so rejection must come from the
        # monomorphic-binder rule itself.
        with pytest.raises(FreezeMLError):
            fz(r"(\x -> single x) (id :: forall a. a -> a)")

    def test_transitive_poly_binding_rejected(self):
        # B2: the binder's image becomes polymorphic only through a later
        # substitution on a flexible variable — still rejected.
        with pytest.raises(FreezeMLError):
            fz(r"\xs -> poly (head xs)")


class TestDeterminism:
    def test_two_runs_agree(self):
        source = r"let f = \x -> single x in f (id :: forall a. a -> a)"
        first = str(FreezeMLInferencer(ENV).infer(parse_term(source)))
        second = str(FreezeMLInferencer(ENV).infer(parse_term(source)))
        assert first == second == "[forall a. a -> a]"
