"""The instantiation-policy axis: parsing, deep-prenexing, the four
policy points through core inference and the policy-capable backends,
the oracle guards, and the tc211 evaluation grid.

The semantic anchors (from "Seeking Stability by being Lazy and
Shallow", Bottu & Eisenberg, Haskell 2021, transplanted onto GI):

* the **default** (eager-shallow) is bit-identical to the paper's
  published discipline — every policy-off code path must be unchanged;
* **lazy** makes a let-bound bare variable alias the environment sigma
  verbatim, so ``let f = id in (f :: forall a. a -> a)`` flips from a
  skolem escape to accepted;
* **deep** hoists nested foralls over arrow codomains at instantiation
  and generalisation sites, so Figure 2's E1 (``k h lst``) flips from
  rejected to accepted — the GHC ≤8.10 deep-subsumption behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.errors import GIError
from repro.core.infer import Inferencer, InferOptions
from repro.core.policy import (
    DEFAULT_POLICY,
    EAGER_DEEP,
    EAGER_SHALLOW,
    LAZY_DEEP,
    LAZY_SHALLOW,
    POLICIES,
    POLICY_NAMES,
    InstantiationPolicy,
    deep_prenex,
    has_nested_forall,
    parse_policy,
)
from repro.evalsuite.figure2 import figure2_env
from repro.syntax import parse_term, parse_type

ENV = figure2_env()


def _infer(source: str, policy: InstantiationPolicy):
    options = InferOptions(policy=policy)
    return Inferencer(figure2_env(), options=options).infer(parse_term(source))


def _accepts(source: str, policy: InstantiationPolicy) -> bool:
    try:
        _infer(source, policy)
        return True
    except GIError:
        return False


class TestPolicyModule:
    def test_the_grid_is_complete(self):
        assert POLICY_NAMES == (
            "eager-shallow",
            "eager-deep",
            "lazy-shallow",
            "lazy-deep",
        )
        assert len(POLICIES) == 4
        assert DEFAULT_POLICY is EAGER_SHALLOW

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_parse_roundtrips_every_name(self, name):
        assert parse_policy(name).name == name

    def test_parse_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="available:"):
            parse_policy("deep-lazy")
        with pytest.raises(ValueError):
            parse_policy("")

    def test_constructor_validates_axes(self):
        with pytest.raises(ValueError):
            InstantiationPolicy("eager", "wide")
        with pytest.raises(ValueError):
            InstantiationPolicy("slow", "deep")

    def test_flags(self):
        assert LAZY_DEEP.lazy and LAZY_DEEP.deep
        assert not EAGER_SHALLOW.lazy and not EAGER_SHALLOW.deep
        assert str(LAZY_SHALLOW) == "lazy-shallow"


class TestDeepPrenex:
    def _roundtrip(self, source: str) -> str:
        return str(deep_prenex(parse_type(source)))

    def test_hoists_codomain_forall(self):
        assert self._roundtrip("Int -> (forall a. a -> a)") == str(
            parse_type("forall a. Int -> a -> a")
        )

    def test_prenex_types_are_fixed_points(self):
        for source in ("forall a. a -> a", "Int -> Bool", "[forall a. a -> a]"):
            type_ = parse_type(source)
            assert deep_prenex(type_) is type_

    def test_hoists_through_multiple_arrows(self):
        assert self._roundtrip("Int -> Bool -> (forall a. a)") == str(
            parse_type("forall a. Int -> Bool -> a")
        )

    def test_does_not_hoist_from_argument_positions(self):
        source = "(forall a. a -> a) -> Int"
        assert self._roundtrip(source) == str(parse_type(source))

    def test_freshens_against_capture(self):
        # The outer binder `a` must not capture the hoisted inner `a`.
        hoisted = self._roundtrip("forall a. a -> (forall a. a -> a)")
        outer, inner = parse_type(hoisted).binders[:2]
        assert outer != inner

    def test_has_nested_forall(self):
        assert has_nested_forall(parse_type("Int -> (forall a. a -> a)"))
        assert has_nested_forall(parse_type("forall a. a -> (forall b. b)"))
        assert not has_nested_forall(parse_type("forall a. a -> a"))
        assert not has_nested_forall(parse_type("Int"))
        # Nested foralls *left* of the arrow do not count: deep
        # skolemisation never touches argument positions.
        assert not has_nested_forall(parse_type("(forall a. a -> a) -> Int"))


class TestCorePolicyFlips:
    LET_ALIAS = "let f = id in (f :: forall a. a -> a)"
    E1 = "k h lst"

    def test_default_rejects_both_anchors(self):
        assert not _accepts(self.LET_ALIAS, EAGER_SHALLOW)
        assert not _accepts(self.E1, EAGER_SHALLOW)

    @pytest.mark.parametrize("policy", (LAZY_SHALLOW, LAZY_DEEP))
    def test_lazy_flips_the_let_alias(self, policy):
        result = _infer(self.LET_ALIAS, policy)
        assert str(result.type_) == "forall a. a -> a"

    @pytest.mark.parametrize("policy", (EAGER_DEEP, LAZY_DEEP))
    def test_deep_flips_e1(self, policy):
        result = _infer(self.E1, policy)
        assert str(result.type_) == "forall a. Int -> a -> a"

    def test_lazy_without_deep_does_not_flip_e1(self):
        assert not _accepts(self.E1, LAZY_SHALLOW)

    def test_deep_without_lazy_does_not_flip_the_let_alias(self):
        assert not _accepts(self.LET_ALIAS, EAGER_DEEP)

    @pytest.mark.parametrize(
        "source",
        (
            "head ids",
            "single id",
            "poly (\\x -> x)",
            "(single id :: [forall a. a -> a])",
            "runST argST",
            "\\f -> f 1 2",
        ),
    )
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_invariant_rows_agree_with_default(self, source, policy):
        from repro.core.types import alpha_equal

        reference = _infer(source, DEFAULT_POLICY).type_
        assert alpha_equal(_infer(source, policy).type_, reference)

    def test_default_options_use_the_default_policy(self):
        assert InferOptions().policy is DEFAULT_POLICY


class TestBackendPolicyAxis:
    def test_rankn_reference_is_eager_deep(self):
        from repro.baselines.rankn import RankNInferencer

        # Published RankN deep-skolemises; an explicit shallow policy
        # turns that off and `\f -> poly' f` style eta-contractions move.
        reference = RankNInferencer(figure2_env())
        assert reference._deep and not reference._lazy
        shallow = RankNInferencer(figure2_env(), policy=EAGER_SHALLOW)
        assert not shallow._deep

    def test_quicklook_lazy_keeps_annotation_sigma(self):
        from repro.baselines.quicklook import QuickLookInferencer

        from repro.core.types import alpha_equal, rename_canonical

        term = parse_term("let f = id in (f :: forall a. a -> a)")
        lazy = QuickLookInferencer(figure2_env(), policy=LAZY_SHALLOW)
        assert alpha_equal(
            rename_canonical(lazy.infer(term)),
            rename_canonical(parse_type("forall a. a -> a")),
        )

    def test_registry_runs_old_style_factories_without_policy(self):
        from repro.baselines.registry import System

        calls = []

        def factory(env, budget):
            calls.append((env, budget))
            return lambda term: parse_type("Int")

        system = System("Fake", "two-arg factory", factory)
        outcome = system.run(parse_term("inc 0"), ENV)
        assert outcome.accepted and calls

    def test_registry_passes_policy_keyword_when_requested(self):
        from repro.baselines.registry import SYSTEMS

        term = parse_term("k h lst")
        assert not SYSTEMS["GI"].run(term, ENV).accepted
        assert SYSTEMS["GI"].run(term, ENV, policy=EAGER_DEEP).accepted

    def test_policy_systems_are_registered(self):
        from repro.baselines.registry import POLICY_SYSTEMS, SYSTEMS

        assert set(POLICY_SYSTEMS) <= set(SYSTEMS)


class TestOraclePolicyGuards:
    def _ctx(self, policy: InstantiationPolicy):
        from repro.conformance import OracleContext

        return OracleContext(
            figure2_env(), options=InferOptions(policy=policy)
        )

    def test_declarative_is_default_policy_only(self):
        from repro.conformance.oracles import oracle_declarative

        term = parse_term("single id")
        assert oracle_declarative(self._ctx(LAZY_DEEP), term) is None

    def test_systemf_skips_deep_policies(self):
        from repro.conformance.oracles import oracle_systemf

        term = parse_term("single id")
        assert oracle_systemf(self._ctx(EAGER_DEEP), term) is None

    @pytest.mark.parametrize("policy", POLICIES)
    def test_stability_holds_on_anchor_terms(self, policy):
        from repro.conformance.oracles import oracle_stability

        for source in ("single id", "head ids", "inc (head (single 1))"):
            violation = oracle_stability(self._ctx(policy), parse_term(source))
            assert violation is None, f"{source} under {policy}: {violation}"

    def test_stability_runs_in_the_default_battery(self):
        from repro.conformance.oracles import DEFAULT_ORACLES

        assert "stability" in DEFAULT_ORACLES

    def test_run_battery_rejects_unknown_oracle_names(self):
        from repro.conformance import OracleContext, run_battery

        with pytest.raises(ValueError, match="available:"):
            run_battery(
                OracleContext(figure2_env()),
                parse_term("inc 0"),
                oracles=("nope",),
            )

    def test_let_float_skips_sigma_checked_arguments(self):
        from repro.conformance.metamorphic import let_float_argument

        result = Inferencer(figure2_env()).infer(
            parse_term("head ids : tail ids")
        )
        transformed = let_float_argument(result.term, result)
        # `head ids` is checked against `forall a. a -> a` (ArgGen
        # skolems in the evidence) — floating it into an ungeneralised
        # let would eagerly instantiate the sigma away, so the transform
        # must pass over it and float `tail ids` (monomorphic) instead.
        assert transformed is not None
        assert str(transformed.bound) == "tail ids"

    def test_let_float_still_fires_on_monomorphic_arguments(self):
        from repro.conformance.metamorphic import let_float_argument

        result = Inferencer(figure2_env()).infer(
            parse_term("inc (head (single 1))")
        )
        assert let_float_argument(result.term, result) is not None


class TestStabilityTransforms:
    def test_let_inline_is_lazy_only(self):
        from repro.conformance.metamorphic import stability_let_inline

        term = parse_term("let f = id in single f")
        result = _infer("let f = id in single f", LAZY_SHALLOW)
        inlined = stability_let_inline(term, result, LAZY_SHALLOW, ENV)
        assert inlined is not None and str(inlined) == "single id"
        assert stability_let_inline(term, result, EAGER_SHALLOW, ENV) is None

    def test_let_extract_is_lazy_only_and_capture_safe(self):
        from repro.conformance.metamorphic import stability_let_extract
        from repro.core.terms import Let

        term = parse_term("single id")
        result = _infer("single id", LAZY_SHALLOW)
        extracted = stability_let_extract(term, result, LAZY_SHALLOW, ENV)
        assert isinstance(extracted, Let)
        assert stability_let_extract(term, result, EAGER_SHALLOW, ENV) is None

    def test_signature_skips_nested_forall_under_deep(self):
        from repro.conformance.metamorphic import stability_signature

        # Shallow: `h : Int -> (forall a. a -> a)` re-annotates fine.
        shallow = _infer("h", EAGER_SHALLOW)
        assert (
            stability_signature(shallow.term, shallow, EAGER_SHALLOW, ENV)
            is not None
        )
        # Deep: a signature with a nested forall would be rewritten by
        # deep instantiation at the check site (the 500-case sweep's
        # counterexample family), so it is excluded, not asserted.
        source = "\\(v :: forall a. a -> a) -> (id :: forall a. a -> a)"
        deep = _infer(source, EAGER_DEEP)
        assert has_nested_forall(deep.type_)
        assert stability_signature(deep.term, deep, EAGER_DEEP, ENV) is None

    def test_legacy_eta_skips_nested_forall_codomains(self):
        from repro.conformance.metamorphic import eta_expand

        result = Inferencer(figure2_env()).infer(parse_term("h"))
        # Eta-expanding `h` would let generalisation hoist the nested
        # forall (`forall a. Int -> a -> a`) — the latent violation the
        # policy work surfaced; the guard must skip it.
        assert eta_expand(result.term, result) is None


class TestFuzzPolicySweeps:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_short_sweep_is_clean_under_every_policy(self, policy):
        from repro.conformance import FuzzConfig, run_fuzz

        report = run_fuzz(FuzzConfig(seed=11, count=25, policy=policy))
        assert report.ok, [ce.to_dict() for ce in report.counterexamples]

    def test_unknown_policy_fails_fast(self):
        from repro.conformance import FuzzConfig, run_fuzz

        with pytest.raises(ValueError, match="unknown policy"):
            run_fuzz(FuzzConfig(count=1, policy="shallow-eager"))

    def test_counterexample_metadata_records_the_policy(self, tmp_path):
        from repro.conformance import FuzzConfig, run_fuzz

        # A fault plan makes every case fail the crash oracle, so the
        # corpus write path runs and the header must carry the policy.
        report = run_fuzz(
            FuzzConfig(
                seed=1,
                count=1,
                oracles=("crash",),
                policy="lazy-deep",
                corpus_dir=tmp_path,
                fault_step=1,
            )
        )
        assert not report.ok
        contents = [p.read_text() for p in tmp_path.glob("*.gi")]
        assert any("policy: lazy-deep" in text for text in contents)


class TestPolicyMatrix:
    def test_tc211_grid_flips_exactly_where_promised(self):
        from repro.evalsuite.policies import policy_matrix

        matrix = policy_matrix(ENV)
        gi = {policy: cells["GI"] for policy, cells in matrix.items()}
        # T6 flips with the speed axis, T7 with the depth axis.
        assert not gi["eager-shallow"]["T6"].accepted
        assert not gi["eager-deep"]["T6"].accepted
        assert gi["lazy-shallow"]["T6"].accepted
        assert gi["lazy-deep"]["T6"].accepted
        assert not gi["eager-shallow"]["T7"].accepted
        assert not gi["lazy-shallow"]["T7"].accepted
        assert gi["eager-deep"]["T7"].accepted
        assert gi["lazy-deep"]["T7"].accepted
        # Every other row is policy-invariant for every system.
        for key in ("T1", "T2", "T3", "T4", "T5"):
            for system in matrix["eager-shallow"]:
                verdicts = {
                    matrix[policy][system][key].accepted for policy in gi
                }
                assert len(verdicts) == 1, (key, system)

    def test_grid_renders_every_policy(self):
        from repro.baselines.registry import POLICY_SYSTEMS
        from repro.evalsuite.policies import TC211, policy_matrix
        from repro.evalsuite.report import render_policy_matrix

        text = render_policy_matrix(policy_matrix(ENV), TC211, POLICY_SYSTEMS)
        for name in POLICY_NAMES:
            assert f"policy {name}" in text
        assert "k h lst" in text

    def test_every_grid_row_has_a_corpus_twin(self):
        from pathlib import Path

        from repro.conformance import load_corpus
        from repro.evalsuite.policies import TC211

        corpus = load_corpus(Path(__file__).parent / "corpus")
        sources = {str(entry.term) for entry in corpus}
        for example in TC211:
            assert str(example.term) in sources, (
                f"{example.key} ({example.source}) has no tests/corpus twin"
            )


class TestPolicyCLI:
    def test_infer_policy_flag_flips_the_verdict(self, capsys):
        from repro.__main__ import main

        source = "let f = id in (f :: forall a. a -> a)"
        assert main(["infer", source]) == 1
        capsys.readouterr()
        assert main(["infer", "--policy", "lazy-shallow", source]) == 0
        assert capsys.readouterr().out.strip() == "forall a. a -> a"

    def test_unknown_policy_exits_2_with_the_list(self, capsys):
        from repro.__main__ import main

        assert main(["infer", "--policy", "bogus", "id"]) == 2
        err = capsys.readouterr().err
        assert "unknown policy" in err and "lazy-shallow" in err

    def test_unknown_oracle_exits_2_with_the_list(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--oracle", "nope", "--count", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown oracle" in err and "stability" in err

    def test_batch_policy_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "cases.gi"
        path.write_text("let f = id in (f :: forall a. a -> a)\n")
        assert main(["batch", str(path)]) == 1
        capsys.readouterr()
        assert main(["batch", str(path), "--policy", "lazy-deep"]) == 0

    def test_fuzz_policy_flag_runs_clean(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "3",
                    "--count",
                    "10",
                    "--policy",
                    "lazy-shallow",
                ]
            )
            == 0
        )

    def test_repl_set_policy(self, capsys, monkeypatch):
        from repro.__main__ import main

        lines = iter(
            [
                ":set policy",
                ":set policy lazy-shallow",
                "let f = id in (f :: forall a. a -> a)",
                ":set policy wat",
                ":q",
            ]
        )
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "policy: eager-shallow" in out
        assert "policy: lazy-shallow" in out
        assert "forall a. a -> a" in out
        assert "unknown policy `wat`" in out
