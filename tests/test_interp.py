"""Tests for the call-by-value interpreter."""

import pytest

from repro.interp import (
    DataValue,
    Env,
    EvalError,
    evaluate,
    from_python,
    prelude_env,
    run,
    to_python,
)
from repro.syntax import parse_term


def result(source: str):
    return run(parse_term(source))


class TestEvaluation:
    def test_literals(self):
        assert result("42") == 42
        assert result("True") is True

    def test_lambda_application(self):
        assert result(r"(\x -> x) 5") == 5

    def test_multi_arg(self):
        assert result(r"(\x y -> y) 1 2") == 2

    def test_let(self):
        assert result("let n = inc 1 in plus n n") == 4

    def test_annotation_erased(self):
        assert result("(inc 1 :: Int)") == 2

    def test_case(self):
        assert result("case Just 5 of { Just x -> inc x ; Nothing -> 0 }") == 6

    def test_case_match_failure(self):
        with pytest.raises(EvalError):
            result("case Just 1 of { Nothing -> 0 }")

    def test_unbound(self):
        with pytest.raises(EvalError):
            result("nonexistent")

    def test_apply_non_function(self):
        with pytest.raises(EvalError):
            result("1 2")

    def test_shadowing(self):
        assert result(r"(\x -> (\x -> x) 2) 1") == 2


class TestPrelude:
    def test_runst(self):
        assert result("runST $ argST") == 42
        assert result("app runST argST") == 42
        assert result("revapp argST runST") == 42

    def test_lists(self):
        assert to_python(result("map inc [1, 2, 3]")) == [2, 3, 4]
        assert result("length (tail [1, 2, 3])") == 2
        assert to_python(result("[1] ++ [2]")) == [1, 2]
        assert result("head [7]") == 7

    def test_polymorphic_list(self):
        assert result("head ids 99") == 99
        assert result("length (id : ids)") == 3

    def test_poly(self):
        assert result("poly id") == (1, True)

    def test_flip(self):
        assert result(r"flip (\x y -> x) 1 2") == 2

    def test_undefined_explodes_only_when_forced(self):
        assert result("length (single undefined)") == 1
        with pytest.raises(EvalError):
            result("undefined 1")

    def test_pairs(self):
        assert result("fst (1, True)") == 1
        assert result("snd (1, True)") is True


class TestListConversions:
    def test_roundtrip(self):
        assert to_python(from_python([1, 2, 3])) == [1, 2, 3]

    def test_empty(self):
        assert to_python(from_python([])) == []

    def test_improper_list(self):
        with pytest.raises(EvalError):
            to_python(DataValue("Cons", (1, 2)))

    def test_show(self):
        assert str(DataValue("Just", (1,))) == "(Just 1)"
        assert str(from_python([1])) == "[1]"
