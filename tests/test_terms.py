"""Unit tests for the term AST."""

import pytest

from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    CaseAlt,
    Lam,
    Let,
    Lit,
    Var,
    app,
    free_vars,
    lam,
    subst_term,
    subst_type_vars_in_term,
    term_size,
    walk_terms,
)
from repro.core.types import BOOL, CHAR, INT, STRING, TVar, forall, fun


class TestConstruction:
    def test_app_flattens(self):
        term = app(app(Var("f"), Var("x")), Var("y"))
        assert term == App(Var("f"), (Var("x"), Var("y")))

    def test_app_no_args_is_head(self):
        assert app(Var("f")) == Var("f")

    def test_app_rejects_app_head(self):
        with pytest.raises(ValueError):
            App(App(Var("f"), (Var("x"),)), (Var("y"),))

    def test_app_rejects_empty_args(self):
        with pytest.raises(ValueError):
            App(Var("f"), ())

    def test_lam_helper(self):
        term = lam("x", "y", Var("x"))
        assert term == Lam("x", Lam("y", Var("x")))

    def test_lam_helper_annotated(self):
        annotation = forall(["a"], fun(TVar("a"), TVar("a")))
        term = lam(("x", annotation), Var("x"))
        assert term == AnnLam("x", annotation, Var("x"))

    def test_case_needs_alternatives(self):
        with pytest.raises(ValueError):
            Case(Var("x"), ())


class TestLiterals:
    def test_types(self):
        assert Lit(3).type_ == INT
        assert Lit(True).type_ == BOOL
        assert Lit("c").type_ == CHAR
        assert Lit("hello").type_ == STRING

    def test_bool_is_not_int(self):
        # bool is a subclass of int in Python; the AST must not confuse them.
        assert Lit(True).type_ == BOOL
        assert Lit(1).type_ == INT


class TestFreeVars:
    def test_var(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_vars(Lam("x", app(Var("f"), Var("x")))) == {"f"}

    def test_let_binds_body_only(self):
        term = Let("x", Var("y"), app(Var("x"), Var("z")))
        assert free_vars(term) == {"y", "z"}

    def test_case_binders(self):
        term = Case(Var("s"), (CaseAlt("Just", ("x",), Var("x")),))
        assert free_vars(term) == {"s"}

    def test_shadowing(self):
        term = Lam("x", Let("x", Var("x"), Var("x")))
        assert free_vars(term) == set()


class TestTraversal:
    def test_term_size(self):
        assert term_size(Var("x")) == 1
        assert term_size(app(Var("f"), Var("x"), Var("y"))) == 4

    def test_walk_covers_all(self):
        term = Let("x", Lam("y", Var("y")), Ann(Var("x"), INT))
        kinds = [type(node).__name__ for node in walk_terms(term)]
        assert kinds == ["Let", "Lam", "Var", "Ann", "Var"]


class TestSubstitution:
    def test_subst_var(self):
        assert subst_term(Var("x"), "x", Lit(1)) == Lit(1)

    def test_subst_respects_lambda(self):
        term = Lam("x", Var("x"))
        assert subst_term(term, "x", Lit(1)) == term

    def test_subst_in_app(self):
        term = app(Var("f"), Var("x"))
        assert subst_term(term, "x", Lit(2)) == app(Var("f"), Lit(2))

    def test_subst_type_vars_renames_annotations(self):
        annotation = fun(TVar("a"), TVar("a"))
        term = AnnLam("x", annotation, Ann(Var("x"), TVar("a")))
        renamed = subst_type_vars_in_term({"a": TVar("sk")}, term)
        assert renamed == AnnLam(
            "x", fun(TVar("sk"), TVar("sk")), Ann(Var("x"), TVar("sk"))
        )

    def test_subst_type_vars_respects_shadowing(self):
        inner = Ann(Var("x"), forall(["a"], fun(TVar("a"), TVar("a"))))
        renamed = subst_type_vars_in_term({"a": TVar("sk")}, inner)
        assert renamed == inner


class TestPretty:
    def test_roundtrip_simple(self):
        from repro.syntax import parse_term, pretty_term

        for source in [
            r"\x y -> f x y",
            "let x = id in x",
            "(f x :: Int)",
            "case m of { Just x -> x ; Nothing -> y }",
        ]:
            term = parse_term(source)
            assert parse_term(pretty_term(term)) == term
