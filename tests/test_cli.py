"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_infer(self, capsys):
        assert main(["infer", "head ids"]) == 0
        assert capsys.readouterr().out.strip() == "forall a. a -> a"

    def test_infer_rejection(self, capsys):
        assert main(["infer", "k h lst"]) == 1
        assert "type error" in capsys.readouterr().err

    def test_check_ok(self, capsys):
        assert main(["check", "single id", "[Int -> Int]"]) == 0
        assert capsys.readouterr().out.strip() == "ok"

    def test_check_fails(self, capsys):
        assert main(["check", "single id", "[Int -> Bool]"]) == 1

    def test_run(self, capsys):
        assert main(["run", "runST $ argST"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_run_rejects_ill_typed(self, capsys):
        assert main(["run", "inc True"]) == 1

    def test_elaborate(self, capsys):
        assert main(["elaborate", "head ids"]) == 0
        output = capsys.readouterr().out
        assert "term :" in output and "@(forall a. a -> a)" in output
        assert "type :" in output

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        output = capsys.readouterr().out
        assert "A1" in output and "32/32" in output

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


DEEP_EXPRESSION = "(" * 2000 + "x" + ")" * 2000
"""Nests far past the recursion limit of the recursive-descent parser."""


class TestCrashContainment:
    """No command may ever print a raw traceback (robustness satellite)."""

    def test_infer_deep_expression(self, capsys):
        assert main(["infer", DEEP_EXPRESSION]) == 1
        err = capsys.readouterr().err
        assert "internal error (RecursionError)" in err
        assert "Traceback" not in err
        assert err.count("\n") == 1  # a one-line diagnostic

    def test_run_deep_expression(self, capsys):
        assert main(["run", DEEP_EXPRESSION]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_check_deep_expression(self, capsys):
        assert main(["check", DEEP_EXPRESSION, "Int"]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_elaborate_deep_expression(self, capsys):
        assert main(["elaborate", DEEP_EXPRESSION]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_repl_survives_deep_expression(self, capsys, monkeypatch):
        lines = iter([DEEP_EXPRESSION, "head ids", ":q"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "internal error (RecursionError)" in out
        assert "forall a. a -> a" in out  # the loop kept going


MODULE_OK = """\
module Demo where

setters :: [forall a. a -> a]
setters = id : ids

pick = head setters
"""

MODULE_BAD = "good :: Int\ngood = 1\nbad = inc True\nhurt = single bad\n"


class TestModuleCLI:
    def _write(self, tmp_path, source):
        path = tmp_path / "demo.gi"
        path.write_text(source)
        return str(path)

    def test_module_ok(self, tmp_path, capsys):
        assert main(["module", self._write(tmp_path, MODULE_OK)]) == 0
        out = capsys.readouterr().out
        assert "setters :: [forall a. a -> a]" in out
        assert "pick :: forall a. a -> a" in out
        assert "2/2 bindings checked, 0 failed" in out

    def test_module_failures_exit_1(self, tmp_path, capsys):
        assert main(["module", self._write(tmp_path, MODULE_BAD)]) == 1
        out = capsys.readouterr().out
        assert "UnificationError" in out
        assert "SkippedBinding" in out
        assert "1/3 bindings checked, 2 failed" in out

    def test_module_json(self, tmp_path, capsys):
        import json

        assert main(["module", self._write(tmp_path, MODULE_BAD), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] == 1 and payload["failed"] == 2
        classes = {
            item["name"]: (item["diagnostic"] or {}).get("error_class")
            for item in payload["bindings"]
        }
        assert classes["bad"] == "UnificationError"
        assert classes["hurt"] == "SkippedBinding"
        assert "stats" not in payload

    def test_module_stats_json(self, tmp_path, capsys):
        import json

        path = self._write(tmp_path, MODULE_OK)
        assert main(["module", path, "--json", "--stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["cache_misses"] == 2
        assert payload["stats"]["groups_checked"] == 2

    def test_module_jobs(self, tmp_path, capsys):
        assert main(["module", self._write(tmp_path, MODULE_OK), "--jobs", "4"]) == 0
        assert "2/2 bindings checked" in capsys.readouterr().out

    def test_module_missing_file(self, capsys):
        assert main(["module", "/nonexistent/demo.gi"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_module_parse_error(self, tmp_path, capsys):
        assert main(["module", self._write(tmp_path, "x = inc )\n")]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_module_duplicate_binding(self, tmp_path, capsys):
        assert main(["module", self._write(tmp_path, "x = 1\nx = 2\n")]) == 1
        assert "duplicate binding" in capsys.readouterr().err

    def test_shipped_examples_check(self, capsys):
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples"
        for name in ("lens_library.gi", "runst_pipeline.gi"):
            assert main(["module", str(examples / name)]) == 0, name
        assert "0 failed" in capsys.readouterr().out


class TestReplCommands:
    def _run(self, monkeypatch, lines):
        feed = iter(lines + [":q"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(feed))
        return main(["repl"])

    def test_load_brings_bindings_into_scope(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "demo.gi"
        path.write_text(MODULE_OK)
        assert self._run(monkeypatch, [f":load {path}", "pick 3"]) == 0
        out = capsys.readouterr().out
        assert "loaded 2/2 bindings" in out
        assert "Int" in out

    def test_load_missing_file(self, capsys, monkeypatch):
        assert self._run(monkeypatch, [":load /nope.gi", "head ids"]) == 0
        out = capsys.readouterr().out
        assert "No such file or directory" in out
        assert "forall a. a -> a" in out  # the loop kept going

    def test_browse_marks_loaded_bindings(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "demo.gi"
        path.write_text(MODULE_OK)
        assert self._run(monkeypatch, [f":load {path}", ":browse"]) == 0
        out = capsys.readouterr().out
        assert "pick :: forall a. a -> a (loaded)" in out
        assert "tail :: forall p. [p] -> [p]" in out

    def test_unknown_command_prints_help(self, capsys, monkeypatch):
        assert self._run(monkeypatch, [":frobnicate"]) == 0
        out = capsys.readouterr().out
        assert "unknown command `:frobnicate`" in out
        assert ":load <file>" in out

    def test_help_command(self, capsys, monkeypatch):
        assert self._run(monkeypatch, [":help"]) == 0
        assert ":browse" in capsys.readouterr().out
