"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_infer(self, capsys):
        assert main(["infer", "head ids"]) == 0
        assert capsys.readouterr().out.strip() == "forall a. a -> a"

    def test_infer_rejection(self, capsys):
        assert main(["infer", "k h lst"]) == 1
        assert "type error" in capsys.readouterr().err

    def test_check_ok(self, capsys):
        assert main(["check", "single id", "[Int -> Int]"]) == 0
        assert capsys.readouterr().out.strip() == "ok"

    def test_check_fails(self, capsys):
        assert main(["check", "single id", "[Int -> Bool]"]) == 1

    def test_run(self, capsys):
        assert main(["run", "runST $ argST"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_run_rejects_ill_typed(self, capsys):
        assert main(["run", "inc True"]) == 1

    def test_elaborate(self, capsys):
        assert main(["elaborate", "head ids"]) == 0
        output = capsys.readouterr().out
        assert "term :" in output and "@(forall a. a -> a)" in output
        assert "type :" in output

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        output = capsys.readouterr().out
        assert "A1" in output and "32/32" in output

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


DEEP_EXPRESSION = "(" * 2000 + "x" + ")" * 2000
"""Nests far past the recursion limit of the recursive-descent parser."""


class TestCrashContainment:
    """No command may ever print a raw traceback (robustness satellite)."""

    def test_infer_deep_expression(self, capsys):
        assert main(["infer", DEEP_EXPRESSION]) == 1
        err = capsys.readouterr().err
        assert "internal error (RecursionError)" in err
        assert "Traceback" not in err
        assert err.count("\n") == 1  # a one-line diagnostic

    def test_run_deep_expression(self, capsys):
        assert main(["run", DEEP_EXPRESSION]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_check_deep_expression(self, capsys):
        assert main(["check", DEEP_EXPRESSION, "Int"]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_elaborate_deep_expression(self, capsys):
        assert main(["elaborate", DEEP_EXPRESSION]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_repl_survives_deep_expression(self, capsys, monkeypatch):
        lines = iter([DEEP_EXPRESSION, "head ids", ":q"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert main(["repl"]) == 0
        out = capsys.readouterr().out
        assert "internal error (RecursionError)" in out
        assert "forall a. a -> a" in out  # the loop kept going
