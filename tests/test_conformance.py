"""The conformance fuzzer: generator, oracles, metamorphic transforms,
fault-injection acceptance, CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.conformance import (
    DEFAULT_ORACLES,
    MODE_WELL_TYPED,
    FuzzConfig,
    OracleContext,
    TermGenerator,
    applicable_transforms,
    load_corpus,
    run_battery,
    run_fuzz,
    write_counterexample,
)
from repro.conformance.metamorphic import (
    annotate_inferred,
    eta_expand,
    let_float_argument,
    let_swap,
)
from repro.core.errors import GIError
from repro.core.infer import Inferencer
from repro.core.terms import Ann, Lam, Let, Lit, Var, app
from repro.core.types import alpha_equal
from repro.evalsuite.figure2 import figure2_env
from repro.robustness import read_batch_file


@pytest.fixture(scope="module")
def env():
    return figure2_env()


@pytest.fixture(scope="module")
def generator(env):
    return TermGenerator(env)


# ---------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------


def test_generation_is_deterministic(generator):
    first = [case.source for case in generator.cases(42, 60)]
    second = [case.source for case in generator.cases(42, 60)]
    assert first == second


def test_case_is_independent_of_count(generator):
    """``seed:index`` derivation: case 17 is the same whether the sweep
    asks for 20 or 200 cases."""
    assert generator.case(42, 17).source == generator.cases(42, 200)[17].source


def test_different_seeds_differ(generator):
    assert [c.source for c in generator.cases(1, 40)] != [
        c.source for c in generator.cases(2, 40)
    ]


def test_well_typed_mode_is_biased_toward_acceptance(env, generator):
    cases = [c for c in generator.cases(42, 150) if c.mode == MODE_WELL_TYPED]
    assert len(cases) >= 50  # the mode split must actually produce them
    accepted = 0
    for case in cases:
        try:
            Inferencer(env).infer(case.term)
            accepted += 1
        except GIError:
            pass
    assert accepted / len(cases) >= 0.8


def test_generated_terms_are_closed(env, generator):
    from repro.core.terms import free_vars

    names = set(env.names())
    for case in generator.cases(7, 80):
        assert free_vars(case.term) <= names, case.source


# ---------------------------------------------------------------------
# Oracle battery
# ---------------------------------------------------------------------


def test_battery_clean_on_seeded_sweep(env, generator):
    ctx = OracleContext(env)
    for case in generator.cases(42, 120):
        violation = run_battery(ctx, case.term)
        assert violation is None, f"case {case.index} `{case.source}`: {violation}"


def test_run_fuzz_is_reproducible(env):
    config = FuzzConfig(seed=11, count=60)
    first = run_fuzz(config, env=env).to_dict()
    second = run_fuzz(config, env=env).to_dict()
    first.pop("elapsed_seconds")
    second.pop("elapsed_seconds")
    assert first == second
    assert first["ok"]


def test_run_fuzz_parallel_matches_serial(env):
    serial = run_fuzz(FuzzConfig(seed=13, count=40, jobs=1), env=env).to_dict()
    parallel = run_fuzz(FuzzConfig(seed=13, count=40, jobs=4), env=env).to_dict()
    for report in (serial, parallel):
        report.pop("elapsed_seconds")
    assert serial == parallel


# ---------------------------------------------------------------------
# Fuzzer-found regressions (each has a corpus twin in tests/corpus/)
# ---------------------------------------------------------------------


def test_lit_equality_is_type_aware():
    """`True == 1` in Python must not conflate differently-typed terms."""
    assert Lit(True) != Lit(1)
    assert Lit(False) != Lit(0)
    assert hash(Lit(True)) != hash(Lit(1))
    assert Lit(1) == Lit(1)
    assert Lit(True) == Lit(True)


def test_lit_cache_confusion_regression(env):
    """Inferring `1` first must not poison a term-keyed cache for `True`."""
    ctx = OracleContext(env)
    assert str(ctx.outcome(Lit(1))[0].type_) == "Int"
    assert str(ctx.outcome(Lit(True))[0].type_) == "Bool"


def test_nested_forall_annotation_shadows_scoped_variable(env):
    """Regression: re-annotating a term whose inner annotation re-binds
    `a` must not leak the outer skolem into the open `(id :: a -> a)`."""
    from repro.syntax.parser import parse_term

    term = parse_term("((id :: a -> a) :: forall a. a -> a)")
    result = Inferencer(env).infer(term)
    again = Inferencer(env).infer(Ann(term, result.type_))
    assert alpha_equal(again.type_, result.type_)


# ---------------------------------------------------------------------
# Metamorphic transforms
# ---------------------------------------------------------------------


def _infer(env, term):
    return Inferencer(env).infer(term)


def test_eta_expand_preserves_type(env):
    term = Var("inc")
    result = _infer(env, term)
    expanded = eta_expand(term, result)
    assert expanded is not None
    assert alpha_equal(_infer(env, expanded).type_, result.type_)


def test_eta_expand_guards_poly_domain(env):
    term = Var("poly")  # (forall a. a -> a) -> (Int, Bool)
    assert eta_expand(term, _infer(env, term)) is None


def test_eta_expand_guards_non_arrow(env):
    term = Lit(3)
    assert eta_expand(term, _infer(env, term)) is None


def test_annotate_inferred_checks_principal_type(env):
    term = app(Var("single"), Var("id"))
    result = _infer(env, term)
    annotated = annotate_inferred(term, result)
    assert annotated is not None
    assert alpha_equal(_infer(env, annotated).type_, result.type_)


def test_let_float_argument_preserves_type(env):
    term = app(Var("length"), app(Var("single"), Lit(1)))
    result = _infer(env, term)
    floated = let_float_argument(term, result)
    assert isinstance(floated, Let)
    assert alpha_equal(_infer(env, floated).type_, result.type_)


def test_let_float_skips_lambdas(env):
    term = app(Var("poly"), Lam("x", Var("x")))
    result = _infer(env, term)
    assert let_float_argument(term, result) is None


def test_let_swap_independent_bindings(env):
    term = Let("x", Lit(1), Let("y", Lit(True), app(Var("plus"), Var("x"), Var("x"))))
    result = _infer(env, term)
    swapped = let_swap(term, result)
    assert swapped is not None
    assert alpha_equal(_infer(env, swapped).type_, result.type_)


def test_let_swap_guards_dependency(env):
    term = Let("x", Lit(1), Let("y", Var("x"), Var("y")))
    result = _infer(env, term)
    assert let_swap(term, result) is None


def test_applicable_transforms_accept_figure2_sample(env):
    """Every applicable transform must preserve type on a paper example."""
    from repro.syntax.parser import parse_term

    term = parse_term("length (single id)")
    result = _infer(env, term)
    transforms = applicable_transforms(term, result)
    assert transforms  # at least one applies
    for name, transformed in transforms:
        new = _infer(env, transformed)
        assert alpha_equal(new.type_, result.type_), name


# ---------------------------------------------------------------------
# Fault injection: the battery must catch, shrink and persist
# ---------------------------------------------------------------------


def test_injected_fault_is_caught_shrunk_and_persisted(env, tmp_path):
    config = FuzzConfig(seed=7, count=4, fault_step=1, corpus_dir=tmp_path)
    report = run_fuzz(config, env=env)
    assert not report.ok
    assert report.counterexamples
    for ce in report.counterexamples:
        assert ce.violation.oracle == "crash"
        assert ce.violation.error_class == "InjectedFaultError"
        from repro.core.terms import term_size

        assert term_size(ce.shrunk) <= ce.case.size
        assert ce.corpus_path is not None and ce.corpus_path.exists()
    # the persisted corpus replays through the standard loader
    entries = load_corpus(tmp_path)
    assert len(entries) == len(
        {str(ce.shrunk) for ce in report.counterexamples}
    )
    assert all(entry.metadata["oracle"] == "crash" for entry in entries)


def test_fault_plans_force_serial(env, tmp_path):
    """A faulty config must produce identical reports at any --jobs."""
    one = run_fuzz(
        FuzzConfig(seed=3, count=3, fault_step=2, jobs=1, corpus_dir=tmp_path / "a"),
        env=env,
    ).to_dict()
    four = run_fuzz(
        FuzzConfig(seed=3, count=3, fault_step=2, jobs=4, corpus_dir=tmp_path / "b"),
        env=env,
    ).to_dict()
    for report in (one, four):
        report.pop("elapsed_seconds")
        for violation in report["violations"]:
            violation.pop("corpus_path")
    assert one == four


# ---------------------------------------------------------------------
# Corpus files and batch-directory support
# ---------------------------------------------------------------------


def test_write_counterexample_is_idempotent(tmp_path):
    term = app(Var("single"), Lit(1))
    first = write_counterexample(tmp_path, term, "crash", "boom", {"seed": 1})
    second = write_counterexample(tmp_path, term, "crash", "boom again", {"seed": 2})
    assert first == second
    assert len(list(tmp_path.glob("*.gi"))) == 1


def test_corpus_roundtrip(tmp_path):
    term = app(Var("single"), Lit(1))
    write_counterexample(tmp_path, term, "metamorphic:eta", "msg", {"case": 9})
    (entry,) = load_corpus(tmp_path)
    assert entry.term == term
    assert entry.metadata["oracle"] == "metamorphic:eta"
    assert entry.metadata["case"] == "9"


def test_read_batch_file_accepts_directories(tmp_path):
    (tmp_path / "a.gi").write_text("-- oracle: crash\nsingle 1\n")
    (tmp_path / "b.gi").write_text("-- comment\n\nhead ids\n")
    (tmp_path / "ignored.txt").write_text("nope\n")
    assert read_batch_file(str(tmp_path)) == ["single 1", "head ids"]


def test_batch_cli_runs_checked_in_corpus(capsys):
    code = main(["batch", "tests/corpus"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failed" in out


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------


def test_fuzz_cli_clean_run(capsys):
    assert main(["fuzz", "--seed", "5", "--count", "25"]) == 0
    out = capsys.readouterr().out
    assert "ok" in out


def test_fuzz_cli_json(capsys):
    assert main(["fuzz", "--seed", "5", "--count", "10", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["seed"] == 5
    assert report["accepted"] + report["rejected"] == 10
    assert set(report["oracles"]) == set(DEFAULT_ORACLES)


def test_fuzz_cli_rejects_unknown_oracle(capsys):
    assert main(["fuzz", "--count", "1", "--oracle", "nonsense"]) == 2
    assert "unknown oracle" in capsys.readouterr().err


def test_fuzz_cli_single_oracle(capsys):
    assert main(["fuzz", "--seed", "5", "--count", "10", "--oracle", "crash"]) == 0
    assert "ok" in capsys.readouterr().out


def test_fuzz_cli_fault_injection_fails_and_persists(tmp_path, capsys):
    code = main(
        [
            "fuzz",
            "--seed",
            "7",
            "--count",
            "3",
            "--fault-step",
            "1",
            "--corpus",
            str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL [crash]" in out
    assert list(tmp_path.glob("crash-*.gi"))


def test_fuzz_cli_emits_trace_events(tmp_path, capsys):
    trace = tmp_path / "fuzz.jsonl"
    assert (
        main(["fuzz", "--seed", "5", "--count", "10", "--trace", str(trace)]) == 0
    )
    capsys.readouterr()
    names = [json.loads(line).get("name") for line in trace.read_text().splitlines()]
    assert "fuzz.case" in names
