"""Quick Look backend unit tests (ICFP 2020, "A quick look at
impredicativity").

RankN bidirectional inference plus a per-spine quick-look pass:
instantiation variables collected over a whole application spine may be
committed to σ-types when the σ is manifestly the only choice (guarded
under a type constructor, or not ∀-headed).  Everything outside spines
behaves exactly like the RankN baseline.
"""

import pytest

from repro.baselines import (
    QuickLookError,
    QuickLookInferencer,
    RankNInferencer,
    quicklook_infer,
)
from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.types import alpha_equal, rename_canonical
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.syntax import parse_term

ENV = figure2_env()


def ql(source: str) -> str:
    return str(quicklook_infer(parse_term(source), ENV))


class TestRankNBase:
    def test_higher_rank_checking(self):
        assert (
            ql(r"(\f -> pair (f 1) (f True) :: (forall a. a -> a) -> (Int, Bool))")
            == "(forall a. a -> a) -> (Int, Bool)"
        )

    def test_poly_lambda_argument(self):
        assert ql(r"poly (\x -> x)") == "(Int, Bool)"

    def test_skolem_escape(self):
        with pytest.raises(GIError):
            ql(r"\y -> (\x -> y :: forall a. a -> a)")

    def test_ungeneralised_lambda_body_stays_mono(self):
        with pytest.raises(GIError):
            ql(r"\f -> pair (f 1) (f True)")


class TestQuickLook:
    def test_guarded_commit(self):
        # C1-C3: κ committed to ∀a.a→a because [κ] guards it.
        assert ql("head ids") == "forall a. a -> a"
        assert ql("tail ids") == "[forall a. a -> a]"

    def test_unguarded_forall_headed_no_commit(self):
        # `single id`: κ appears bare as the result [κ]… guarded, but the
        # argument σ comes from eager instantiation, so it stays
        # predicative exactly like RankN.
        assert ql("single id") == "forall a. [a -> a]"

    def test_impredicative_apply(self):
        # A5/A12: the rank-2 function type of the head makes the σ
        # instantiation manifest.
        assert ql("id auto") == "(forall a. a -> a) -> (forall b. b -> b)"
        assert ql(r"id poly (\x -> x)") == "(Int, Bool)"

    def test_nested_spine_commit(self):
        # C10: the inner spine's σ-result flows into the outer spine's
        # instantiation variable.
        assert ql("map head (single ids)") == "[forall a. a -> a]"

    def test_b_group_still_rejected(self):
        for source in (r"\f -> pair (f 1) (f True)", r"\xs -> poly (head xs)"):
            with pytest.raises(GIError):
                ql(source)

    def test_annotated_sigma_commits(self):
        assert ql("single (id :: forall a. a -> a)") == "[forall a. a -> a]"


class TestConservativity:
    def test_rankn_acceptances_survive_with_equal_types(self):
        rankn = RankNInferencer(ENV)
        for example in FIGURE2:
            try:
                base = rankn.infer(example.term)
            except GIError:
                continue
            extended = QuickLookInferencer(ENV).infer(example.term)
            assert alpha_equal(
                rename_canonical(base), rename_canonical(extended)
            ), example.key

    def test_gi_acceptances_survive(self):
        gi = Inferencer(ENV)
        for example in FIGURE2:
            if gi.accepts(example.term):
                QuickLookInferencer(ENV).infer(example.term)  # must not raise


class TestDeterminism:
    def test_two_runs_agree(self):
        source = "map head (single ids)"
        first = str(QuickLookInferencer(ENV).infer(parse_term(source)))
        second = str(QuickLookInferencer(ENV).infer(parse_term(source)))
        assert first == second == "[forall a. a -> a]"
