"""The module checker and the incremental engine.

The acceptance scenario lives in :class:`TestIncremental`: on a
~100-binding synthetic module, editing one leaf binding re-checks only
that binding's SCC and its transitive dependents — verified through the
``--stats`` cache-hit counters — and a type-preserving edit cuts off
even earlier.
"""

import json

from repro.core.errors import CyclicBindingError
from repro.evalsuite.figure2 import figure2_env
from repro.evalsuite.modules_corpus import (
    package_module_source,
    stackage_fragment_source,
    synthetic_module_source,
)
from repro.evalsuite.stackage import generate_corpus, study_env
from repro.modules import (
    ModuleCache,
    ModuleEngine,
    binding_groups,
    check_group,
    parse_module,
    render_module_text,
)
from repro.robustness import Budget
from repro.syntax import parse_term

ENV = figure2_env()

IMPREDICATIVE = """\
module Demo where

setters :: [forall a. a -> a]
setters = id : ids

pick = head setters

evens :: Int -> Bool
evens = \\x -> odds x

odds :: Int -> Bool
odds = \\x -> evens x

dup = \\x -> pair x x
"""


class TestCheckModule:
    def test_signatures_guide_impredicativity(self):
        result = ModuleEngine(ENV).check_source(IMPREDICATIVE)
        assert result.ok
        assert result.types["setters"] == "[forall a. a -> a]"
        # `head setters` instantiates head at the polymorphic element type.
        assert result.types["pick"] == "forall a. a -> a"

    def test_unsigned_bindings_generalise(self):
        result = ModuleEngine(ENV).check_source(IMPREDICATIVE)
        assert result.types["dup"] == "forall a. a -> (a, a)"

    def test_recursive_group_with_signatures(self):
        result = ModuleEngine(ENV).check_source(IMPREDICATIVE)
        assert result.types["evens"] == "Int -> Bool"
        assert result.types["odds"] == "Int -> Bool"

    def test_self_recursion_with_signature(self):
        result = ModuleEngine(ENV).check_source(
            "spin :: Int -> Int\nspin = \\x -> spin x\n"
        )
        assert result.ok

    def test_unannotated_recursion_rejected(self):
        result = ModuleEngine(ENV).check_source("loop = \\x -> loop x\n")
        assert not result.ok
        diagnostic = result.reports[0].diagnostic
        assert diagnostic.error_class == "CyclicBindingError"
        assert "type signature" in diagnostic.message

    def test_unannotated_mutual_recursion_names_missing_members(self):
        source = "f :: Int -> Int\nf = \\x -> g x\ng = \\x -> f x\n"
        result = ModuleEngine(ENV).check_source(source)
        assert not result.ok
        messages = {r.name: r.diagnostic.message for r in result.failures}
        assert set(messages) == {"f", "g"}
        assert "missing: `g`" in messages["f"]

    def test_failure_skips_dependents_not_siblings(self):
        source = (
            "bad :: Int\nbad = inc True\n"
            "hurt = single bad\n"
            "fine = head ids\n"
        )
        result = ModuleEngine(ENV).check_source(source)
        by_name = {report.name: report for report in result.reports}
        assert by_name["bad"].diagnostic.error_class == "UnificationError"
        assert by_name["hurt"].diagnostic.error_class == "SkippedBinding"
        assert "`bad`" in by_name["hurt"].diagnostic.message
        assert by_name["fine"].ok

    def test_declared_signature_is_the_env_type(self):
        # Check mode binds at the declared type, not a re-generalisation.
        source = "f :: Int -> Int\nf = \\x -> x\n"
        result = ModuleEngine(ENV).check_source(source)
        assert result.types["f"] == "Int -> Int"

    def test_result_env_is_usable(self):
        from repro.core import Inferencer

        result = ModuleEngine(ENV).check_source(IMPREDICATIVE)
        gi = Inferencer(result.env)
        assert str(gi.infer(parse_term("pick 3")).type_) == "Int"

    def test_module_binding_shadows_prelude(self):
        result = ModuleEngine(ENV).check_source("inc = \\b -> not b\nuse = inc True\n")
        assert result.ok
        assert result.types["use"] == "Bool"

    def test_budget_exhaustion_is_a_diagnostic(self):
        busy = "busy = app (app (app id id) (app id id)) (app (app id id) (app id id))\n"
        engine = ModuleEngine(ENV, budget=Budget(max_solver_steps=10))
        result = engine.check_source(busy + "fine :: Int\nfine = 1\n")
        by_name = {report.name: report for report in result.reports}
        assert by_name["busy"].diagnostic.error_class == "BudgetExceededError"
        assert by_name["fine"].ok

    def test_to_dict_is_json_serialisable(self):
        result = ModuleEngine(ENV).check_source(IMPREDICATIVE)
        payload = result.to_dict()
        json.dumps(payload)
        assert payload["passed"] == 5
        assert payload["stats"]["cache_misses"] == 5
        assert payload["bindings"][0]["group"] == ["setters"]

    def test_render_text_summary(self):
        text = render_module_text(ModuleEngine(ENV).check_source(IMPREDICATIVE))
        assert "5/5 bindings checked, 0 failed" in text
        assert "setters :: [forall a. a -> a]" in text


class TestCheckGroup:
    def test_cyclic_diagnostics_cover_all_members(self):
        module = parse_module("f = \\x -> g x\ng = \\x -> f x\n")
        group = binding_groups(module)[0]
        outcome = check_group(group, ENV)
        assert set(outcome.diagnostics) == {"f", "g"}
        assert not outcome.types

    def test_error_type_is_cyclic_binding_error(self):
        error = CyclicBindingError(("f", "g"), ("g",))
        assert "binding group {`f`, `g`}" in str(error)
        assert error.missing == ("g",)


class TestIncremental:
    """The acceptance scenario, on the ~100-binding synthetic module."""

    def setup_method(self):
        self.source = synthetic_module_source(chains=4, depth=25)
        self.engine = ModuleEngine(ENV, cache=ModuleCache())
        self.total = len(parse_module(self.source).bindings)
        assert self.total == 102

    def test_cold_check_misses_everything(self):
        result = self.engine.check_source(self.source)
        assert result.ok
        assert result.stats.cache_misses == self.total
        assert result.stats.cache_hits == 0

    def test_warm_recheck_hits_everything(self):
        self.engine.check_source(self.source)
        result = self.engine.check_source(self.source)
        assert result.stats.cache_hits == self.total
        assert result.stats.cache_misses == 0
        assert result.stats.groups_checked == 0

    def test_leaf_edit_rechecks_only_its_chain(self):
        self.engine.check_source(self.source)
        # A type-changing edit on chain 0's leaf: Int -> Bool.
        edited = self.source.replace(
            "c0_0 :: Int\nc0_0 = 0", "c0_0 :: Bool\nc0_0 = True"
        )
        assert edited != self.source
        result = self.engine.check_source(edited)
        assert result.ok
        # Exactly chain 0 (25 bindings) re-checks; everything else hits.
        assert result.stats.cache_misses == 25
        assert result.stats.cache_hits == self.total - 25
        rechecked = {
            report.name for report in result.reports if not report.cached
        }
        assert rechecked == {f"c0_{i}" for i in range(25)}

    def test_type_preserving_edit_cuts_off_early(self):
        self.engine.check_source(self.source)
        edited = self.source.replace("c0_0 = 0", "c0_0 = 7")
        result = self.engine.check_source(edited)
        # The leaf's type is unchanged, so dependents' keys are unchanged:
        # only the edited binding itself re-checks.
        assert result.stats.cache_misses == 1
        assert result.stats.cache_hits == self.total - 1

    def test_whitespace_edit_is_free(self):
        self.engine.check_source(self.source)
        edited = self.source.replace("c0_0 = 0", "c0_0 =\n  0   -- same")
        result = self.engine.check_source(edited)
        assert result.stats.cache_misses == 0

    def test_concurrent_equals_serial(self):
        serial = ModuleEngine(ENV).check_source(self.source)
        concurrent = ModuleEngine(ENV, jobs=4).check_source(self.source)
        assert concurrent.ok
        assert serial.types == concurrent.types
        assert concurrent.stats.jobs == 4

    def test_cached_types_are_reusable(self):
        self.engine.check_source(self.source)
        result = self.engine.check_source(self.source)
        from repro.core import Inferencer

        gi = Inferencer(result.env)
        assert str(gi.infer(parse_term("inc runner")).type_) == "Int"


class TestEvalsuiteModules:
    def test_stackage_fragments_check_as_a_module(self):
        result = ModuleEngine(ENV).check_source(stackage_fragment_source())
        assert result.ok
        assert result.types["storeId"] == "[forall a. a -> a]"

    def test_synthetic_package_checks_as_a_module(self):
        package = generate_corpus(size=40)[0]
        result = ModuleEngine(study_env()).check_source(
            package_module_source(package)
        )
        assert result.ok
        assert len(result.reports) == len(package.declarations)
