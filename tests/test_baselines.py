"""Tests for the executable baselines: HM (Algorithm W), HMF, RankN.

The HMF column agreement with Figure 2 is measured in test_figure2_matrix;
here we test the baselines' own behaviours directly.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines import (
    HMFInferencer,
    HMInferencer,
    RankNInferencer,
    SYSTEMS,
    get_system,
)
from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.terms import Lam, free_vars
from repro.core.types import alpha_equal, rename_canonical
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import FIGURE2, figure2_env

from tests.strategies import hm_terms

ENV = figure2_env()


def hm_type(source: str):
    return HMInferencer(ENV).infer(parse_term(source))


def hmf_type(source: str, nary: bool = False):
    return HMFInferencer(ENV, nary=nary).infer(parse_term(source))


def rankn_type(source: str):
    return RankNInferencer(ENV).infer(parse_term(source))


class TestHM:
    def test_identity(self):
        assert str(hm_type(r"\x -> x")) == "forall a. a -> a"

    def test_let_generalises(self):
        # Classic HM let-polymorphism (unlike GI's let, §3.5).
        assert str(hm_type(r"let f = \x -> x in pair (f 1) (f True)")) == "(Int, Bool)"

    def test_lambda_monomorphic(self):
        with pytest.raises(GIError):
            hm_type(r"\f -> pair (f 1) (f True)")

    def test_rejects_impredicative_env_types(self):
        with pytest.raises(GIError):
            hm_type("head ids")
        with pytest.raises(GIError):
            hm_type("poly id")

    def test_rank1_signature(self):
        assert str(hm_type(r"(\x -> x :: forall a. a -> a)")) == "forall a. a -> a"

    def test_rejects_higher_rank_signature(self):
        with pytest.raises(GIError):
            hm_type(r"(\x -> x :: (forall a. a -> a) -> (forall a. a -> a))")

    def test_signature_cannot_over_claim(self):
        with pytest.raises(GIError):
            hm_type(r"(\x -> inc x :: forall a. a -> a)")

    def test_case(self):
        assert str(hm_type("case Just 1 of { Just x -> x ; Nothing -> 0 }")) == "Int"

    def test_occurs(self):
        with pytest.raises(GIError):
            hm_type(r"\x -> x x")

    @settings(max_examples=40, suppress_health_check=[HealthCheck.filter_too_much], deadline=None)
    @given(hm_terms())
    def test_deterministic(self, term):
        for name in sorted(free_vars(term) - {"inc", "plus", "choose", "single", "length"}):
            term = Lam(name, term)
        hm = HMInferencer(ENV)
        try:
            first = hm.infer(term)
        except GIError:
            return
        second = HMInferencer(ENV).infer(term)
        assert alpha_equal(first, second)


class TestHMF:
    def test_choose_id_is_predicative(self):
        # The minimal-instantiation preference (A2's footnote).
        assert str(hmf_type("choose id")) == "forall a. (a -> a) -> a -> a"

    def test_single_id_is_predicative(self):
        assert str(hmf_type("single id")) == "forall a. [a -> a]"

    def test_impredicativity_from_actual_types(self):
        assert str(hmf_type("choose [] ids")) == "[forall a. a -> a]"
        assert str(hmf_type("head ids")) == "forall a. a -> a"

    def test_choose_id_auto_rejected(self):
        # The published system's flagship rejection (A7).
        with pytest.raises(GIError):
            hmf_type("choose id auto")

    def test_propagation_into_arguments(self):
        # C9: map poly (single id) — the expected type [∀a.a→a] reaches
        # the nested application.
        assert str(hmf_type("map poly (single id)")) == "[(Int, Bool)]"

    def test_plain_mode_fails_delayed_examples(self):
        with pytest.raises(GIError):
            hmf_type("id : ids")
        with pytest.raises(GIError):
            hmf_type("revapp argST runST")

    def test_nary_extension_recovers_them(self):
        assert str(hmf_type("id : ids", nary=True)) == "[forall a. a -> a]"
        assert str(hmf_type("revapp argST runST", nary=True)) == "Int"

    def test_lambda_binders_fully_monomorphic(self):
        with pytest.raises(GIError):
            hmf_type(r"\xs -> poly (head xs)")

    def test_annotations(self):
        assert (
            str(hmf_type(r"(\(f :: forall a. a -> a) -> f 1 :: (forall a. a -> a) -> Int)"))
            == "(forall a. a -> a) -> Int"
        )

    def test_runst(self):
        assert str(hmf_type("runST argST")) == "Int"
        assert str(hmf_type("app runST argST")) == "Int"


class TestRankN:
    def test_higher_rank_checking(self):
        assert (
            str(rankn_type(r"(\f -> pair (f 1) (f True) :: (forall a. a -> a) -> (Int, Bool))"))
            == "(forall a. a -> a) -> (Int, Bool)"
        )

    def test_poly_lambda_argument(self):
        assert str(rankn_type(r"poly (\x -> x)")) == "(Int, Bool)"

    def test_no_impredicative_instantiation(self):
        for source in ("head ids", "single id ++ ids", "app runST argST"):
            with pytest.raises(GIError):
                rankn_type(source)

    def test_deep_skolemisation(self):
        # r (λx y. y) — E3: accepted thanks to deep skolemisation, a
        # genuine difference from GI (which rejects E3).
        assert str(rankn_type(r"r (\x y -> y)")) == "Int"
        assert not Inferencer(ENV).accepts(parse_term(r"r (\x y -> y)"))

    def test_predicative_runst(self):
        assert str(rankn_type("runST argST")) == "Int"

    def test_skolem_escape(self):
        with pytest.raises(GIError):
            rankn_type(r"\y -> (\x -> y :: forall a. a -> a)")


class TestRegistry:
    def test_all_systems_run(self):
        term = parse_term("inc 1")
        for name, system in SYSTEMS.items():
            assert system.accepts(term, ENV), name

    def test_get_system(self):
        assert get_system("GI").name == "GI"

    def test_gi_through_registry_matches_direct(self):
        term = parse_term("head ids")
        via_registry = SYSTEMS["GI"].infer(term, ENV)
        direct = Inferencer(ENV).infer(term).type_
        assert alpha_equal(via_registry, direct)

    def test_acceptance_ordering_on_figure2(self):
        """HM ⊆ RankN-ish ⊆ GI on the corpus (sanity of relative power)."""
        hm, gi = SYSTEMS["HM"], SYSTEMS["GI"]
        for example in FIGURE2:
            if hm.accepts(example.term, ENV):
                assert gi.accepts(example.term, ENV), example.key
