"""Direct tests of constraint generation (Figure 7)."""

import pytest

from repro.core.classify import Bit
from repro.core.constraints import Eq, Gen, Inst, Quant
from repro.core.generate import GenOptions, Generator
from repro.core.sorts import Sort
from repro.core.types import Forall, UVar, fuv
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import figure2_env

ENV = figure2_env()


def generate(source: str, **options):
    generator = Generator(options=GenOptions(**options) if options else None)
    return generator.gen(ENV, parse_term(source))


class TestShapes:
    def test_lone_variable_is_nullary_app(self):
        type_, constraints = generate("id")
        assert isinstance(type_, UVar) and type_.sort is Sort.T
        [inst] = constraints
        assert isinstance(inst, Inst)
        assert inst.bits == () and inst.args == ()

    def test_literal_has_no_constraints(self):
        type_, constraints = generate("42")
        assert str(type_) == "Int" and constraints == []

    def test_application_emits_inst_then_gens(self):
        type_, constraints = generate("single id")
        kinds = [type(c).__name__ for c in constraints]
        assert kinds == ["Inst", "Gen"]
        inst = constraints[0]
        assert inst.sort is Sort.M
        assert len(inst.args) == 1

    def test_vargen_bit_for_rank1_vars(self):
        _, constraints = generate("single id")
        inst, gen = constraints
        assert inst.bits == (Bit.STAR,)
        assert gen.star

    def test_arggen_bit_for_expressions(self):
        _, constraints = generate("single (id 1)")
        inst = constraints[0]
        assert inst.bits == (Bit.GEN,)
        assert not constraints[1].star

    def test_arggen_bit_for_non_rank1_vars(self):
        # ids : [∀a.a→a] is not rank-1, so ArgGen applies.
        _, constraints = generate("single ids")
        assert constraints[0].bits == (Bit.GEN,)

    def test_vargen_disabled_by_option(self):
        _, constraints = generate("single id", use_vargen=False)
        assert constraints[0].bits == (Bit.GEN,)

    def test_annotation_produces_quant(self):
        type_, constraints = generate("(single id :: [forall a. a -> a])")
        [quant] = constraints
        assert isinstance(quant, Quant)
        assert str(type_) == "[forall a. a -> a]"
        inner_inst = [c for c in quant.wanteds if isinstance(c, Inst)]
        assert inner_inst and inner_inst[0].sort is Sort.U

    def test_annotation_skolems_are_freshened(self):
        _, constraints = generate("(id :: forall a. a -> a)")
        [quant] = constraints
        assert quant.skolems and quant.skolems[0] != "a"

    def test_scheme_captures_argument_variables(self):
        _, constraints = generate("single (id 1)")
        gen = constraints[1]
        assert isinstance(gen, Gen)
        assert gen.scheme.captured  # the inner application's variables
        inner_fuv = set()
        for inner in gen.scheme.constraints:
            from repro.core.constraints import constraint_fuv

            inner_fuv |= constraint_fuv(inner)
        assert set(gen.scheme.captured) <= inner_fuv | set(gen.scheme.captured)

    def test_binary_mode_one_arg_per_inst(self):
        _, constraints = generate("choose id auto", nary_apps=False)
        insts = [c for c in constraints if isinstance(c, Inst)]
        assert len(insts) == 2
        assert all(len(inst.args) == 1 for inst in insts)

    def test_nary_mode_one_inst(self):
        _, constraints = generate("choose id auto")
        insts = [c for c in constraints if isinstance(c, Inst)]
        assert len(insts) == 1
        assert len(insts[0].args) == 2

    def test_lambda_binder_is_fully_monomorphic(self):
        generator = Generator()
        type_, _ = generator.gen(ENV, parse_term(r"\x -> x"))
        binder = generator.evidence.lam_binders[()]
        assert binder.sort is Sort.M

    def test_let_records_bound_type(self):
        generator = Generator()
        generator.gen(ENV, parse_term("let x = inc 1 in x"))
        assert () in generator.evidence.let_types

    def test_case_constraints(self):
        _, constraints = generate(
            "case Just 1 of { Just x -> x ; Nothing -> 0 }"
        )
        insts = [c for c in constraints if isinstance(c, Inst)]
        eqs = [c for c in constraints if isinstance(c, Eq)]
        assert insts and len(eqs) == 2  # one result equation per branch

    def test_unknown_constructor_raises(self):
        with pytest.raises(Exception):
            generate("case x of { Bogus y -> y }")
