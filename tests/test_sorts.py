"""Unit tests for the sort lattice (Figure 3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.sorts import Sort, SortAssignment, join_all

SORTS = st.sampled_from(list(Sort))


class TestLattice:
    def test_total_order(self):
        assert Sort.M < Sort.T < Sort.U

    def test_symbols_match_paper(self):
        assert Sort.M.symbol == "m"
        assert Sort.T.symbol == "t"
        assert Sort.U.symbol == "u"

    def test_join_with_bottom_is_identity(self):
        for sort in Sort:
            assert sort.join(Sort.M) is sort

    def test_meet_with_top_is_identity(self):
        for sort in Sort:
            assert sort.meet(Sort.U) is sort

    @given(SORTS, SORTS)
    def test_join_commutative(self, left, right):
        assert left.join(right) is right.join(left)

    @given(SORTS, SORTS, SORTS)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) is a.join(b.join(c))

    @given(SORTS)
    def test_join_idempotent(self, sort):
        assert sort.join(sort) is sort

    @given(SORTS, SORTS)
    def test_join_is_upper_bound(self, left, right):
        joined = left.join(right)
        assert joined >= left and joined >= right

    @given(SORTS, SORTS)
    def test_meet_is_lower_bound(self, left, right):
        met = left.meet(right)
        assert met <= left and met <= right

    def test_permits_reflexive(self):
        for sort in Sort:
            assert sort.permits(sort)

    def test_permits_is_downward(self):
        # A variable of a permissive sort may hold a more restricted type.
        assert Sort.U.permits(Sort.M)
        assert Sort.U.permits(Sort.T)
        assert Sort.T.permits(Sort.M)
        assert not Sort.M.permits(Sort.T)
        assert not Sort.M.permits(Sort.U)
        assert not Sort.T.permits(Sort.U)

    def test_join_all_empty_is_bottom(self):
        assert join_all([]) is Sort.M

    def test_join_all(self):
        assert join_all([Sort.M, Sort.T]) is Sort.T
        assert join_all([Sort.M, Sort.U, Sort.T]) is Sort.U


class TestSortAssignment:
    def test_joined_with_takes_max(self):
        left = SortAssignment({"a": Sort.M, "b": Sort.U})
        right = SortAssignment({"a": Sort.T, "c": Sort.M})
        joined = left.joined_with(right)
        assert joined == {"a": Sort.T, "b": Sort.U, "c": Sort.M}

    def test_joined_with_does_not_mutate(self):
        left = SortAssignment({"a": Sort.M})
        right = SortAssignment({"a": Sort.U})
        left.joined_with(right)
        assert left["a"] is Sort.M

    def test_without_removes(self):
        assignment = SortAssignment({"a": Sort.M, "b": Sort.T})
        assert assignment.without(["a"]) == {"b": Sort.T}

    def test_without_missing_is_noop(self):
        assignment = SortAssignment({"a": Sort.M})
        assert assignment.without(["z"]) == {"a": Sort.M}

    def test_overridden_by_is_right_biased(self):
        left = SortAssignment({"a": Sort.U})
        right = SortAssignment({"a": Sort.M})
        assert left.overridden_by(right)["a"] is Sort.M
