"""Unit and property tests for the type AST (Figures 3 and 6)."""

import pytest
from hypothesis import given

from repro.core.sorts import Sort
from repro.core.types import (
    BOOL,
    INT,
    Forall,
    Pred,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    arrow_parts,
    contains_uvar,
    forall,
    ftv,
    fun,
    fuv,
    is_arrow,
    is_fully_monomorphic,
    is_rank1,
    list_of,
    rename_canonical,
    respects,
    sort_of,
    split_arrows,
    strip_forall,
    subst_tvars,
    subst_uvars,
    tuple_of,
    type_size,
)

from tests.strategies import monotypes, polytypes

A, B, C = TVar("a"), TVar("b"), TVar("c")
ID = forall(["a"], fun(A, A))


class TestConstruction:
    def test_fun_right_nests(self):
        assert fun(A, B, C) == TCon("->", (A, TCon("->", (B, C))))

    def test_fun_needs_a_type(self):
        with pytest.raises(ValueError):
            fun()

    def test_list_of(self):
        assert list_of(INT) == TCon("[]", (INT,))

    def test_tuple_of(self):
        assert tuple_of(INT, BOOL) == TCon("(,)", (INT, BOOL))
        with pytest.raises(ValueError):
            tuple_of(INT)

    def test_forall_collapses_nested(self):
        inner = Forall(("b",), fun(A, B))
        assert forall(["a"], inner) == Forall(("a", "b"), fun(A, B))

    def test_forall_drops_unused_binders(self):
        assert forall(["a", "z"], fun(A, A)) == Forall(("a",), fun(A, A))

    def test_forall_empty_is_identity(self):
        assert forall([], INT) == INT

    def test_forall_keeps_context_binders(self):
        qualified = forall(["a"], BOOL, [Pred("Eq", (A,))])
        assert isinstance(qualified, Forall)
        assert qualified.binders == ("a",)

    def test_forall_context_only(self):
        qualified = forall([], BOOL, [Pred("C", (INT,))])
        assert isinstance(qualified, Forall)
        assert qualified.binders == ()

    def test_arrow_helpers(self):
        arrow = fun(INT, BOOL)
        assert is_arrow(arrow)
        assert arrow_parts(arrow) == (INT, BOOL)
        assert not is_arrow(INT)
        with pytest.raises(ValueError):
            arrow_parts(INT)

    def test_split_arrows(self):
        arguments, result = split_arrows(fun(A, B, C))
        assert arguments == [A, B] and result == C
        arguments, result = split_arrows(fun(A, B, C), limit=1)
        assert arguments == [A] and result == fun(B, C)

    def test_strip_forall(self):
        assert strip_forall(ID) == (("a",), fun(A, A))
        assert strip_forall(INT) == ((), INT)


class TestFreeVariables:
    def test_ftv_simple(self):
        assert ftv(fun(A, B)) == {"a", "b"}

    def test_ftv_bound_removed(self):
        assert ftv(ID) == set()

    def test_ftv_shadowing(self):
        type_ = fun(A, forall(["a"], fun(A, B)))
        assert ftv(type_) == {"a", "b"}

    def test_ftv_context(self):
        qualified = Forall(("a",), A, (Pred("Eq", (B,)),))
        assert ftv(qualified) == {"b"}

    def test_fuv(self):
        alpha = UVar("x", Sort.U)
        assert fuv(fun(alpha, list_of(alpha))) == {alpha}
        assert fuv(ID) == set()


class TestSubstitution:
    def test_subst_tvar(self):
        assert subst_tvars({"a": INT}, fun(A, B)) == fun(INT, B)

    def test_subst_respects_binding(self):
        assert subst_tvars({"a": INT}, ID) == ID

    def test_subst_capture_avoiding(self):
        # [b ↦ a] (∀a. a → b) must rename the binder, not capture.
        target = forall(["a"], fun(A, B))
        result = subst_tvars({"b": A}, target)
        assert isinstance(result, Forall)
        binder = result.binders[0]
        assert binder != "a"
        assert result.body == fun(TVar(binder), A)

    def test_subst_empty_mapping_is_identity(self):
        assert subst_tvars({}, ID) is ID

    def test_subst_uvars(self):
        alpha = UVar("x", Sort.U)
        assert subst_uvars({alpha: INT}, fun(alpha, A)) == fun(INT, A)

    @given(polytypes())
    def test_subst_identity_mapping(self, type_):
        mapping = {name: TVar(name) for name in ftv(type_)}
        assert subst_tvars(mapping, type_) == type_


class TestSorts:
    def test_respects_u_always(self):
        assert respects(ID, Sort.U)
        assert respects(INT, Sort.U)

    def test_respects_t(self):
        assert respects(list_of(ID), Sort.T)  # poly under constructor
        assert not respects(ID, Sort.T)  # top-level quantifier
        assert not respects(UVar("x", Sort.U), Sort.T)
        assert respects(UVar("x", Sort.T), Sort.T)

    def test_respects_m(self):
        assert respects(fun(INT, A), Sort.M)
        assert not respects(list_of(ID), Sort.M)
        assert not respects(UVar("x", Sort.T), Sort.M)
        assert respects(UVar("x", Sort.M), Sort.M)

    def test_sort_of(self):
        assert sort_of(INT) is Sort.M
        assert sort_of(list_of(ID)) is Sort.T
        assert sort_of(ID) is Sort.U

    @given(monotypes())
    def test_monotypes_are_m(self, type_):
        assert is_fully_monomorphic(type_)

    @given(polytypes())
    def test_sort_of_is_minimal(self, type_):
        sort = sort_of(type_)
        assert respects(type_, sort)
        for smaller in Sort:
            if smaller < sort:
                assert not respects(type_, smaller)

    def test_is_rank1(self):
        assert is_rank1(ID)
        assert is_rank1(INT)
        assert not is_rank1(forall(["a"], fun(ID, A)))
        assert not is_rank1(list_of(ID))


class TestAlphaEquality:
    def test_binder_names_irrelevant(self):
        left = forall(["a"], fun(A, A))
        right = forall(["b"], fun(B, B))
        assert alpha_equal(left, right)

    def test_quantifier_order_matters(self):
        # Section 2.4: ∀a b. a → b → b is NOT equal to ∀b a. a → b → b.
        left = Forall(("a", "b"), fun(A, B, B))
        right = Forall(("b", "a"), fun(A, B, B))
        assert not alpha_equal(left, right)

    def test_free_variables_by_name(self):
        assert alpha_equal(fun(A, B), fun(A, B))
        assert not alpha_equal(fun(A, B), fun(B, A))

    def test_nested(self):
        left = list_of(forall(["a"], fun(A, A)))
        right = list_of(forall(["c"], fun(C, C)))
        assert alpha_equal(left, right)

    def test_free_vs_bound(self):
        assert not alpha_equal(forall(["a"], fun(A, B)), forall(["a"], fun(A, A)))

    @given(polytypes())
    def test_reflexive(self, type_):
        assert alpha_equal(type_, type_)

    @given(polytypes())
    def test_canonical_rename_preserves_alpha(self, type_):
        assert alpha_equal(type_, rename_canonical(type_))

    @given(polytypes(), polytypes())
    def test_symmetric(self, left, right):
        assert alpha_equal(left, right) == alpha_equal(right, left)


class TestMisc:
    def test_type_size(self):
        assert type_size(INT) == 1
        assert type_size(fun(A, B)) == 3
        assert type_size(ID) == 4

    def test_contains_uvar(self):
        alpha = UVar("x", Sort.M)
        assert contains_uvar(list_of(alpha), alpha)
        assert not contains_uvar(list_of(A), alpha)

    def test_render(self):
        assert str(fun(INT, BOOL)) == "Int -> Bool"
        assert str(ID) == "forall a. a -> a"
        assert str(list_of(ID)) == "[forall a. a -> a]"
        assert str(fun(fun(A, B), C)) == "(a -> b) -> c"
        assert str(tuple_of(INT, BOOL)) == "(Int, Bool)"
        assert str(TCon("ST", (A, B))) == "ST a b"

    def test_render_qualified(self):
        qualified = forall(["a"], fun(A, BOOL), [Pred("Eq", (A,))])
        assert str(qualified) == "forall a. Eq a => a -> Bool"
