"""Cross-validation of the solver against the declarative specification.

Every instantiation the solver performs on the Figure 2 corpus (and a set
of extra programs) must be derivable in the declarative ``⩽`` judgement
of Figure 4, with the solver's recorded type arguments as the InstPoly
witnesses — including the sort discipline of the guardedness
classification.
"""

import pytest

from repro.core import Inferencer
from repro.core.classify import Bit
from repro.core.declarative import check_instantiation, verify_inference
from repro.core.sorts import Sort
from repro.core.types import INT, TVar, forall, fun, list_of
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import FIGURE2, figure2_env

ENV = figure2_env()
A = TVar("a")
ID = forall(["a"], fun(A, A))


class TestCheckInstantiation:
    def test_mono(self):
        assert check_instantiation(INT, Sort.M, (), (), INT, []) is None

    def test_mono_mismatch(self):
        reason = check_instantiation(INT, Sort.M, (), (), list_of(INT), [])
        assert reason and "InstMono" in reason

    def test_arrow(self):
        sigma = fun(INT, INT)
        assert (
            check_instantiation(sigma, Sort.M, (Bit.GEN,), (INT,), INT, [])
            is None
        )

    def test_arrow_wrong_argument(self):
        sigma = fun(INT, INT)
        reason = check_instantiation(
            sigma, Sort.M, (Bit.GEN,), (list_of(INT),), INT, []
        )
        assert reason and "InstArrow" in reason

    def test_poly_with_respecting_witness(self):
        head_type = forall(["p"], fun(list_of(TVar("p")), TVar("p")))
        # head instantiated at ∀a.a→a: p is guarded, so u is allowed.
        assert (
            check_instantiation(
                head_type,
                Sort.M,
                (Bit.GEN,),
                (list_of(ID),),
                ID,
                [[ID]],
            )
            is None
        )

    def test_poly_remainder_reinstantiates(self):
        # head ids used at Bool: the ∀ remainder instantiates again
        # (InstPoly applies to nested quantifiers too).
        head_type = forall(["p"], fun(list_of(TVar("p")), TVar("p")))
        assert (
            check_instantiation(
                head_type,
                Sort.M,
                (Bit.GEN, Bit.GEN),
                (list_of(ID), INT),
                INT,
                [[ID], [INT]],
            )
            is None
        )

    def test_poly_with_violating_witness(self):
        # single's p is naked in the argument: a ∀-headed witness is not
        # derivable (this is what makes single id : ∀a.[a→a]).
        single_type = forall(["p"], fun(TVar("p"), list_of(TVar("p"))))
        reason = check_instantiation(
            single_type,
            Sort.M,
            (Bit.GEN,),
            (ID,),
            list_of(ID),
            [[ID]],
        )
        assert reason and "InstPoly" in reason

    def test_missing_witness(self):
        reason = check_instantiation(ID, Sort.M, (), (), INT, [])
        assert reason and "witness" in reason

    def test_nullary_must_be_monomorphic(self):
        # A lone variable's witnesses must be fully monomorphic.
        reason = check_instantiation(ID, Sort.M, (), (), fun(INT, INT), [[ID]])
        assert reason and "InstPoly" in reason
        assert (
            check_instantiation(ID, Sort.M, (), (), fun(INT, INT), [[INT]])
            is None
        )


@pytest.mark.parametrize(
    "example", [ex for ex in FIGURE2 if ex.expected["GI"]], ids=lambda e: e.key
)
def test_solver_choices_are_derivable(example):
    result = Inferencer(ENV).infer(example.term)
    report = verify_inference(result)
    assert report.checked > 0
    assert report.ok, [
        (str(f.constraint), f.reason) for f in report.failures
    ]


EXTRA = [
    "let xs = id : ids in head xs",
    "(single id :: [forall a. a -> a])",
    r"\(f :: forall a. a -> a) -> (f 1, f True)",
    "case ids of { Cons f fs -> f 1 ; Nil -> 0 }",
    "head ids True",
    "map head (single ids)",
]


@pytest.mark.parametrize("source", EXTRA, ids=lambda s: s[:30])
def test_extra_programs_derivable(source):
    result = Inferencer(ENV).infer(parse_term(source))
    report = verify_inference(result)
    assert report.ok, [(str(f.constraint), f.reason) for f in report.failures]
