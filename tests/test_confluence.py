"""Solver confluence (§4.3.2: "the guardedness restrictions are carefully
crafted to ensure that the solver is confluent").

The worklist order is an implementation artifact; permuting the generated
constraints must not change acceptance or the inferred principal type.
"""

import random

import pytest

from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.evidence import EvidenceStore
from repro.core.generate import Generator
from repro.core.names import NameSupply
from repro.core.solver import Solver
from repro.core.types import alpha_equal, rename_canonical
from repro.syntax import parse_term
from repro.evalsuite.figure2 import FIGURE2, figure2_env

ENV = figure2_env()


def infer_with_shuffled_constraints(source_term, seed: int):
    """Run generation once, shuffle the top-level conjunction, solve."""
    supply = NameSupply("u")
    evidence = EvidenceStore()
    generator = Generator(supply, evidence)
    result_type, constraints = generator.gen(ENV, source_term)
    shuffled = list(constraints)
    random.Random(seed).shuffle(shuffled)
    solver = Solver(supply, evidence)
    solver.solve(shuffled)
    return solver.unifier.zonk(result_type), solver


@pytest.mark.parametrize("example", FIGURE2, ids=lambda ex: ex.key)
def test_constraint_order_does_not_change_acceptance(example):
    outcomes = []
    for seed in (0, 1, 2):
        try:
            infer_with_shuffled_constraints(example.term, seed)
            outcomes.append(True)
        except GIError:
            outcomes.append(False)
    assert len(set(outcomes)) == 1, f"{example.key}: order-dependent {outcomes}"
    assert outcomes[0] == example.expected["GI"]


@pytest.mark.parametrize(
    "source",
    [
        "id poly (\\x -> x)",
        "map head (single ids)",
        "choose [] ids",
        "head ids True",
        "k (\\x -> h x) lst",
        "(single id :: [forall a. a -> a])",
    ],
    ids=lambda s: s[:30],
)
def test_shuffled_types_agree(source):
    term = parse_term(source)
    baseline = Inferencer(ENV).infer(term).type_
    from repro.core.names import letters
    from repro.core.types import TVar, forall, fuv, strip_forall, type_size

    for seed in range(5):
        zonked, solver = infer_with_shuffled_constraints(term, seed)
        # Generalise residual variables the way the Inferencer does, then
        # compare shapes with the baseline's principal type.
        names = letters()
        residual = sorted(fuv(zonked), key=lambda v: v.name)
        binder_names = []
        for variable in residual:
            name = next(names)
            binder_names.append(name)
            solver.unifier.subst[variable] = TVar(name)
        regeneralised = rename_canonical(
            forall(binder_names, solver.unifier.zonk(zonked))
        )
        assert type_size(strip_forall(regeneralised)[1]) == type_size(
            strip_forall(baseline)[1]
        ), f"seed {seed}: {regeneralised} vs {baseline}"
        assert alpha_equal(regeneralised, baseline) or type_size(
            regeneralised
        ) == type_size(baseline), f"seed {seed}: {regeneralised} vs {baseline}"
