"""Elaboration soundness (Theorems 4.2 and C.1, executable).

Every accepted Figure 2 example (plus extra programs with lets, cases and
annotations) elaborates to a System F term that the independent checker
accepts at an α-equivalent of the inferred type; erasing the elaborated
term gives back the original program's runtime behaviour; and embedding
the F term back into GI re-infers the same type.
"""

import pytest

from repro.core import Inferencer
from repro.core.types import alpha_equal, rename_canonical
from repro.interp import evaluate, prelude_env, to_python
from repro.syntax import parse_term
from repro.systemf import elaborate_result, embed, erase, typecheck
from repro.evalsuite.figure2 import FIGURE2, figure2_env

ENV = figure2_env()
ACCEPTED = [ex for ex in FIGURE2 if ex.expected["GI"]]

EXTRA_PROGRAMS = [
    "let n = inc 1 in plus n n",
    r"let f = (\x -> x :: forall a. a -> a) in (f 1, f True)",
    "case Just id of { Just f -> f 3 ; Nothing -> 0 }",
    "case [1, 2] of { Cons x xs -> x ; Nil -> 0 }",
    r"\(x :: forall a. a -> a) -> (x x :: forall a. a -> a)",
    "(single id :: [forall a. a -> a])",
    "map poly (single id :: [forall a. a -> a])",
    "length (id : ids)",
    "head ids True",
    "k (\\x -> h x) lst 1 True",
]


@pytest.mark.parametrize("example", ACCEPTED, ids=lambda ex: ex.key)
def test_figure2_elaborates_and_checks(example):
    result = Inferencer(ENV).infer(example.term)
    fterm = elaborate_result(result)
    ftype = typecheck(fterm, ENV)
    assert alpha_equal(rename_canonical(ftype), result.type_), (
        f"{example.key}: elaborated type {rename_canonical(ftype)} "
        f"!= inferred {result.type_}"
    )


@pytest.mark.parametrize("source", EXTRA_PROGRAMS, ids=lambda s: s[:40])
def test_extra_programs_elaborate_and_check(source):
    term = parse_term(source)
    result = Inferencer(ENV).infer(term)
    fterm = elaborate_result(result)
    ftype = typecheck(fterm, ENV)
    assert alpha_equal(rename_canonical(ftype), result.type_)


@pytest.mark.parametrize("example", ACCEPTED, ids=lambda ex: ex.key)
def test_roundtrip_through_system_f(example):
    """GI → F → GI preserves the type (Theorem C.1, both directions)."""
    result = Inferencer(ENV).infer(example.term)
    fterm = elaborate_result(result)
    gi_term, ftype = embed(fterm, ENV)
    reinferred = Inferencer(ENV).infer(gi_term).type_
    assert alpha_equal(reinferred, rename_canonical(ftype)), (
        f"{example.key}: embedded term has {reinferred}, F term has "
        f"{rename_canonical(ftype)}"
    )


RUNNABLE = [
    ("runST argST", 42),
    ("app runST argST", 42),
    ("revapp argST runST", 42),
    ("length ids", 2),
    ("head ids True", True),
    ("id poly (\\x -> x)", (1, True)),
    ("poly id", (1, True)),
    ("single inc ++ single id", None),  # list of functions; just run
    ("let n = inc 1 in plus n n", 4),
    ("case Just 5 of { Just x -> inc x ; Nothing -> 0 }", 6),
]


@pytest.mark.parametrize("source, expected", RUNNABLE, ids=lambda x: str(x)[:40])
def test_elaboration_preserves_behaviour(source, expected):
    """Erasing the elaborated F term gives the same value as the source."""
    term = parse_term(source)
    result = Inferencer(ENV).infer(term)
    fterm = elaborate_result(result)
    env = prelude_env()
    original = evaluate(term, env)
    erased = evaluate(erase(fterm), env)
    if expected is not None:
        assert original == expected
    if callable(original):
        assert callable(erased)
    elif isinstance(original, type(erased)) and not callable(original):
        try:
            assert to_python(original) == to_python(erased)
        except Exception:
            assert original == erased
