"""Tests for the System F target language: checker, erasure, printer."""

import pytest

from repro.core.env import DataCon, Environment
from repro.core.errors import SystemFTypeError
from repro.core.types import (
    BOOL,
    INT,
    TVar,
    alpha_equal,
    forall,
    fun,
    list_of,
)
from repro.systemf import (
    FAlt,
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTyApp,
    FTyLam,
    FVar,
    erase,
    fapp,
    ftyapp,
    ftylam,
    pretty_fterm,
    typecheck,
)
from repro.core.terms import App, Lam, Let, Lit, Var
from repro.evalsuite.figure2 import figure2_env

A = TVar("a")
ID_TYPE = forall(["a"], fun(A, A))
ENV = figure2_env()


def check(term):
    return typecheck(term, ENV)


class TestChecker:
    def test_var(self):
        assert check(FVar("inc")) == fun(INT, INT)

    def test_unbound(self):
        with pytest.raises(SystemFTypeError):
            check(FVar("nope"))

    def test_literal(self):
        assert check(FLit(1)) == INT
        assert check(FLit(True)) == BOOL

    def test_lambda(self):
        term = FLam("x", INT, FVar("x"))
        assert check(term) == fun(INT, INT)

    def test_application(self):
        assert check(FApp(FVar("inc"), FLit(1))) == INT

    def test_application_type_mismatch(self):
        with pytest.raises(SystemFTypeError):
            check(FApp(FVar("inc"), FLit(True)))

    def test_application_non_function(self):
        with pytest.raises(SystemFTypeError):
            check(FApp(FLit(1), FLit(2)))

    def test_type_abstraction_and_application(self):
        poly_id = FTyLam(("a",), FLam("x", A, FVar("x")))
        assert alpha_equal(check(poly_id), ID_TYPE)
        assert check(FTyApp(poly_id, (INT,))) == fun(INT, INT)

    def test_impredicative_type_application(self):
        # head @(∀a.a→a) ids — the motivating elaboration of §4.1.
        term = FApp(FTyApp(FVar("head"), (ID_TYPE,)), FVar("ids"))
        assert alpha_equal(check(term), ID_TYPE)

    def test_partial_type_application(self):
        # map @(∀a.a→a) leaves q quantified.
        term = FTyApp(FVar("map"), (ID_TYPE,))
        result = check(term)
        assert alpha_equal(
            result,
            forall(
                ["q"],
                fun(fun(ID_TYPE, TVar("q")), list_of(ID_TYPE), list_of(TVar("q"))),
            ),
        )

    def test_too_many_type_arguments(self):
        with pytest.raises(SystemFTypeError):
            check(FTyApp(FVar("id"), (INT, BOOL)))

    def test_exact_argument_matching_is_alpha(self):
        # poly expects exactly ∀a.a→a; a differently-named binder is fine,
        # a monomorphic instance is not.
        good = FApp(FVar("poly"), FTyLam(("b",), FLam("x", TVar("b"), FVar("x"))))
        check(good)
        bad = FApp(FVar("poly"), FLam("x", INT, FVar("x")))
        with pytest.raises(SystemFTypeError):
            check(bad)

    def test_let(self):
        term = FLet("n", INT, FLit(1), FApp(FVar("inc"), FVar("n")))
        assert check(term) == INT

    def test_let_annotation_mismatch(self):
        with pytest.raises(SystemFTypeError):
            check(FLet("n", BOOL, FLit(1), FVar("n")))

    def test_case(self):
        term = FCase(
            FApp(FTyApp(FVar("Just"), (INT,)), FLit(1)),
            (
                FAlt("Just", (), ("x",), FVar("x")),
                FAlt("Nothing", (), (), FLit(0)),
            ),
        )
        assert check(term) == INT

    def test_case_branch_mismatch(self):
        term = FCase(
            FApp(FTyApp(FVar("Just"), (INT,)), FLit(1)),
            (
                FAlt("Just", (), ("x",), FVar("x")),
                FAlt("Nothing", (), (), FLit(True)),
            ),
        )
        with pytest.raises(SystemFTypeError):
            check(term)

    def test_shadowing_type_binder_rejected(self):
        term = FTyLam(("a",), FTyLam(("a",), FLam("x", A, FVar("x"))))
        with pytest.raises(SystemFTypeError):
            check(term)


class TestSmartConstructors:
    def test_fapp(self):
        term = fapp(FVar("f"), FLit(1), FLit(2))
        assert term == FApp(FApp(FVar("f"), FLit(1)), FLit(2))

    def test_ftyapp_collapses(self):
        assert ftyapp(FVar("f"), ()) == FVar("f")
        nested = ftyapp(ftyapp(FVar("f"), (INT,)), (BOOL,))
        assert nested == FTyApp(FVar("f"), (INT, BOOL))

    def test_ftylam_collapses(self):
        assert ftylam((), FVar("x")) == FVar("x")
        nested = ftylam(("a",), ftylam(("b",), FVar("x")))
        assert nested == FTyLam(("a", "b"), FVar("x"))


class TestErasure:
    def test_erase_drops_types(self):
        term = FTyLam(("a",), FLam("x", A, FTyApp(FVar("x"), (INT,))))
        assert erase(term) == Lam("x", Var("x"))

    def test_erase_let(self):
        term = FLet("n", INT, FLit(1), FVar("n"))
        assert erase(term) == Let("n", Lit(1), Var("n"))

    def test_erase_app(self):
        term = fapp(FVar("f"), FLit(1))
        assert erase(term) == App(Var("f"), (Lit(1),))


class TestPrinter:
    def test_renders(self):
        term = FTyLam(("a",), FLam("x", A, FVar("x")))
        rendered = pretty_fterm(term)
        assert "/\\a" in rendered and "x :: a" in rendered

    def test_type_application_render(self):
        rendered = pretty_fterm(FTyApp(FVar("head"), (ID_TYPE,)))
        assert "@(forall a. a -> a)" in rendered
