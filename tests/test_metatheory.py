"""Executable metatheory: the theorems of Sections 3.6 and 4.4.

* Theorem 3.1 — compatibility with rank-1 polymorphism: every term the HM
  baseline accepts, GI accepts with an α-equivalent type.
* Theorem 3.2 / 4.3 — principality: inference is deterministic, and
  checking the term against any fully monomorphic instance of the
  principal type succeeds.
* Theorem 3.4 — substitution: inlining a definition preserves typing.
* Theorem 3.5 — ``f e`` ⇔ ``app f e`` ⇔ ``revapp e f`` for predicative
  heads.
* Mild subject reduction — β-reducing a typeable term either preserves
  the type or makes the term untypeable, never changes the type.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.hm import HMInferencer
from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.terms import (
    Ann,
    App,
    Lam,
    Let,
    Lit,
    Var,
    app,
    free_vars,
    subst_term,
)
from repro.core.types import (
    INT,
    TVar,
    alpha_equal,
    forall,
    fun,
    is_fully_monomorphic,
    rename_canonical,
    strip_forall,
    subst_tvars,
)
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import FIGURE2, figure2_env

from tests.strategies import hm_terms

ENV = figure2_env()
RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.filter_too_much], deadline=None
)


class TestTheorem31Rank1Compatibility:
    """HM ⊆ GI, with the same principal types."""

    @RELAXED
    @given(hm_terms())
    def test_hm_typeable_implies_gi_typeable(self, term):
        if free_vars(term) - {"inc", "plus", "choose", "single", "length"}:
            # Close over locally-free variables with lambdas.
            for name in sorted(free_vars(term) - {"inc", "plus", "choose", "single", "length"}):
                term = Lam(name, term)
        hm = HMInferencer(ENV)
        try:
            hm_type = hm.infer(term)
        except GIError:
            return  # not HM-typeable; nothing to check
        gi_type = Inferencer(ENV).infer(term).type_
        assert alpha_equal(rename_canonical(hm_type), gi_type), (
            f"{term}: HM gives {hm_type}, GI gives {gi_type}"
        )

    def test_hm_corpus(self):
        sources = [
            r"\x -> x",
            r"\f g x -> f (g x)",
            r"\x y -> pair (inc x) y",
            "single (single 1)",
            "length (single inc)",
            r"let go = \xs -> length xs in go (single 1)",
            r"\f -> single (f 1)",
        ]
        for source in sources:
            term = parse_term(source)
            hm_type = HMInferencer(ENV).infer(term)
            gi_type = Inferencer(ENV).infer(term).type_
            assert alpha_equal(rename_canonical(hm_type), gi_type), source


class TestTheorem32Principality:
    """Impredicativity is never guessed; checking against monomorphic
    instances of the principal type succeeds."""

    @pytest.mark.parametrize(
        "example",
        [ex for ex in FIGURE2 if ex.expected["GI"]],
        ids=lambda ex: ex.key,
    )
    def test_inference_is_deterministic(self, example):
        first = Inferencer(ENV).infer(example.term).type_
        second = Inferencer(ENV).infer(example.term).type_
        assert alpha_equal(first, second)

    @pytest.mark.parametrize(
        "example",
        [ex for ex in FIGURE2 if ex.expected["GI"]],
        ids=lambda ex: ex.key,
    )
    def test_mono_instances_check(self, example):
        gi = Inferencer(ENV)
        principal = gi.infer(example.term).type_
        binders, body = strip_forall(principal)
        if not binders:
            return
        instance = subst_tvars({binders[0]: INT}, forall(binders[1:], body))
        # Any fully monomorphic substitution instance must be acceptable
        # as a checked signature (Theorem 4.3).
        gi.infer(Ann(example.term, instance))

    def test_instance_of_single_id(self):
        gi = Inferencer(ENV)
        gi.infer(Ann(parse_term("single id"), parse_type("[Int -> Int]")))
        gi.infer(Ann(parse_term("single id"), parse_type("[Bool -> Bool]")))
        with pytest.raises(GIError):
            # Not an instance of ∀a.[a → a] by a *monomorphic* substitution
            # — requires the impredicative reading, which needs the
            # annotation to be exactly the impredicative type (C9 note).
            gi.infer(Ann(parse_term("single id"), parse_type("[Int -> Bool]")))


class TestTheorem34Substitution:
    """If Γ ⊢ u : σ and Γ, x:σ ⊢ e[x] : ϕ then Γ ⊢ e[u] : ϕ."""

    @pytest.mark.parametrize(
        "binding, body",
        [
            ("inc", "plus (x 1) 2"),
            ("single id", "length x"),
            ("head ids", "x True"),
            (r"\y -> y", "pair (x 1) (x 2)"),
        ],
    )
    def test_inlining_preserves_typing(self, binding, body):
        bound = parse_term(binding)
        gi_outer = Inferencer(ENV)
        bound_type = gi_outer.infer(bound).raw_type
        # Type the body with x : raw type of the binding...
        env_with_x = ENV.extended("x", Inferencer(ENV).infer(bound).raw_type)
        body_term = parse_term(body)
        with_x = Inferencer(env_with_x).infer(body_term).type_
        # ...then inline and retype.
        inlined = subst_term(body_term, "x", bound)
        direct = Inferencer(ENV).infer(inlined).type_
        assert alpha_equal(with_x, direct), (
            f"let-bound: {with_x}, inlined: {direct}"
        )


class TestTheorem35AppRevapp:
    """``f e`` ⇔ ``app f e`` ⇔ ``revapp e f`` for predicative heads."""

    PREDICATIVE = [
        ("inc", "1"),
        ("length", "ids"),
        ("single", "inc"),
        ("head", "single 1"),
        ("poly", "id"),
        ("not", "True"),
    ]

    @pytest.mark.parametrize("fn, arg", PREDICATIVE)
    def test_three_forms_agree(self, fn, arg):
        gi = Inferencer(ENV)
        direct = gi.infer(parse_term(f"{fn} ({arg})")).type_
        via_app = gi.infer(parse_term(f"app {fn} ({arg})")).type_
        via_revapp = gi.infer(parse_term(f"revapp ({arg}) {fn}")).type_
        assert alpha_equal(direct, via_app)
        assert alpha_equal(direct, via_revapp)

    def test_vargen_extends_the_theorem_to_rank1_vars(self):
        # The paper's §3.6 discussion notes that `f ids` (f : ∀a.[a]→[a])
        # cannot be rewritten to `app f ids` — in the *core* system.  With
        # the single-variable rule VarGen (Figure 5), a closed rank-1
        # variable like tail may be pre-instantiated impredicatively in
        # argument position, so the rewrite is recovered:
        gi = Inferencer(ENV)
        assert str(gi.infer(parse_term("tail ids")).type_) == "[forall a. a -> a]"
        assert str(gi.infer(parse_term("app tail ids")).type_) == "[forall a. a -> a]"

    def test_restriction_for_non_variable_heads(self):
        # ...but a syntactically larger argument gets no such help: the
        # η-wrapped head is typed through a monomorphic lambda binder and
        # the impredicative instantiation is lost.
        gi = Inferencer(ENV)
        assert gi.accepts(parse_term("tail ids"))
        assert not gi.accepts(parse_term(r"app (\xs -> tail xs) ids"))


class TestSubjectReduction:
    """Milder subject reduction: if e : σ, e →β e', and e' : ϕ, then σ = ϕ."""

    CASES = [
        (r"(\x -> inc x) 1", "inc 1"),
        (r"(\x -> x) inc", "inc"),
        (r"let y = inc 1 in plus y y", "plus (inc 1) (inc 1)"),
        (r"(\x y -> y) 1 True", "True"),
    ]

    @pytest.mark.parametrize("before, after", CASES)
    def test_reduction_preserves_type_when_typeable(self, before, after):
        gi = Inferencer(ENV)
        type_before = gi.infer(parse_term(before)).type_
        type_after = gi.infer(parse_term(after)).type_
        assert alpha_equal(type_before, type_after)

    def test_full_subject_reduction_fails(self):
        # app auto is typeable, its β-reduct λx. auto x is not (§3.6).
        gi = Inferencer(ENV)
        assert gi.accepts(parse_term("app auto"))
        assert not gi.accepts(parse_term(r"\x -> auto x"))
