"""Properties of the greedy counterexample shrinker: soundness (the
result still fails), termination, determinism, closedness."""

from __future__ import annotations

import pytest

from repro.conformance.oracles import OracleContext, oracle_crash
from repro.conformance.shrink import candidates, shrink
from repro.core.terms import (
    Ann,
    Lam,
    Let,
    Lit,
    Var,
    app,
    free_vars,
    term_size,
)
from repro.core.types import INT, forall, fun, TVar
from repro.evalsuite.figure2 import figure2_env
from repro.robustness.faultinject import FaultPlan


@pytest.fixture(scope="module")
def env():
    return figure2_env()


def _big_term():
    return Let(
        "x",
        app(Var("plus"), Lit(1), Lit(2)),
        app(Var("choose"), Var("x"), app(Var("plus"), Lit(3), app(Var("inc"), Lit(4)))),
    )


def test_shrunk_term_still_fails_its_predicate():
    target = Var("inc")

    def contains_inc(term):
        return target in list(_walk(term))

    result = shrink(_big_term(), contains_inc)
    assert contains_inc(result.term)
    assert result.final_size < term_size(_big_term())
    # greedy minimum for this predicate: the bare occurrence itself
    assert result.term == target


def test_shrunk_term_still_fails_real_oracle(env):
    """With an armed fault plan, the crash oracle fails on (almost) any
    term; the shrunk minimum must still fail it."""

    def still_crashes(term):
        ctx = OracleContext(env, faults=FaultPlan(fail_at_solver_step=1))
        return oracle_crash(ctx, term) is not None

    original = _big_term()
    assert still_crashes(original)
    result = shrink(original, still_crashes)
    assert still_crashes(result.term)
    assert result.final_size <= 2  # a leaf still reaches solver step 1


def test_shrinking_terminates_and_sizes_strictly_decrease():
    sizes = []
    result = shrink(
        _big_term(),
        lambda term: True,  # everything "fails": worst case for termination
        on_step=lambda term: sizes.append(term_size(term)),
    )
    assert result.final_size == 1
    assert sizes == sorted(sizes, reverse=True)
    assert len(sizes) == len(set(sizes))  # strict decrease, no cycling
    assert result.checks <= 2000


def test_shrinking_respects_check_budget():
    checks = {"n": 0}

    def predicate(term):
        checks["n"] += 1
        return True

    shrink(_big_term(), predicate, max_checks=5)
    assert checks["n"] <= 5


def test_shrinking_is_deterministic():
    def predicate(term):
        return term_size(term) >= 3

    first = shrink(_big_term(), predicate)
    second = shrink(_big_term(), predicate)
    assert first.term == second.term
    assert first.steps == second.steps
    assert first.checks == second.checks


def test_crashing_predicate_is_treated_as_not_failing():
    def explodes(term):
        raise RuntimeError("oracle crashed")

    result = shrink(_big_term(), explodes)
    assert result.term == _big_term()  # no candidate accepted
    assert result.steps == 0


def test_candidates_never_leak_bound_variables():
    term = Lam("x", app(Var("plus"), Var("x"), Lit(1)))
    closed_free = free_vars(term)
    for candidate in candidates(term):
        assert free_vars(candidate) <= closed_free, candidate


def test_candidates_are_strictly_smaller():
    term = _big_term()
    size = term_size(term)
    seen = list(candidates(term))
    assert seen  # a compound term must offer shrinks
    assert all(term_size(candidate) < size for candidate in seen)


def test_candidates_drop_annotations():
    poly = forall(["a"], fun(TVar("a"), TVar("a")))
    term = Ann(Var("id"), poly)
    assert Var("id") in list(candidates(term))


def test_leaves_offer_no_candidates():
    assert list(candidates(Lit(True))) == []
    assert list(candidates(Var("inc"))) == []


def _walk(term):
    from repro.core.terms import walk_terms

    return walk_terms(term)
