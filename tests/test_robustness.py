"""Robustness fuzzing: inference never crashes with a non-GI error.

Whatever term we throw at the pipeline, it must either produce a type or
raise a :class:`GIError` subclass — never an internal Python exception.
The same holds for the baselines, the parser on arbitrary printable
input, and the full elaboration pipeline on accepted terms.
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import SYSTEMS
from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.terms import (
    Ann,
    App,
    Case,
    CaseAlt,
    Lam,
    Let,
    Lit,
    Term,
    Var,
    app,
)
from repro.syntax import parse_term, parse_type, pretty_term
from repro.systemf import elaborate_result, typecheck
from repro.evalsuite.figure2 import figure2_env

from tests.strategies import polytypes

ENV = figure2_env()
RELAXED = settings(
    max_examples=80,
    suppress_health_check=[HealthCheck.filter_too_much],
    deadline=None,
)

NAMES = st.sampled_from(
    ["id", "inc", "choose", "single", "head", "ids", "poly", "auto",
     "map", "app", "runST", "argST", "x", "y", "zz"]
)


def wild_terms(depth: int = 3) -> st.SearchStrategy[Term]:
    base = st.one_of(
        NAMES.map(Var),
        st.integers(min_value=0, max_value=5).map(Lit),
        st.booleans().map(Lit),
    )

    def extend(inner):
        return st.one_of(
            st.tuples(st.sampled_from(["x", "y", "f"]), inner).map(
                lambda p: Lam(p[0], p[1])
            ),
            st.tuples(inner, st.lists(inner, min_size=1, max_size=3)).map(
                lambda p: app(p[0], *p[1])
            ),
            st.tuples(inner, polytypes(2)).map(lambda p: Ann(p[0], p[1])),
            st.tuples(st.sampled_from(["v", "w"]), inner, inner).map(
                lambda p: Let(p[0], p[1], p[2])
            ),
            st.tuples(inner, inner, inner).map(
                lambda p: Case(
                    p[0],
                    (
                        CaseAlt("Just", ("j",), p[1]),
                        CaseAlt("Nothing", (), p[2]),
                    ),
                )
            ),
        )

    return st.recursive(base, extend, max_leaves=2 ** depth)


class TestInferenceNeverCrashes:
    @RELAXED
    @given(wild_terms())
    def test_gi(self, term):
        try:
            Inferencer(ENV).infer(term)
        except GIError:
            pass

    @RELAXED
    @given(wild_terms())
    def test_baselines(self, term):
        for system in SYSTEMS.values():
            try:
                system.infer(term, ENV)
            except GIError:
                pass

    @RELAXED
    @given(wild_terms())
    def test_accepted_terms_elaborate(self, term):
        try:
            result = Inferencer(ENV).infer(term)
        except GIError:
            return
        fterm = elaborate_result(result)
        typecheck(fterm, ENV)

    @RELAXED
    @given(wild_terms())
    def test_pretty_reparses(self, term):
        rendered = pretty_term(term)
        reparsed = parse_term(rendered)
        assert pretty_term(reparsed) == rendered


class TestParserNeverCrashes:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=60))
    def test_parse_term_total(self, source):
        try:
            parse_term(source)
        except GIError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet=string.ascii_letters + "[]()->. ", max_size=60))
    def test_parse_type_total(self, source):
        try:
            parse_type(source)
        except GIError:
            pass
