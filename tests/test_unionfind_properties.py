"""Property tests for the union-find substitution core and the wake-up
scheduler, over the conformance fuzzer's strategies.

Three invariants of the rework:

* ``zonk`` is idempotent after any sequence of binds — a zonked type is
  a fixpoint (no half-resolved chains can leak out);
* path compression is an *implementation* detail: forcing extra ``find``
  traffic between queries never changes any observable zonk result;
* scheduling is an implementation detail too: the wake-up queue, the
  legacy re-scan mode, and any ``--jobs`` setting of the batch driver
  all produce the same types and the same per-item solver-step counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.strategies import hm_terms, monotypes
from repro.core.errors import GIError, UnificationError
from repro.core.evidence import EvidenceStore
from repro.core.generate import GenOptions, Generator
from repro.core.names import NameSupply
from repro.core.solver import InstanceEnv, Solver
from repro.core.sorts import Sort
from repro.core.types import Forall, TCon, TVar, UVar, fuv
from repro.core.unify import Unifier
from repro.evalsuite.figure2 import figure2_env
from repro.robustness.batch import check_batch

ENV = figure2_env()


@st.composite
def unification_problems(draw):
    """A list of (variable, monotype) bind attempts over a shared pool."""
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(("u1", "u2", "u3")), monotypes()),
            min_size=1,
            max_size=6,
        )
    )
    return [(UVar(name, Sort.M), type_) for name, type_ in pairs]


def _apply(unifier, problem):
    for variable, type_ in problem:
        try:
            unifier.unify(variable, type_)
        except GIError:
            pass  # occurs/clash failures are fine — state stays usable


class TestZonkIdempotence:
    @given(unification_problems(), monotypes())
    def test_zonk_after_bind_is_idempotent(self, problem, probe):
        unifier = Unifier()
        _apply(unifier, problem)
        once = unifier.zonk(probe)
        assert unifier.zonk(once) == once

    @given(unification_problems())
    def test_zonked_variables_are_fixpoints(self, problem):
        unifier = Unifier()
        _apply(unifier, problem)
        for variable, _ in problem:
            image = unifier.zonk(variable)
            assert unifier.zonk(image) == image


class TestCompressionInvariance:
    @given(unification_problems(), st.integers(min_value=0, max_value=3))
    def test_extra_find_traffic_changes_nothing(self, problem, rounds):
        reference = Unifier()
        compressed = Unifier()
        _apply(reference, problem)
        _apply(compressed, problem)
        variables = [variable for variable, _ in problem]
        # Hammer the compressed store with redundant queries (each one
        # may shorten parent chains) before comparing observables.
        for _ in range(rounds):
            for variable in variables:
                compressed.zonk(variable)
                compressed.zonk_head(variable)
        for variable in variables:
            assert compressed.zonk(variable) == reference.zonk(variable)

    @given(unification_problems())
    def test_chain_order_does_not_change_results(self, problem):
        # Zonking in reverse order exercises different compression paths.
        forward = Unifier()
        backward = Unifier()
        _apply(forward, problem)
        _apply(backward, problem)
        variables = [variable for variable, _ in problem]
        forward_images = [forward.zonk(v) for v in variables]
        backward_images = [backward.zonk(v) for v in reversed(variables)]
        assert forward_images == list(reversed(backward_images))


def _canon_uvars(type_):
    """Replace unification variables by position-canonical rigid names
    (first occurrence order), keeping each variable's sort visible."""
    mapping = {}

    def go(node):
        if isinstance(node, UVar):
            if node not in mapping:
                mapping[node] = TVar(f"?{len(mapping)}{node.sort.symbol}")
            return mapping[node]
        if isinstance(node, TCon):
            return TCon(node.name, tuple(go(argument) for argument in node.args))
        if isinstance(node, Forall):
            return Forall(node.binders, go(node.body), node.context)
        return node

    return go(type_)


class TestSchedulingEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(hm_terms())
    def test_wake_queue_matches_legacy_rescan(self, term):
        outcomes = []
        for wake in (True, False):
            supply = NameSupply("u")
            evidence = EvidenceStore()
            generator = Generator(supply, evidence, GenOptions())
            try:
                result_type, constraints = generator.gen(ENV, term)
            except GIError as error:
                outcomes.append(("gen-error", type(error).__name__))
                continue
            solver = Solver(
                supply, evidence, InstanceEnv(), wake_queue=wake
            )
            try:
                solver.solve(list(constraints))
            except GIError as error:
                outcomes.append(("solve-error", type(error).__name__))
                continue
            zonked = solver.unifier.zonk(result_type)
            # The two schedulers may default/freshen variables in a
            # different order, so residual variables can carry different
            # *names*; compare up to a canonical renaming of them.
            outcomes.append(("ok", str(_canon_uvars(zonked)), len(fuv(zonked))))
        assert outcomes[0] == outcomes[1], outcomes


def test_batch_jobs_do_not_change_types_or_steps():
    sources = [
        "inc 0",
        "single id",
        "head ids",
        "poly (\\x -> x)",
        "\\f -> f 1 1 1 1 1 1",
        "length (tail ids)",
        "runST argST",
        "pair (inc 0) (single id)",
        "not-a-name",
        "(single id :: [forall a. a -> a])",
    ]
    serial = check_batch(sources, ENV, jobs=1)
    threaded = check_batch(sources, ENV, jobs=2)
    assert [item.type_ for item in serial.items] == [
        item.type_ for item in threaded.items
    ]
    assert [item.solver_steps for item in serial.items] == [
        item.solver_steps for item in threaded.items
    ]
    # The suite exercises both outcomes, and successful items carry the
    # step counter the benchmarks compare.
    assert any(item.ok and item.solver_steps for item in serial.items)
    assert any(not item.ok for item in serial.items)
