"""The backend matrix plumbing: three-valued ``SystemOutcome``, the
``repro systems`` CLI, the fuzzer's ``--systems`` selector, and the
differential oracle's crash/implication machinery (exercised against
deliberately broken fake backends)."""

import json

import pytest

from repro.baselines import SYSTEMS, Outcome, System, SystemOutcome
from repro.baselines.registry import get_system
from repro.conformance import FuzzConfig, OracleContext, run_fuzz
from repro.conformance.oracles import (
    PAIRWISE_IMPLICATIONS,
    oracle_differential,
)
from repro.core.errors import BudgetExceededError, GIError, InternalError
from repro.evalsuite.figure2 import figure2_env
from repro.robustness import Budget
from repro.syntax import parse_term
from repro.__main__ import main

ENV = figure2_env()


class TestSystemOutcome:
    def test_accept_carries_type(self):
        outcome = SYSTEMS["GI"].run(parse_term("inc 1"), ENV)
        assert outcome.status is Outcome.ACCEPT
        assert outcome.accepted and outcome.available
        assert str(outcome.type_) == "Int"

    def test_reject_carries_detail(self):
        outcome = SYSTEMS["GI"].run(parse_term("inc True"), ENV)
        assert outcome.status is Outcome.REJECT
        assert outcome.rejected and outcome.available and not outcome.crashed
        assert outcome.detail

    def test_budget_exhaustion_is_unavailable_not_rejection(self):
        budget = Budget(max_solver_steps=1)
        deep = parse_term("single (single (single (single id)))")
        outcome = SYSTEMS["GI"].run(deep, ENV, budget=budget)
        assert outcome.status is Outcome.UNAVAILABLE
        assert not outcome.available and not outcome.crashed
        assert outcome.error == "BudgetExceededError"

    def test_internal_error_is_unavailable_and_crashed(self):
        def broken(env, budget=None):
            def infer(term):
                raise InternalError(ValueError("boom"), phase="test")

            return infer

        system = System("Broken", "always crashes", broken)
        outcome = system.run(parse_term("inc 1"), ENV)
        assert outcome.status is Outcome.UNAVAILABLE
        assert outcome.crashed
        assert outcome.error == "InternalError"

    def test_raw_exception_is_contained_and_crashed(self):
        def broken(env, budget=None):
            def infer(term):
                raise KeyError("no such thing")

            return infer

        outcome = System("Broken", "raw crash", broken).run(parse_term("inc 1"), ENV)
        assert outcome.crashed and not outcome.available

    def test_backcompat_infer_and_accepts(self):
        term = parse_term("head ids")
        assert str(SYSTEMS["GI"].infer(term, ENV)) == "forall a. a -> a"
        assert SYSTEMS["QuickLook"].accepts(term, ENV)
        assert not SYSTEMS["HM"].accepts(term, ENV)
        with pytest.raises(GIError):
            SYSTEMS["HM"].infer(term, ENV)

    def test_get_system_unknown(self):
        with pytest.raises(KeyError):
            get_system("MLF")


def _fake(name, exception):
    def make(env, budget=None):
        def infer(term):
            raise exception

        return infer

    return System(name, f"fake {name}", make)


class TestDifferentialOracle:
    def test_clean_on_figure2_sample(self):
        ctx = OracleContext(ENV)
        for source in ("head ids", "single id", "choose id auto", "poly id"):
            assert oracle_differential(ctx, parse_term(source)) is None, source

    def test_reports_backend_crash(self, monkeypatch):
        monkeypatch.setitem(
            SYSTEMS, "QuickLook", _fake("QuickLook", InternalError(ValueError("x"), phase="t"))
        )
        ctx = OracleContext(ENV)
        violation = oracle_differential(ctx, parse_term("inc 1"))
        assert violation is not None
        assert violation.oracle == "differential:QuickLook"

    def test_reports_implication_violation(self, monkeypatch):
        from repro.baselines.quicklook import QuickLookError

        monkeypatch.setitem(
            SYSTEMS, "QuickLook", _fake("QuickLook", QuickLookError("nope"))
        )
        ctx = OracleContext(ENV)
        violation = oracle_differential(ctx, parse_term("head ids"))
        assert violation is not None
        assert violation.oracle == "differential:GI=>QuickLook"

    def test_unavailable_conclusion_is_vacuous(self, monkeypatch):
        exhausted = BudgetExceededError("unify", "max_unify_depth", 1)
        monkeypatch.setitem(SYSTEMS, "QuickLook", _fake("QuickLook", exhausted))
        ctx = OracleContext(ENV)
        assert oracle_differential(ctx, parse_term("head ids")) is None

    def test_restricting_systems_skips_absent_pairs(self, monkeypatch):
        from repro.baselines.quicklook import QuickLookError

        monkeypatch.setitem(
            SYSTEMS, "QuickLook", _fake("QuickLook", QuickLookError("nope"))
        )
        ctx = OracleContext(ENV, systems=("GI", "HM", "RankN"))
        assert oracle_differential(ctx, parse_term("head ids")) is None

    def test_implication_table_names_registered_systems(self):
        for premise, conclusion, level in PAIRWISE_IMPLICATIONS:
            assert premise in SYSTEMS and conclusion in SYSTEMS
            assert level in ("type", "accepts")

    def test_fuzz_with_system_subset(self):
        report = run_fuzz(
            FuzzConfig(seed=5, count=25, systems=("GI", "HM", "QuickLook")), ENV
        )
        assert report.ok


class TestSystemsCLI:
    def test_systems_lists_all_backends(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in SYSTEMS:
            assert name in out
        assert "GI ⇒ QuickLook" in out

    def test_systems_json(self, capsys):
        assert main(["systems", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload["systems"]} == set(SYSTEMS)
        assert {
            (imp["premise"], imp["conclusion"]) for imp in payload["implications"]
        } == {(p, c) for p, c, _ in PAIRWISE_IMPLICATIONS}

    def test_fuzz_systems_flag(self, capsys):
        assert main(
            ["fuzz", "--seed", "3", "--count", "10", "--systems", "GI", "--systems", "QuickLook"]
        ) == 0

    def test_fuzz_rejects_unknown_system(self, capsys):
        assert main(["fuzz", "--seed", "3", "--count", "5", "--systems", "MLF"]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err and "repro systems" in err
