"""Solver budgets and crash containment (the robustness tentpole).

Every way a run can exhaust its budget must surface as a structured
:class:`BudgetExceededError` carrying the phase and the run counters; and
every internal (non-GI) failure must be converted to
:class:`InternalError` at the ``Inferencer.infer`` boundary, never
escaping as a raw Python exception.
"""

import pytest

from repro.core import Inferencer, InferOptions
from repro.core.errors import (
    BudgetExceededError,
    GIError,
    InternalError,
    StuckConstraintError,
)
from repro.core.names import NameSupply
from repro.core.sorts import Sort
from repro.core.types import INT, list_of
from repro.core.unify import Unifier
from repro.robustness import Budget, FaultPlan, InjectedFaultError
from repro.syntax import parse_term
from repro.evalsuite.figure2 import figure2_env

ENV = figure2_env()


class TestSolverStepBudget:
    def test_exhaustion_is_structured(self):
        gi = Inferencer(ENV, budget=Budget(max_solver_steps=3))
        with pytest.raises(BudgetExceededError) as info:
            gi.infer(parse_term("app runST argST"))
        error = info.value
        assert error.phase == "solver"
        assert error.limit_name == "max_solver_steps"
        assert error.limit == 3
        assert error.counters["solver_steps"] == 4
        assert error.constraint is not None

    def test_budget_error_is_a_gi_error(self):
        gi = Inferencer(ENV, budget=Budget(max_solver_steps=1))
        with pytest.raises(GIError):
            gi.infer(parse_term("head ids"))
        assert not gi.accepts(parse_term("head ids"))

    def test_sufficient_budget_is_invisible(self):
        plain = Inferencer(ENV).infer(parse_term("head ids"))
        budgeted = Inferencer(ENV, budget=Budget(max_solver_steps=10_000)).infer(
            parse_term("head ids")
        )
        assert str(plain.type_) == str(budgeted.type_) == "forall a. a -> a"

    def test_budget_rearmed_between_runs(self):
        # The same Budget object serves many runs; each run starts from
        # zero fuel used (this is what isolates batch items).
        budget = Budget(max_solver_steps=50)
        gi = Inferencer(ENV, budget=budget)
        for _ in range(3):
            gi.infer(parse_term("head ids"))
        assert budget.solver_steps <= 50


class TestUnifyDepthBudget:
    def test_deep_unification_trips(self):
        budget = Budget(max_unify_depth=3).start()
        unifier = Unifier(NameSupply("u"), budget=budget)
        nested_left = INT
        nested_right = INT
        for _ in range(6):
            nested_left = list_of(nested_left)
            nested_right = list_of(nested_right)
        variable = unifier.fresh(Sort.M, 0)
        with pytest.raises(BudgetExceededError) as info:
            unifier.unify(nested_left, list_of(list_of(list_of(list_of(variable)))))
        assert info.value.phase == "unify"
        assert info.value.limit_name == "max_unify_depth"

    def test_depth_resets_after_failure(self):
        from repro.core.types import BOOL

        budget = Budget(max_unify_depth=3).start()
        unifier = Unifier(NameSupply("u"), budget=budget)
        deep_left = list_of(list_of(list_of(list_of(INT))))
        deep_right = list_of(list_of(list_of(list_of(BOOL))))
        with pytest.raises(BudgetExceededError):
            unifier.unify(deep_left, deep_right)
        assert unifier.depth == 0
        # Shallow work still fits in the same budget.
        unifier.unify(list_of(INT), list_of(INT))

    def test_end_to_end_depth_budget(self):
        gi = Inferencer(ENV, budget=Budget(max_unify_depth=1))
        with pytest.raises(BudgetExceededError) as info:
            gi.infer(parse_term("single id"))
        assert info.value.phase == "unify"

    def test_peak_depth_recorded(self):
        budget = Budget()
        Inferencer(ENV, budget=budget).infer(parse_term("app runST argST"))
        assert budget.peak_unify_depth >= 1
        assert budget.solver_steps >= 1


class TestDeadlineBudget:
    def test_expired_deadline(self):
        gi = Inferencer(ENV, budget=Budget(wall_clock=0.0))
        with pytest.raises(BudgetExceededError) as info:
            gi.infer(parse_term("head ids"))
        assert info.value.phase == "deadline"
        assert info.value.limit_name == "wall_clock"

    def test_generous_deadline_is_invisible(self):
        gi = Inferencer(ENV, budget=Budget(wall_clock=60.0))
        assert str(gi.infer(parse_term("head ids")).type_) == "forall a. a -> a"


class TestCrashContainment:
    def test_injected_fault_becomes_internal_error(self):
        gi = Inferencer(ENV, faults=FaultPlan(fail_at_solver_step=2))
        with pytest.raises(InternalError) as info:
            gi.infer(parse_term("app runST argST"))
        error = info.value
        assert isinstance(error, GIError)
        assert error.original_class == "InjectedFaultError"
        assert error.phase == "solve"
        assert isinstance(error.__cause__, InjectedFaultError)

    def test_snapshot_is_redacted_counts(self):
        gi = Inferencer(ENV, faults=FaultPlan(fail_at_solver_step=2))
        with pytest.raises(InternalError) as info:
            gi.infer(parse_term("app runST argST"))
        snapshot = info.value.snapshot
        assert set(snapshot) == {
            "pending_constraints",
            "deferred_constraints",
            "current_level",
            "substitution_size",
            "solver_steps",
            "traceback",
        }
        counts = {k: v for k, v in snapshot.items() if k != "traceback"}
        assert all(isinstance(value, int) for value in counts.values())

    def test_snapshot_carries_formatted_traceback(self):
        gi = Inferencer(ENV, faults=FaultPlan(fail_at_solver_step=2))
        with pytest.raises(InternalError) as info:
            gi.infer(parse_term("app runST argST"))
        trace = info.value.snapshot["traceback"]
        assert "InjectedFaultError" in trace
        assert "Traceback (most recent call last)" in trace
        # The one-line diagnostic stays one line: the traceback lives only
        # in the snapshot, never in the rendered message.
        assert str(info.value).count("\n") == 0

    def test_accepts_survives_internal_failure(self):
        gi = Inferencer(ENV, faults=FaultPlan(fail_at_unify_depth=1))
        assert gi.accepts(parse_term("head ids")) is False

    def test_generate_phase_contained(self, monkeypatch):
        from repro.core.generate import Generator

        def explode(self, env, term, path=()):
            raise AssertionError("invariant violated")

        monkeypatch.setattr(Generator, "gen", explode)
        with pytest.raises(InternalError) as info:
            Inferencer(ENV).infer(parse_term("head ids"))
        assert info.value.phase == "generate"
        assert info.value.original_class == "AssertionError"

    def test_gi_errors_pass_through_unwrapped(self):
        with pytest.raises(GIError) as info:
            Inferencer(ENV).infer(parse_term("inc True"))
        assert not isinstance(info.value, InternalError)


class TestDefaultingKnob:
    def test_disabled_defaulting_reports_stuck(self):
        # A deferred instantiation whose head nothing will ever determine:
        # with defaulting on it is completed monomorphically (Section
        # 4.3.2); with defaulting off it must fail *deterministically*.
        from repro.core.constraints import Inst
        from repro.core.solver import Solver

        solver = Solver(NameSupply("u"), defaulting=False)
        blocked = solver.unifier.fresh(Sort.U, 0)
        with pytest.raises(StuckConstraintError):
            solver.solve([Inst(blocked, Sort.M, (), (), INT, None)])

    def test_defaulting_on_solves_the_same_program(self):
        from repro.core.constraints import Inst
        from repro.core.solver import Solver

        solver = Solver(NameSupply("u"))
        blocked = solver.unifier.fresh(Sort.U, 0)
        assert solver.solve([Inst(blocked, Sort.M, (), (), INT, None)]) == []

    def test_figure2_unaffected_by_defaulting_flag(self):
        # No Figure 2 row depends on defaulting: verdicts must agree.
        from repro.evalsuite.figure2 import FIGURE2

        nodefault = Inferencer(ENV, options=InferOptions(defaulting=False))
        plain = Inferencer(ENV)
        for example in FIGURE2:
            assert plain.accepts(example.term) == nodefault.accepts(example.term), (
                example.key
            )
