"""The order-preserving worker pool behind ``--jobs``."""

import threading
import time

import pytest

from repro.core.errors import InternalError
from repro.robustness import Budget, WorkerPool, clone_budget


class TestCloneBudget:
    def test_none_passes_through(self):
        assert clone_budget(None) is None

    def test_limits_copied_state_not_shared(self):
        original = Budget(max_solver_steps=7, max_unify_depth=9, wall_clock=0.5)
        original.start()
        original.check_solver_step(3)
        clone = clone_budget(original)
        assert clone is not original
        assert clone.max_solver_steps == 7
        assert clone.max_unify_depth == 9
        assert clone.wall_clock == 0.5
        assert clone.solver_steps == 0


class TestWorkerPool:
    def test_serial_path_preserves_order(self):
        pool = WorkerPool(jobs=1)
        assert pool.map(lambda x, _: x * x, range(10)) == [
            n * n for n in range(10)
        ]

    def test_serial_path_spawns_no_threads(self):
        pool = WorkerPool(jobs=1)
        main = threading.current_thread()
        threads = pool.map(lambda x, _: threading.current_thread(), range(4))
        assert all(thread is main for thread in threads)

    def test_concurrent_map_preserves_order(self):
        # Early items sleep longest, so completion order is reversed —
        # the results must still come back in submission order.
        def slow_square(x, _budget):
            time.sleep((8 - x) * 0.005)
            return x * x

        pool = WorkerPool(jobs=4)
        assert pool.map(slow_square, range(8)) == [n * n for n in range(8)]

    def test_each_worker_thread_gets_its_own_budget(self):
        budgets = {}
        lock = threading.Lock()
        barrier = threading.Barrier(3, timeout=5)

        def record(x, budget):
            if x < 3:
                barrier.wait()  # force three distinct worker threads
            with lock:
                budgets[threading.get_ident()] = budget
            return x

        pool = WorkerPool(jobs=3, budget_factory=lambda: Budget(max_solver_steps=5))
        pool.map(record, range(6))
        assert len(budgets) >= 3
        distinct = list(budgets.values())
        assert all(b is not None for b in distinct)
        # Budgets are per-thread objects, never shared between threads.
        assert len({id(b) for b in distinct}) == len(distinct)

    def test_no_factory_means_no_budget(self):
        pool = WorkerPool(jobs=2)
        budgets = pool.map(lambda x, budget: budget, range(4))
        assert budgets == [None, None, None, None]

    def test_single_item_never_threads(self):
        pool = WorkerPool(jobs=8)
        main = threading.current_thread()
        assert pool.map(lambda x, _: threading.current_thread(), [1]) == [main]


class _Unprintable(RuntimeError):
    """An exception whose __str__ itself crashes."""

    def __str__(self):
        raise ValueError("no rendering for you")


class TestWorkerDeath:
    """A task asking the process to die is a contained task failure."""

    @pytest.mark.parametrize("death", [SystemExit, KeyboardInterrupt])
    def test_process_exit_requests_become_internal_errors(self, death):
        def task(x, _budget):
            if x == 2:
                raise death(f"worker {x} wants out")
            return x

        pool = WorkerPool(jobs=3)
        with pytest.raises(InternalError) as caught:
            pool.map(task, range(6))
        assert caught.value.original_class == death.__name__
        assert caught.value.phase == "worker"
        # The remote traceback is preserved for structured output.
        assert "wants out" in (caught.value.snapshot.get("traceback") or "")

    @pytest.mark.parametrize("death", [SystemExit, KeyboardInterrupt])
    def test_pool_survives_a_worker_death(self, death):
        def fatal(_x, _budget):
            raise death()

        pool = WorkerPool(jobs=2)
        with pytest.raises(InternalError):
            pool.map(fatal, range(4))
        # The same pool object still works, in order, after the crash.
        assert pool.map(lambda x, _: x * x, range(5)) == [0, 1, 4, 9, 16]

    def test_serial_path_contains_deaths_too(self):
        pool = WorkerPool(jobs=1)
        with pytest.raises(InternalError):
            pool.map(lambda x, _: (_ for _ in ()).throw(SystemExit(3)), [1])

    def test_unprintable_exception_is_still_contained(self):
        # Containment must survive a snapshot/exception whose own
        # formatting crashes: the message degrades to a placeholder.
        def task(_x, _budget):
            raise _Unprintable()

        pool = WorkerPool(jobs=2)
        with pytest.raises(InternalError) as caught:
            pool.map(task, range(3))
        assert "<unprintable _Unprintable>" in str(caught.value)
