"""The int-indexed arena type core: encoding, snapshot/restore, the
arena-backed unifier's parity with the object-level fallback, and the
interning satellites (capacity-full observability, ``deep_prenex``
re-interning)."""

import pytest

from repro.core.arena import (
    Arena,
    ArenaFull,
    ArenaInternTable,
    snapshot_environment,
)
from repro.core.arena_unify import ArenaUnifier, arena_enabled, make_unifier
from repro.core.env import Environment
from repro.core.errors import GIError
from repro.core.infer import Inferencer, InferOptions
from repro.core.names import NameSupply
from repro.core.policy import deep_prenex
from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    InternTable,
    Pred,
    TCon,
    TVar,
    UVar,
    forall,
    fun,
    ftv,
    fuv,
    subst_uvars,
)
from repro.core.unify import Unifier


def sample_types():
    a, b = TVar("a"), TVar("b")
    u = UVar("u", Sort.U, 0)
    m = UVar("m", Sort.M, 2)
    return [
        TCon("Int"),
        a,
        u,
        m,
        fun(TCon("Int"), TCon("Bool")),
        TCon("List", (fun(a, u),)),
        forall(["a"], fun(a, a)),
        forall(["a", "b"], fun(a, fun(b, a))),
        Forall(("a",), fun(a, a), (Pred("Eq", (a,)),)),
        Forall(("a", "b"), fun(a, b), (Pred("Ord", (a,)), Pred("Show", (b,)))),
        fun(forall(["a"], fun(a, a)), TCon("Int")),
    ]


class TestArenaEncoding:
    def test_roundtrip_preserves_structure(self):
        arena = Arena()
        for type_ in sample_types():
            node = arena.add(type_)
            assert arena.view(node) == type_

    def test_structural_identity_is_node_identity(self):
        arena = Arena()
        first = fun(TVar("a"), TCon("Int"))
        second = fun(TVar("a"), TCon("Int"))
        assert first is not second
        assert arena.add(first) == arena.add(second)
        node = arena.add(first)
        assert arena.view(node) is arena.view(node)

    def test_fuv_order_matches_object_level(self):
        arena = Arena()
        u1, u2, u3 = UVar("u1"), UVar("u2", Sort.M, 1), UVar("u3", Sort.T, 2)
        type_ = TCon("T", (fun(u2, u1), u3, u2))
        node = arena.add(type_)
        names = [arena.name_of(i) for i in arena.fuv_ids(node)]
        assert names == [v.name for v in fuv(type_)]

    def test_fuv_order_in_forall_context(self):
        arena = Arena()
        u1, u2 = UVar("u1"), UVar("u2")
        type_ = Forall(("a",), fun(u1, TVar("a")), (Pred("Eq", (u2,)),))
        node = arena.add(type_)
        names = [arena.name_of(i) for i in arena.fuv_ids(node)]
        assert names == [v.name for v in fuv(type_)]

    def test_ftv_respects_binders_and_order(self):
        arena = Arena()
        type_ = forall(["b"], fun(TVar("b"), fun(TVar("c"), TVar("d"))))
        node = arena.add(type_)
        assert list(arena.ftv_names(node)) == list(ftv(type_))

    def test_subst_uvar_ids_matches_object_subst(self):
        arena = Arena()
        u1, u2 = UVar("u1"), UVar("u2")
        type_ = TCon("Pair", (fun(u1, u2), u1))
        node = arena.add(type_)
        mapping = {arena.add(u1): arena.add(TCon("Int"))}
        rewritten = arena.subst_uvar_ids(mapping, node)
        assert arena.view(rewritten) == subst_uvars({u1: TCon("Int")}, type_)

    def test_subst_unchanged_subtree_keeps_id(self):
        arena = Arena()
        type_ = fun(TCon("Int"), TCon("Bool"))
        node = arena.add(type_)
        assert arena.subst_uvar_ids({arena.add(UVar("zz")): node}, node) == node

    def test_mentions_forall(self):
        arena = Arena()
        flat = arena.add(fun(TCon("Int"), TCon("Bool")))
        nested = arena.add(TCon("List", (forall(["a"], fun(TVar("a"), TVar("a"))),)))
        assert not arena.mentions_forall(flat)
        assert arena.mentions_forall(nested)

    def test_bounded_arena_raises_arena_full(self):
        arena = Arena(capacity=2)
        arena.add(TCon("Int"))
        arena.add(TCon("Bool"))
        assert arena.add(TCon("Int")) == 0  # existing nodes still found
        with pytest.raises(ArenaFull):
            arena.add(TCon("Char"))


class TestSnapshotRestore:
    def test_restore_reproduces_ids_and_views(self):
        arena = Arena()
        nodes = [(arena.add(t), t) for t in sample_types()]
        restored = Arena.restore(arena.snapshot())
        assert len(restored) == len(arena)
        for node, type_ in nodes:
            assert restored.view(node) == type_
            assert restored.add(type_) == node  # memo rebuilt exactly

    def test_resnapshot_is_byte_identical(self):
        arena = Arena()
        for type_ in sample_types():
            arena.add(type_)
        buffer = arena.snapshot()
        assert Arena.restore(buffer).snapshot() == buffer

    def test_capacity_survives_restore(self):
        arena = Arena(capacity=64)
        arena.add(TCon("Int"))
        assert Arena.restore(arena.snapshot()).capacity == 64

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            Arena.restore(b"NOTANARENA" + b"\x00" * 64)

    def test_snapshot_environment_covers_bindings(self):
        env = Environment(
            {
                "id": forall(["a"], fun(TVar("a"), TVar("a"))),
                "one": TCon("Int"),
            }
        )
        table = ArenaInternTable.restore(snapshot_environment(env))
        before = len(table)
        table.intern(forall(["a"], fun(TVar("a"), TVar("a"))))
        assert len(table) == before, "prelude types arrive pre-interned"


class TestInternCounters:
    """Satellite: capacity-full interning is observable, never silent."""

    def test_base_table_counts_hits_misses_and_full(self):
        table = InternTable(capacity=2)
        first = table.intern(TCon("Int"))
        table.intern(TCon("Bool"))
        assert table.misses == 2
        assert table.intern(TCon("Int")) is first
        assert table.hits == 1
        overflow = fun(TCon("Int"), TCon("Bool"))
        result = table.intern(overflow)
        assert result is overflow, "full table returns its argument"
        assert table.full_events == 1
        assert table.stats() == {
            "size": 2,
            "hits": 1,
            "misses": 2,
            "full_events": 1,
        }

    def test_full_event_reaches_the_tracer(self):
        from repro.observability import Tracer

        tracer = Tracer()
        table = InternTable(capacity=1)
        table.attach_tracer(tracer)
        table.intern(TCon("Int"))
        table.intern(TCon("Bool"))
        assert table.full_events == 1
        assert tracer.metrics.counters.get("types.intern.full") == 1

    def test_arena_table_preserves_the_memory_bound(self):
        table = ArenaInternTable(capacity=3)
        table.intern(fun(TCon("Int"), TCon("Bool")))  # 3 nodes: Int, Bool, ->
        big = fun(TCon("Char"), TCon("Float"))
        result = table.intern(big)
        assert result is big, "full arena degrades exactly like a full table"
        assert table.full_events >= 1
        assert len(table) == 3

    def test_inference_stays_correct_after_capacity_reached(self):
        # The regression the counter exists for: a tiny shared table fills
        # immediately, interning degrades to pass-through, and inference
        # must still produce the same types as with an unbounded table —
        # with the degradation observable on the counters.
        env = Environment(
            {
                "id": forall(["a"], fun(TVar("a"), TVar("a"))),
                "one": TCon("Int"),
            }
        )
        from repro.syntax.parser import parse_term

        def outcome(inferencer, source):
            try:
                return str(inferencer.infer(parse_term(source)).type_)
            except GIError as error:
                return type(error).__name__

        sources = ["id one", "id id", r"\x -> id x", "let f = id in f one"]
        expected = [outcome(Inferencer(env), s) for s in sources]
        tables = []
        for capacity in (0, 1, 4):
            table = InternTable(capacity=capacity)
            tables.append(table)
            inferencer = Inferencer(env, intern=table)
            got = [outcome(inferencer, s) for s in sources]
            assert got == expected, f"capacity={capacity} changed inference"
        assert tables[0].full_events > 0, "a full table must report degradation"
        assert all(len(t) <= t.capacity for t in tables), "bound must hold"
        assert any(t.hits > 0 for t in tables), "interning must stay observable"


class TestDeepPrenexInterning:
    """Satellite: ``deep_prenex`` rebuilds must be re-interned so its
    ``is``-based fixed point survives shared tables."""

    NESTED = fun(TCon("Int"), forall(["a"], fun(TVar("a"), TVar("a"))))

    def test_rebuild_is_interned(self):
        table = InternTable()
        first = deep_prenex(self.NESTED, intern=table)
        second = deep_prenex(self.NESTED, intern=table)
        assert first is second, "same table must yield the identical object"
        assert deep_prenex(first, intern=table) is first, "fixed point by is"

    def test_rebuild_is_interned_under_arena_table(self):
        table = ArenaInternTable()
        first = deep_prenex(self.NESTED, intern=table)
        second = deep_prenex(self.NESTED, intern=table)
        assert first is second
        assert deep_prenex(first, intern=table) is first

    def test_roundtrip_through_second_shared_table(self):
        # The serve multi-session case: a type prenexed against one
        # session's view of the shared table, then re-interned through a
        # second fresh-but-shared table, must still satisfy object
        # identity = structural identity inside each table.
        nested = Forall(
            ("b",),
            fun(TVar("b"), forall(["a"], fun(TVar("a"), TVar("b")))),
            (Pred("Eq", (TVar("b"),)),),
        )
        first_table = InternTable()
        hoisted = deep_prenex(nested, intern=first_table)
        assert first_table.intern(hoisted) is hoisted
        second_table = ArenaInternTable()
        via_second = second_table.intern(hoisted)
        assert via_second == hoisted
        assert deep_prenex(via_second, intern=second_table) is via_second
        # And hoisting the original against the second table canonicalises
        # to the same node the round-tripped object occupies.
        assert deep_prenex(nested, intern=second_table) is via_second

    def test_solver_threads_its_table_through_deep_policies(self):
        from repro.core.policy import EAGER_DEEP
        from repro.syntax.parser import parse_term

        env = Environment(
            {
                "mk": fun(
                    TCon("Int"),
                    fun(TCon("Int"), forall(["a"], fun(TVar("a"), TVar("a")))),
                ),
                "one": TCon("Int"),
            }
        )
        options = InferOptions(policy=EAGER_DEEP)
        for arena in (True, False):
            inferencer = Inferencer(
                env, options=InferOptions(policy=EAGER_DEEP, arena=arena)
            )
            result = inferencer.infer(parse_term("mk one"))
            assert str(result.type_) == "forall a. Int -> a -> a"
        assert options.policy.deep


def unifier_scenario(make):
    """A battery of store operations; returns every observable."""
    unifier = make(NameSupply("v"))
    a, b = UVar("a", Sort.U, 0), UVar("b", Sort.U, 0)
    c, m = UVar("c", Sort.T, 1), UVar("m", Sort.M, 0)
    out = []
    unifier.unify(a, c)
    out += [str(unifier.zonk(a)), str(unifier.zonk(c))]
    unifier.unify(b, fun(TCon("Int"), a))
    out.append(str(unifier.zonk(b)))
    d, e = UVar("d", Sort.U, 0), UVar("e", Sort.U, 2)
    unifier.unify(m, TCon("Pair", (d, e)))
    out += [str(unifier.zonk(m)), str(unifier.zonk(d)), str(unifier.zonk(e))]
    outer, deep = UVar("o", Sort.U, 0), UVar("dd", Sort.U, 3)
    unifier.unify(outer, fun(deep, TCon("Int")))
    out += [str(unifier.zonk(outer)), str(unifier.zonk(deep))]
    s1 = forall(["x"], fun(TVar("x"), TVar("x")))
    s2 = forall(["y"], fun(TVar("y"), TVar("y")))
    f = UVar("f", Sort.U, 0)
    unifier.unify(fun(s1, f), fun(s2, TCon("Bool")))
    out.append(str(unifier.zonk(f)))
    try:
        unifier.unify(a, TCon("List", (a,)))
    except GIError as error:
        out.append(type(error).__name__)
    try:
        unifier.unify(TCon("Int"), TCon("Bool"))
    except GIError as error:
        out.append(type(error).__name__)
    g, h = UVar("g", Sort.U, 0), UVar("h", Sort.U, 0)
    unifier.assign(g, h)
    unifier.assign(h, TCon("Char"))
    out.append(str(unifier.zonk(g)))
    out.append(f"bindings={unifier.bindings}")
    out.append(f"subst={len(unifier.subst)}")
    out.append(f"next={unifier.supply.fresh()}")
    out.append(f"skolems={sorted(unifier.skolem_levels)}")
    return out


class TestArenaUnifierParity:
    def test_scenario_battery_matches_fallback(self):
        base = unifier_scenario(Unifier)
        arena = unifier_scenario(ArenaUnifier)
        assert base == arena

    def test_subst_view_protocol(self):
        unifier = ArenaUnifier(NameSupply("v"))
        a, b = UVar("a"), UVar("b")
        assert not unifier.subst and len(unifier.subst) == 0
        assert a not in unifier.subst
        unifier.assign(a, b)
        unifier.assign(b, TCon("Int"))
        assert a in unifier.subst and b in unifier.subst
        assert unifier.subst.get(a) == b
        assert unifier.subst[b] == TCon("Int")
        assert len(unifier.subst) == 2
        listed = dict(unifier.subst.items())
        assert listed[a] == b and listed[b] == TCon("Int")

    def test_zonk_identity_contract(self):
        # ``deep_prenex`` and friends detect fixed points by identity, so
        # a clean type must come back as the same object.
        unifier = ArenaUnifier(NameSupply("v"))
        clean = fun(TCon("Int"), TCon("Bool"))
        assert unifier.zonk(clean) is clean
        assert unifier.zonk_head(clean) is clean
        sigma = forall(["a"], fun(TVar("a"), TVar("a")))
        assert unifier.zonk(sigma) is sigma

    def test_on_bind_fires_with_structural_keys(self):
        # The solver's wake-queue is keyed by UVar structurally; arena
        # notifications must hit the same keys.
        fired = []
        unifier = ArenaUnifier(NameSupply("v"))
        unifier.on_bind = fired.append
        a, b = UVar("a"), UVar("b")
        unifier.unify(a, b)
        unifier.unify(b, TCon("Int"))
        assert fired, "bindings must notify"
        assert all(isinstance(v, UVar) for v in fired)
        assert {v.name for v in fired} <= {"a", "b"}

    def test_id_level_chain(self):
        unifier = ArenaUnifier(NameSupply("v"))
        ids = [unifier.fresh_id(Sort.U, 0) for _ in range(50)]
        for left, right in zip(ids, ids[1:]):
            unifier.assign_id(left, right)
        unifier.assign_id(ids[-1], unifier._arena.tcon("Int"))
        zonked = unifier.zonk_id(ids[0])
        assert unifier._arena.view(zonked) == TCon("Int")
        # Object-level view of the same store agrees.
        assert str(unifier.zonk(unifier._arena.view(ids[0]))) == "Int"
        assert len(unifier.subst) == 50

    def test_zonk_ids_batch_matches_per_id(self):
        unifier = ArenaUnifier(NameSupply("v"))
        arena = unifier._arena
        ids = [unifier.fresh_id(Sort.U, 0) for _ in range(8)]
        for left, right in zip(ids, ids[1:]):
            unifier.assign_id(left, right)
        unifier.assign_id(ids[-1], arena.tcon("Int"))
        loose = unifier.fresh_id(Sort.U, 0)
        pair = arena.tcon("Pair", (ids[0], loose))
        batch = unifier.zonk_ids(ids + [loose, pair])
        singles = [unifier.zonk_id(i) for i in ids + [loose, pair]]
        assert batch == singles
        assert arena.view(batch[-1]) == TCon("Pair", (TCon("Int"), arena.view(loose)))

    def test_id_level_composite_zonk(self):
        unifier = ArenaUnifier(NameSupply("v"))
        arena = unifier._arena
        u = unifier.fresh_id(Sort.U, 0)
        pair = arena.tcon("Pair", (u, arena.tcon("Int")))
        unifier.assign_id(u, arena.tcon("Bool"))
        zonked = unifier.zonk_id(pair)
        assert arena.view(zonked) == TCon("Pair", (TCon("Bool"), TCon("Int")))
        # Unbound parts keep their node id (no spurious rebuild).
        v = unifier.fresh_id(Sort.U, 0)
        alone = arena.tcon("List", (v,))
        assert unifier.zonk_id(alone) == alone


class TestArenaSwitch:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARENA", raising=False)
        assert arena_enabled(None) is True
        assert arena_enabled(False) is False
        assert arena_enabled(True) is True
        monkeypatch.setenv("REPRO_ARENA", "0")
        assert arena_enabled(None) is False
        assert arena_enabled(True) is True
        monkeypatch.setenv("REPRO_ARENA", "off")
        assert arena_enabled(None) is False

    def test_make_unifier_honours_the_switch(self):
        assert isinstance(make_unifier(arena=True), ArenaUnifier)
        fallback = make_unifier(arena=False)
        assert type(fallback) is Unifier

    def test_figure2_prefix_identical_across_modes(self):
        from repro.evalsuite.figure2 import FIGURE2, figure2_env

        env = figure2_env()

        def sweep(arena):
            results = []
            inferencer = Inferencer(env, options=InferOptions(arena=arena))
            for example in FIGURE2[:12]:
                try:
                    results.append(str(inferencer.infer(example.term).type_))
                except GIError as error:
                    results.append(type(error).__name__)
            return results

        assert sweep(True) == sweep(False)
