"""The full Figure 2 matrix: measured columns vs the paper's.

* GI must match the paper's column on all 32 rows (also asserted
  per-row in test_figure2; this file checks the aggregate and the
  regenerated table).
* Plain HMF must match the paper's HMF column everywhere except D2/D5 —
  the two rows that need the delayed-argument extension the paper's §6
  describes; HMF-N (with the extension) must accept those but flips
  C5/C6/E2, exactly the examples the extension is documented to add.
  Both deviations are *expected findings*, recorded in EXPERIMENTS.md.
"""

from repro.baselines import SYSTEMS
from repro.core.types import alpha_equal, rename_canonical
from repro.evalsuite.figure2 import FIGURE2, MEASURED_SYSTEMS, figure2_env, measured_matrix
from repro.evalsuite.report import mark, mark_outcome, render_table

ENV = figure2_env()

# Rows where our executable HMF variants are expected to differ from the
# published column (see EXPERIMENTS.md for the analysis).
HMF_PLAIN_KNOWN_DEVIATIONS = {"D2", "D5"}
HMF_NARY_KNOWN_DEVIATIONS = {"C5", "C6", "E2"}

# FreezeML (no freeze markers in the shared syntax beyond annotations)
# accepts exactly the rows typeable with eager ML instantiation plus
# explicitly-annotated binders; Quick Look rejects only the three rows
# every system rejects modulo B2/E1-style eta-sensitivity.
FREEZEML_ACCEPTED = {
    "A1", "A2", "A3", "A4", "A5", "A6", "A7",
    "C1", "C2", "C3", "C4", "C7", "C10",
}
QUICKLOOK_REJECTED = {"B1", "B2", "E1"}


def measured(system_name: str) -> dict[str, bool]:
    system = SYSTEMS[system_name]
    return {ex.key: system.accepts(ex.term, ENV) for ex in FIGURE2}


def test_gi_matches_paper_everywhere():
    results = measured("GI")
    mismatches = [
        ex.key for ex in FIGURE2 if results[ex.key] != ex.expected["GI"]
    ]
    assert not mismatches, f"GI disagrees with the paper on {mismatches}"


def test_hmf_plain_deviations_are_exactly_the_known_ones():
    results = measured("HMF")
    deviations = {
        ex.key for ex in FIGURE2 if results[ex.key] != ex.expected["HMF"]
    }
    assert deviations == HMF_PLAIN_KNOWN_DEVIATIONS, (
        f"plain HMF deviations changed: {sorted(deviations)}"
    )


def test_hmf_nary_deviations_are_exactly_the_known_ones():
    results = measured("HMF-N")
    deviations = {
        ex.key for ex in FIGURE2 if results[ex.key] != ex.expected["HMF"]
    }
    assert deviations == HMF_NARY_KNOWN_DEVIATIONS, (
        f"n-ary HMF deviations changed: {sorted(deviations)}"
    )


def test_hmf_variants_union_covers_published_column():
    """Every row the published column accepts is accepted by at least one
    of the two HMF variants (the column mixes plain and extended
    behaviour — a reproduction finding)."""
    plain = measured("HMF")
    nary = measured("HMF-N")
    for ex in FIGURE2:
        if ex.expected["HMF"]:
            assert plain[ex.key] or nary[ex.key], ex.key


def test_hm_accepts_only_rank1_rows():
    results = measured("HM")
    accepted = {key for key, ok in results.items() if ok}
    # Exactly the classic Hindley-Milner rows of the corpus (C7 is HM
    # typeable at [Int → Int], instantiating id monomorphically).
    assert accepted == {"A1", "A2", "C4", "C7"}


def test_rankn_is_between_hm_and_gi():
    hm = measured("HM")
    rankn = measured("RankN")
    for ex in FIGURE2:
        if hm[ex.key]:
            assert rankn[ex.key], f"RankN rejects HM-typeable {ex.key}"


def test_freezeml_accepts_exactly_the_expected_rows():
    results = measured("FreezeML")
    accepted = {key for key, ok in results.items() if ok}
    assert accepted == FREEZEML_ACCEPTED, (
        f"FreezeML acceptance set changed: {sorted(accepted)}"
    )


def test_freezeml_accepts_subset_of_gi():
    """Without freeze markers, FreezeML's fragment of the shared syntax is
    conservative over GI on Figure 2."""
    freezeml = measured("FreezeML")
    gi = measured("GI")
    for ex in FIGURE2:
        if freezeml[ex.key]:
            assert gi[ex.key], f"FreezeML accepts GI-rejected {ex.key}"


def test_quicklook_rejects_exactly_the_expected_rows():
    results = measured("QuickLook")
    rejected = {key for key, ok in results.items() if not ok}
    assert rejected == QUICKLOOK_REJECTED, (
        f"QuickLook rejection set changed: {sorted(rejected)}"
    )


def test_gi_accepts_subset_of_quicklook():
    """The guardedness theorem's empirical face on Figure 2: every
    GI-accepted example is Quick-Look-accepted."""
    gi = measured("GI")
    quicklook = measured("QuickLook")
    for ex in FIGURE2:
        if gi[ex.key]:
            assert quicklook[ex.key], f"QuickLook rejects GI-typeable {ex.key}"


def test_rankn_accepts_subset_of_quicklook_with_equal_types():
    """Quick Look is conservative over its RankN base: same acceptances
    and α-equivalent types wherever RankN succeeds."""
    rankn = SYSTEMS["RankN"]
    quicklook = SYSTEMS["QuickLook"]
    for ex in FIGURE2:
        base = rankn.run(ex.term, ENV)
        if not base.accepted:
            continue
        extended = quicklook.run(ex.term, ENV)
        assert extended.accepted, f"QuickLook rejects RankN-typeable {ex.key}"
        assert alpha_equal(
            rename_canonical(base.type_), rename_canonical(extended.type_)
        ), f"{ex.key}: RankN {base.type_} vs QuickLook {extended.type_}"


def test_measured_matrix_covers_all_backends_without_crashes():
    matrix = measured_matrix(ENV)
    assert set(matrix) == set(MEASURED_SYSTEMS)
    for name, outcomes in matrix.items():
        assert set(outcomes) == {ex.key for ex in FIGURE2}
        crashed = [key for key, out in outcomes.items() if out.crashed]
        assert not crashed, f"{name} crashed on {crashed}"
        marks = {mark_outcome(out) for out in outcomes.values()}
        assert marks <= {"✓", "No"}, f"{name} has unavailable rows"


def test_render_full_table():
    """The regenerated Figure 2 renders without error and marks reference
    columns as such."""
    headers = (
        ["id", "example"]
        + [f"{name}*" for name in MEASURED_SYSTEMS]
        + ["GI", "MLF", "HMF", "FPH", "HML"]
    )
    rows = []
    matrix = measured_matrix(ENV)
    for ex in FIGURE2:
        rows.append(
            [ex.key, ex.source[:30]]
            + [mark_outcome(matrix[name][ex.key]) for name in MEASURED_SYSTEMS]
            + [mark(ex.expected[s]) for s in ("GI", "MLF", "HMF", "FPH", "HML")]
        )
    table = render_table(headers, rows, title="Figure 2 (measured* vs paper)")
    assert "A1" in table and "E3" in table
    assert "FreezeML*" in table and "QuickLook*" in table
    assert table.count("\n") >= 33
