"""The full Figure 2 matrix: measured columns vs the paper's.

* GI must match the paper's column on all 32 rows (also asserted
  per-row in test_figure2; this file checks the aggregate and the
  regenerated table).
* Plain HMF must match the paper's HMF column everywhere except D2/D5 —
  the two rows that need the delayed-argument extension the paper's §6
  describes; HMF-N (with the extension) must accept those but flips
  C5/C6/E2, exactly the examples the extension is documented to add.
  Both deviations are *expected findings*, recorded in EXPERIMENTS.md.
"""

from repro.baselines import SYSTEMS
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.evalsuite.report import mark, render_table

ENV = figure2_env()

# Rows where our executable HMF variants are expected to differ from the
# published column (see EXPERIMENTS.md for the analysis).
HMF_PLAIN_KNOWN_DEVIATIONS = {"D2", "D5"}
HMF_NARY_KNOWN_DEVIATIONS = {"C5", "C6", "E2"}


def measured(system_name: str) -> dict[str, bool]:
    system = SYSTEMS[system_name]
    return {ex.key: system.accepts(ex.term, ENV) for ex in FIGURE2}


def test_gi_matches_paper_everywhere():
    results = measured("GI")
    mismatches = [
        ex.key for ex in FIGURE2 if results[ex.key] != ex.expected["GI"]
    ]
    assert not mismatches, f"GI disagrees with the paper on {mismatches}"


def test_hmf_plain_deviations_are_exactly_the_known_ones():
    results = measured("HMF")
    deviations = {
        ex.key for ex in FIGURE2 if results[ex.key] != ex.expected["HMF"]
    }
    assert deviations == HMF_PLAIN_KNOWN_DEVIATIONS, (
        f"plain HMF deviations changed: {sorted(deviations)}"
    )


def test_hmf_nary_deviations_are_exactly_the_known_ones():
    results = measured("HMF-N")
    deviations = {
        ex.key for ex in FIGURE2 if results[ex.key] != ex.expected["HMF"]
    }
    assert deviations == HMF_NARY_KNOWN_DEVIATIONS, (
        f"n-ary HMF deviations changed: {sorted(deviations)}"
    )


def test_hmf_variants_union_covers_published_column():
    """Every row the published column accepts is accepted by at least one
    of the two HMF variants (the column mixes plain and extended
    behaviour — a reproduction finding)."""
    plain = measured("HMF")
    nary = measured("HMF-N")
    for ex in FIGURE2:
        if ex.expected["HMF"]:
            assert plain[ex.key] or nary[ex.key], ex.key


def test_hm_accepts_only_rank1_rows():
    results = measured("HM")
    accepted = {key for key, ok in results.items() if ok}
    # Exactly the classic Hindley-Milner rows of the corpus (C7 is HM
    # typeable at [Int → Int], instantiating id monomorphically).
    assert accepted == {"A1", "A2", "C4", "C7"}


def test_rankn_is_between_hm_and_gi():
    hm = measured("HM")
    rankn = measured("RankN")
    for ex in FIGURE2:
        if hm[ex.key]:
            assert rankn[ex.key], f"RankN rejects HM-typeable {ex.key}"


def test_render_full_table():
    """The regenerated Figure 2 renders without error and marks reference
    columns as such."""
    headers = ["id", "example", "GI*", "HMF*", "HMF-N*", "HM*", "RankN*",
               "GI", "MLF", "HMF", "FPH", "HML"]
    rows = []
    cache = {name: measured(name) for name in ("GI", "HMF", "HMF-N", "HM", "RankN")}
    for ex in FIGURE2:
        rows.append(
            [
                ex.key,
                ex.source[:30],
                mark(cache["GI"][ex.key]),
                mark(cache["HMF"][ex.key]),
                mark(cache["HMF-N"][ex.key]),
                mark(cache["HM"][ex.key]),
                mark(cache["RankN"][ex.key]),
            ]
            + [mark(ex.expected[s]) for s in ("GI", "MLF", "HMF", "FPH", "HML")]
        )
    table = render_table(headers, rows, title="Figure 2 (measured* vs paper)")
    assert "A1" in table and "E3" in table
    assert table.count("\n") >= 33
