"""Cross-validation: the literal Figure 8 rewriting engine against the
production worklist solver, on the scope-free fragment."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.classify import Bit
from repro.core.constraints import Eq, Gen, Inst, Scheme
from repro.core.errors import GIError
from repro.core.names import NameSupply
from repro.core.rewrite import rewrite_solve
from repro.core.solver import Solver
from repro.core.sorts import Sort
from repro.core.types import (
    BOOL,
    INT,
    TVar,
    UVar,
    alpha_equal,
    forall,
    fun,
    fuv,
    list_of,
)

from tests.strategies import monotypes

RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.filter_too_much], deadline=None
)

A = TVar("a")
ID = forall(["a"], fun(A, A))


def production_solve(constraints):
    solver = Solver(NameSupply("p"))
    try:
        solver.solve(list(constraints))
        return solver
    except GIError:
        return None


class TestAgainstProductionSolver:
    def check_agreement(self, constraints, probes=()):
        production = production_solve(constraints)
        outcome = rewrite_solve(constraints)
        assert (production is not None) == outcome.solved, (
            f"production={'ok' if production else 'fail'} "
            f"rewrite={'ok' if outcome.solved else 'fail'} "
            f"trace={outcome.steps}"
        )
        if production is not None:
            rewrite_subst = outcome.substitution
            for probe in probes:
                left = production.unifier.zonk(probe)
                right = probe
                # Fully apply the rewrite substitution.
                from repro.core.types import subst_uvars

                for _ in range(len(rewrite_subst) + 1):
                    right = subst_uvars(rewrite_subst, right)
                assert alpha_equal(left, right) or (
                    fuv(left) and fuv(right)
                ), f"{probe}: production {left}, rewrite {right}"

    def test_simple_equalities(self):
        alpha, beta = UVar("x", Sort.U), UVar("y", Sort.U)
        self.check_agreement(
            [Eq(alpha, list_of(beta)), Eq(beta, INT)], probes=[alpha]
        )

    def test_failure_agreement(self):
        self.check_agreement([Eq(INT, BOOL)])

    def test_occurs_agreement(self):
        alpha = UVar("x", Sort.U)
        self.check_agreement([Eq(alpha, list_of(alpha))])

    def test_sort_demotion(self):
        alpha_m, beta_u = UVar("x", Sort.M), UVar("y", Sort.U)
        self.check_agreement(
            [Eq(alpha_m, list_of(beta_u)), Eq(beta_u, INT)], probes=[alpha_m]
        )

    def test_sort_violation(self):
        alpha_m = UVar("x", Sort.M)
        self.check_agreement([Eq(alpha_m, list_of(ID))])

    def test_instantiation(self):
        head_type = forall(["p"], fun(list_of(TVar("p")), TVar("p")))
        arg = UVar("a1", Sort.U)
        res = UVar("r", Sort.T)
        self.check_agreement(
            [
                Inst(head_type, Sort.M, (Bit.GEN,), (arg,), res),
                Eq(arg, list_of(ID)),
            ],
            probes=[arg],
        )

    def test_generalisation_release(self):
        rhs = UVar("x", Sort.T)
        captured = UVar("c", Sort.M)
        scheme = Scheme((captured,), (Eq(captured, INT),), fun(captured, captured))
        self.check_agreement([Gen(scheme, rhs)], probes=[rhs])

    @RELAXED
    @given(monotypes(2), monotypes(2))
    def test_random_unification_problems(self, left, right):
        self.check_agreement([Eq(left, right)])

    @RELAXED
    @given(monotypes(2), monotypes(2), monotypes(2))
    def test_random_conjunction(self, t1, t2, t3):
        alpha = UVar("probe", Sort.U)
        self.check_agreement([Eq(alpha, t1), Eq(t2, t3)])


class TestRewriteEngineDirect:
    def test_trace_records_rules(self):
        alpha = UVar("x", Sort.U)
        outcome = rewrite_solve([Eq(list_of(alpha), list_of(INT))])
        assert "eqmono" in outcome.steps
        assert outcome.solved

    def test_inst_rules_in_trace(self):
        res = UVar("r", Sort.T)
        outcome = rewrite_solve([Inst(forall(["a"], fun(A, A)), Sort.M, (), (), res)])
        assert "inst∀l" in outcome.steps and "instϵ" in outcome.steps
        assert outcome.solved

    def test_stuck_problem_reports_residual(self):
        outcome = rewrite_solve([Eq(INT, BOOL)])
        assert not outcome.solved
        assert outcome.residual

    def test_solved_form_is_idempotent(self):
        alpha, beta = UVar("x", Sort.U), UVar("y", Sort.U)
        outcome = rewrite_solve([Eq(alpha, list_of(beta)), Eq(beta, INT)])
        assert outcome.solved
        for image in outcome.substitution.values():
            assert not any(v in outcome.substitution for v in fuv(image))
