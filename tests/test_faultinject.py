"""The fault-injection harness: the engine never crashes, it diagnoses.

For every Figure 2 example we inject failures at solver steps and
unification depths, and exhaust every kind of budget — and assert the
engine always yields either a typed result or a :class:`GIError`
subclass (with phase/counter metadata for budgets), never an uncaught
Python exception.
"""

import pytest

from repro.core import Inferencer
from repro.core.errors import BudgetExceededError, GIError, InternalError
from repro.robustness import Budget, FaultPlan, InjectedFaultError
from repro.evalsuite.figure2 import FIGURE2, figure2_env

ENV = figure2_env()


def _profile(example):
    """Run one example cleanly, returning (solver_steps, peak_unify_depth)."""
    budget = Budget()
    try:
        Inferencer(ENV, budget=budget).infer(example.term)
    except GIError:
        pass
    return budget.solver_steps, budget.peak_unify_depth


def _outcome(inferencer, term):
    """Type string, or the GIError raised; anything else escapes loudly."""
    try:
        return str(inferencer.infer(term).type_)
    except GIError as error:
        return error


class TestFaultPlanTriggers:
    def test_solver_step_fault_fires_deterministically(self):
        from repro.syntax import parse_term

        term = parse_term("app runST argST")  # Figure 2 row D4, many steps
        plan = FaultPlan(fail_at_solver_step=2)
        gi = Inferencer(ENV, faults=plan)
        with pytest.raises(InternalError):
            gi.infer(term)
        assert plan.fired == ["solver_step=2"]
        with pytest.raises(InternalError):
            gi.infer(term)
        assert plan.fired == ["solver_step=2"]  # re-armed per run

    def test_unify_depth_fault_fires(self):
        plan = FaultPlan(fail_at_unify_depth=1)
        gi = Inferencer(ENV, faults=plan)
        with pytest.raises(InternalError) as info:
            gi.infer(FIGURE2[0].term)
        assert info.value.original_class == "InjectedFaultError"
        assert plan.fired == ["unify_depth=1"]

    def test_disarmed_plan_is_invisible(self):
        plain = _outcome(Inferencer(ENV), FIGURE2[0].term)
        hooked = _outcome(Inferencer(ENV, faults=FaultPlan()), FIGURE2[0].term)
        assert str(plain) == str(hooked)

    def test_raw_fault_never_escapes(self):
        # The raw InjectedFaultError must be contained; only its
        # InternalError wrapping may surface.
        gi = Inferencer(ENV, faults=FaultPlan(fail_at_solver_step=1))
        try:
            gi.infer(FIGURE2[0].term)
        except InjectedFaultError:  # pragma: no cover — the failure mode
            pytest.fail("injected fault escaped the containment boundary")
        except GIError:
            pass


class TestFigure2NeverCrashes:
    """The acceptance sweep: injection at any point yields a GIError."""

    @pytest.mark.parametrize("example", FIGURE2, ids=lambda e: e.key)
    def test_solver_step_injection(self, example):
        steps, _ = _profile(example)
        probe_points = sorted({1, max(1, steps // 2), max(1, steps)})
        for step in probe_points:
            gi = Inferencer(ENV, faults=FaultPlan(fail_at_solver_step=step))
            outcome = _outcome(gi, example.term)
            if isinstance(outcome, GIError):
                continue  # contained (or the original type error came first)
            assert isinstance(outcome, str)  # fault point past the run's end

    @pytest.mark.parametrize("example", FIGURE2, ids=lambda e: e.key)
    def test_unify_depth_injection(self, example):
        _, depth = _profile(example)
        for target in sorted({1, max(1, depth)}):
            gi = Inferencer(ENV, faults=FaultPlan(fail_at_unify_depth=target))
            outcome = _outcome(gi, example.term)
            assert isinstance(outcome, (GIError, str))

    @pytest.mark.parametrize("example", FIGURE2, ids=lambda e: e.key)
    def test_step_budget_exhaustion(self, example):
        steps, _ = _profile(example)
        for limit in sorted({1, max(1, steps // 2), max(1, steps - 1)}):
            gi = Inferencer(ENV, budget=Budget(max_solver_steps=limit))
            outcome = _outcome(gi, example.term)
            if isinstance(outcome, BudgetExceededError):
                assert outcome.phase in ("solver", "unify", "deadline")
                assert outcome.counters["solver_steps"] >= 1
            else:
                # The example failed (or finished) before the fuel ran out;
                # either way the outcome is well-delimited.
                assert isinstance(outcome, (GIError, str))

    @pytest.mark.parametrize("example", FIGURE2, ids=lambda e: e.key)
    def test_depth_budget_exhaustion(self, example):
        gi = Inferencer(ENV, budget=Budget(max_unify_depth=1))
        outcome = _outcome(gi, example.term)
        if isinstance(outcome, BudgetExceededError):
            assert outcome.phase in ("unify", "deadline")
            assert outcome.counters["peak_unify_depth"] >= 1
        else:
            assert isinstance(outcome, (GIError, str))

    @pytest.mark.parametrize("example", FIGURE2[:5], ids=lambda e: e.key)
    def test_expired_deadline(self, example):
        gi = Inferencer(ENV, budget=Budget(wall_clock=0.0))
        outcome = _outcome(gi, example.term)
        assert isinstance(outcome, BudgetExceededError)
        assert outcome.phase == "deadline"


class TestCombinedBudgetAndFaults:
    def test_budget_and_fault_compose(self):
        from repro.syntax import parse_term

        # Whichever trips first wins; both are well-delimited GI errors.
        gi = Inferencer(
            ENV,
            budget=Budget(max_solver_steps=2),
            faults=FaultPlan(fail_at_solver_step=2),
        )
        with pytest.raises(GIError):
            gi.infer(parse_term("app runST argST"))
