"""The batch driver: many expressions, one budget each, full isolation.

The acceptance scenario: a file mixing well-typed, ill-typed and
budget-busting expressions reports one diagnostic per failing item and
still prints results for the rest.
"""

import json

import pytest

from repro.__main__ import main
from repro.robustness import Budget, FaultPlan, check_batch, read_batch_file
from repro.robustness.batch import render_text
from repro.evalsuite.figure2 import figure2_env

ENV = figure2_env()

WELL_TYPED = ["head ids", "runST $ argST", "single id"]
ILL_TYPED = ["inc True", "frobnicate"]
DEEP_PARENS = "(" * 800 + "head ids" + ")" * 800
"""Parseable only with unbounded recursion — a parser-phase crash."""

BUSY = "app (app (app id id) (app id id)) (app (app id id) (app id id))"
"""Well-typed but needs far more solver steps than the tiny test budget."""


class TestCheckBatch:
    def test_mixed_batch_reports_every_item(self):
        sources = WELL_TYPED + ILL_TYPED + [DEEP_PARENS]
        result = check_batch(sources, ENV, budget=Budget(max_solver_steps=500))
        assert len(result.items) == len(sources)
        assert [item.ok for item in result.items] == [True] * 3 + [False] * 3
        assert not result.ok

    def test_one_diagnostic_per_failure(self):
        result = check_batch(WELL_TYPED + ILL_TYPED, ENV)
        classes = [d.error_class for d in result.diagnostics]
        assert classes == ["UnificationError", "ScopeError"]
        assert [d.index for d in result.diagnostics] == [3, 4]
        assert all(d.severity == "error" for d in result.diagnostics)

    def test_budget_busting_item_is_isolated(self):
        # The busy item exhausts its budget; its neighbours (checked
        # under the same re-armed Budget object) are unaffected.
        sources = ["head ids", BUSY, "runST $ argST"]
        result = check_batch(sources, ENV, budget=Budget(max_solver_steps=40))
        assert [item.ok for item in result.items] == [True, False, True]
        diagnostic = result.items[1].diagnostic
        assert diagnostic.error_class == "BudgetExceededError"
        assert diagnostic.phase == "solver"

    def test_parser_crash_is_contained(self):
        result = check_batch([DEEP_PARENS], ENV)
        diagnostic = result.items[0].diagnostic
        assert diagnostic.severity == "internal"
        assert diagnostic.error_class == "InternalError"
        assert diagnostic.phase == "parse"

    def test_injected_fault_is_one_internal_diagnostic(self):
        result = check_batch(
            ["head ids"], ENV, faults=FaultPlan(fail_at_solver_step=1)
        )
        diagnostic = result.items[0].diagnostic
        assert diagnostic.severity == "internal"
        assert diagnostic.error_class == "InternalError"

    def test_successes_carry_types(self):
        result = check_batch(WELL_TYPED, ENV)
        assert result.ok
        assert [item.type_ for item in result.items] == [
            "forall a. a -> a",
            "Int",
            "forall a. [a -> a]",
        ]

    def test_to_dict_shape(self):
        result = check_batch(["head ids", "inc True"], ENV)
        payload = result.to_dict()
        assert payload["total"] == 2
        assert payload["passed"] == 1
        assert payload["failed"] == 1
        assert payload["items"][0]["ok"] is True
        assert payload["items"][1]["diagnostic"]["error_class"] == "UnificationError"
        json.dumps(payload)  # must be JSON-serialisable as-is


class TestBatchFile:
    def test_read_skips_blanks_and_comments(self, tmp_path):
        path = tmp_path / "exprs.gi"
        path.write_text("-- header\nhead ids\n\n  \nruncomment -- no\ninc True\n")
        assert read_batch_file(str(path)) == [
            "head ids",
            "runcomment -- no",
            "inc True",
        ]

    def test_policy_header_tags_following_sources(self, tmp_path):
        from repro.core.policy import LAZY_SHALLOW
        from repro.robustness import BatchSource

        path = tmp_path / "exprs.gi"
        path.write_text("head ids\n-- policy: lazy-shallow\ninc 1\n")
        plain, tagged = read_batch_file(str(path))
        assert plain == "head ids" and getattr(plain, "policy", None) is None
        assert isinstance(tagged, BatchSource)
        assert tagged == "inc 1" and tagged.policy is LAZY_SHALLOW

    def test_policy_header_scope_resets_per_file(self, tmp_path):
        (tmp_path / "a.gi").write_text("-- policy: lazy-deep\nhead ids\n")
        (tmp_path / "b.gi").write_text("inc 1\n")
        first, second = read_batch_file(str(tmp_path))
        assert first.policy.name == "lazy-deep"
        assert getattr(second, "policy", None) is None

    def test_unknown_policy_header_raises_with_filename(self, tmp_path):
        path = tmp_path / "exprs.gi"
        path.write_text("-- policy: eager-bogus\nhead ids\n")
        with pytest.raises(ValueError, match="eager-bogus"):
            read_batch_file(str(path))

    def test_per_item_policy_override_flips_the_verdict(self, tmp_path):
        from repro.core.policy import LAZY_SHALLOW
        from repro.robustness import BatchSource

        flip = "let f = id in (f :: forall a. a -> a)"
        default = check_batch([flip], ENV)
        assert not default.ok  # eager-shallow instantiates the let binding
        for jobs in (1, 2):
            tagged = check_batch([BatchSource(flip, policy=LAZY_SHALLOW)], ENV, jobs=jobs)
            assert tagged.ok
            assert tagged.items[0].type_ == "forall a. a -> a"


class TestBatchCLI:
    def _write(self, tmp_path, sources):
        path = tmp_path / "batch.gi"
        path.write_text("\n".join(sources) + "\n")
        return str(path)

    def test_all_pass_exits_zero(self, tmp_path, capsys):
        assert main(["batch", self._write(tmp_path, WELL_TYPED)]) == 0
        out = capsys.readouterr().out
        assert "3/3 passed, 0 failed" in out

    def test_bad_policy_header_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, ["-- policy: nope", "head ids"])
        assert main(["batch", path]) == 2
        err = capsys.readouterr().err
        assert "unknown policy" in err and "eager-shallow" in err

    def test_failures_exit_nonzero_but_report_everything(self, tmp_path, capsys):
        path = self._write(tmp_path, WELL_TYPED + ILL_TYPED + [DEEP_PARENS])
        assert main(["batch", path, "--max-steps", "500"]) == 1
        out = capsys.readouterr().out
        assert "#0: ok: forall a. a -> a" in out
        assert "#3: error [UnificationError]" in out
        assert "#4: error [ScopeError]" in out
        assert "#5: internal [InternalError]" in out
        assert "3/6 passed, 3 failed" in out

    def test_json_output(self, tmp_path, capsys):
        path = self._write(tmp_path, ["head ids", "inc True"])
        assert main(["batch", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1
        assert payload["items"][1]["diagnostic"]["severity"] == "error"

    def test_budget_flags(self, tmp_path, capsys):
        path = self._write(tmp_path, ["head ids", BUSY])
        assert main(["batch", path, "--max-steps", "40"]) == 1
        out = capsys.readouterr().out
        assert "#0: ok" in out
        assert "BudgetExceededError" in out

    def test_missing_file(self, capsys):
        assert main(["batch", "/nonexistent/exprs.gi"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_render_text_totals(self):
        result = check_batch(["head ids"], ENV)
        assert render_text(result).endswith("1/1 passed, 0 failed")


class TestBatchJobs:
    """``check_batch`` through the worker pool (``--jobs N``)."""

    def test_concurrent_matches_serial(self):
        sources = (WELL_TYPED + ILL_TYPED) * 4
        serial = check_batch(sources, ENV)
        concurrent = check_batch(sources, ENV, jobs=4)
        assert [i.type_ for i in concurrent.items] == [
            i.type_ for i in serial.items
        ]
        assert [i.ok for i in concurrent.items] == [i.ok for i in serial.items]
        assert [d.index for d in concurrent.diagnostics] == [
            d.index for d in serial.diagnostics
        ]

    def test_concurrent_budget_isolated_per_worker(self):
        sources = ["head ids", BUSY, "runST $ argST", BUSY, "head ids"]
        result = check_batch(
            sources, ENV, budget=Budget(max_solver_steps=40), jobs=3
        )
        assert [item.ok for item in result.items] == [
            True, False, True, False, True,
        ]
        assert all(
            item.diagnostic.error_class == "BudgetExceededError"
            for item in result.items
            if not item.ok
        )

    def test_faults_force_serial(self):
        # Deterministic fault injection is meaningless across threads, so
        # a FaultPlan pins the run to one worker: jobs=4 behaves exactly
        # like the serial run, fault firings included.
        sources = ["head ids", "single id"]
        serial_plan = FaultPlan(fail_at_solver_step=1)
        serial = check_batch(sources, ENV, faults=serial_plan)
        pooled_plan = FaultPlan(fail_at_solver_step=1)
        pooled = check_batch(sources, ENV, faults=pooled_plan, jobs=4)
        assert [i.ok for i in pooled.items] == [i.ok for i in serial.items]
        assert pooled_plan.fired == serial_plan.fired

    def test_jobs_flag_on_cli(self, tmp_path, capsys):
        path = tmp_path / "exprs.gi"
        path.write_text("\n".join(WELL_TYPED * 3) + "\n")
        assert main(["batch", str(path), "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "9/9 passed, 0 failed" in out
        assert out.index("#0: ok") < out.index("#8: ok")


class _FlipAfter:
    """A fake cancel event that flips to set after N ``is_set`` polls —
    deterministic interruption without real signals or timing."""

    def __init__(self, after: int):
        self.after = after
        self.polls = 0

    def is_set(self) -> bool:
        self.polls += 1
        return self.polls > self.after


class TestBatchCancel:
    """Cooperative interruption: partial results, never orphaned work."""

    def test_serial_cancel_keeps_completed_prefix(self):
        sources = WELL_TYPED * 4  # 12 items
        result = check_batch(sources, ENV, cancel=_FlipAfter(5))
        assert result.interrupted
        assert len(result.items) == 5
        assert [item.index for item in result.items] == list(range(5))
        assert all(item.ok for item in result.items)
        assert not result.ok  # partial is not success
        assert result.to_dict()["interrupted"] is True

    def test_preset_cancel_checks_nothing(self):
        import threading

        cancel = threading.Event()
        cancel.set()
        result = check_batch(WELL_TYPED, ENV, cancel=cancel)
        assert result.interrupted and result.items == []

    def test_pool_cancel_preserves_order_of_survivors(self):
        result = check_batch(WELL_TYPED * 4, ENV, jobs=3, cancel=_FlipAfter(6))
        assert result.interrupted
        # Survivors keep submission order even though later indices may
        # have been dropped by whichever worker saw the flag first.
        indices = [item.index for item in result.items]
        assert indices == sorted(indices)
        assert 0 < len(result.items) < 12

    def test_uninterrupted_run_is_not_marked(self):
        result = check_batch(WELL_TYPED, ENV, cancel=_FlipAfter(999))
        assert not result.interrupted and result.ok

    def test_cli_sigint_emits_partial_json_and_130(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        path = tmp_path / "big.gi"
        path.write_text("\n".join([BUSY] * 4000) + "\n")
        env = dict(os.environ, PYTHONPATH="src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", str(path), "--json"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=os.getcwd(),
        )
        time.sleep(1.5)  # let it get through some prefix of the batch
        process.send_signal(signal.SIGINT)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 130, err.decode()
        payload = json.loads(out)
        assert payload["interrupted"] is True
        assert 0 < len(payload["items"]) < 4000
