"""The error surface: every rejection carries the right exception class
and an actionable message (the paper's §4 motivation includes better
type-error diagnosis)."""

import pytest

from repro.core import Inferencer
from repro.core.errors import (
    GIError,
    MissingInstanceError,
    OccursCheckError,
    ParseError,
    ScopeError,
    SkolemEscapeError,
    SortError,
    UnificationError,
)
from repro.syntax import parse_term, parse_type
from repro.typeclasses import standard_instances
from repro.evalsuite.figure2 import figure2_env

ENV = figure2_env()


def reject(source: str):
    with pytest.raises(GIError) as info:
        Inferencer(ENV).infer(parse_term(source))
    return info.value


class TestErrorClasses:
    def test_scope_error(self):
        error = reject("frobnicate")
        assert isinstance(error, ScopeError)
        assert "frobnicate" in str(error)

    def test_unification_error_names_both_types(self):
        error = reject("inc True")
        assert isinstance(error, UnificationError)
        assert "Int" in str(error) and "Bool" in str(error)

    def test_occurs_check(self):
        error = reject(r"\x -> x x")
        assert isinstance(error, (OccursCheckError, GIError))

    def test_sort_error_suggests_annotation(self):
        # C9: map poly (single id) fails with a sort error pointing at the
        # monomorphic variable that would need polymorphism.
        error = reject("map poly (single id)")
        assert isinstance(error, SortError)
        assert "annotation" in str(error)

    def test_skolem_escape(self):
        error = reject(r"\xs -> poly (head xs)")
        assert isinstance(error, SkolemEscapeError)
        assert "escape" in str(error)

    def test_invariance_message(self):
        # E1: k h lst — the Forall-vs-arrow mismatch explains invariance.
        error = reject("k h lst")
        assert isinstance(error, UnificationError)
        assert "invariant" in str(error)

    def test_missing_instance_names_constraint(self):
        env = ENV.extended(
            "eq", parse_type("forall a. Eq a => a -> a -> Bool")
        )
        with pytest.raises(MissingInstanceError) as info:
            Inferencer(env, instances=standard_instances()).infer(
                parse_term("eq not not")
            )
        assert "Eq (Bool -> Bool)" in str(info.value)

    def test_parse_error_position(self):
        with pytest.raises(ParseError) as info:
            parse_term("let x = in x")
        assert info.value.line == 1

    def test_all_errors_are_gi_errors(self):
        for source in ("missing", "inc True", r"\x -> x x", "k h lst"):
            with pytest.raises(GIError):
                Inferencer(ENV).infer(parse_term(source))


class TestErrorsDoNotPoisonState:
    def test_inferencer_reusable_after_failure(self):
        gi = Inferencer(ENV)
        with pytest.raises(GIError):
            gi.infer(parse_term("inc True"))
        assert str(gi.infer(parse_term("inc 1")).type_) == "Int"
