"""Basic inference behaviour: literals, lambdas, lets, annotations,
errors.  The Figure 2 corpus has its own module (test_figure2)."""

import pytest

from repro.core import (
    Environment,
    GIError,
    Inferencer,
    InferOptions,
    infer,
)
from repro.core.errors import (
    AnnotationNeededError,
    OccursCheckError,
    ScopeError,
    SkolemEscapeError,
    SortError,
    UnificationError,
)
from repro.core.types import INT, alpha_equal, rename_canonical
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import figure2_env


@pytest.fixture(scope="module")
def env():
    return figure2_env()


@pytest.fixture(scope="module")
def gi(env):
    return Inferencer(env)


def typed(gi, source: str) -> str:
    return str(gi.infer(parse_term(source)).type_)


def assert_type(gi, source: str, expected: str) -> None:
    got = gi.infer(parse_term(source)).type_
    want = rename_canonical(parse_type(expected))
    assert alpha_equal(got, want), f"{source}: got {got}, want {want}"


class TestBasics:
    def test_literal(self, gi):
        assert typed(gi, "42") == "Int"
        assert typed(gi, "True") == "Bool"
        assert typed(gi, "'c'") == "Char"

    def test_identity_lambda(self, gi):
        assert_type(gi, r"\x -> x", "forall a. a -> a")

    def test_const_lambda(self, gi):
        assert_type(gi, r"\x y -> x", "forall a b. a -> b -> a")

    def test_unbound_variable(self, gi):
        with pytest.raises(ScopeError):
            gi.infer(parse_term("missing"))

    def test_simple_application(self, gi):
        assert_type(gi, "inc 1", "Int")

    def test_too_many_arguments(self, gi):
        with pytest.raises(UnificationError):
            gi.infer(parse_term("inc 1 2"))

    def test_argument_mismatch(self, gi):
        with pytest.raises(UnificationError):
            gi.infer(parse_term("inc True"))

    def test_occurs_check(self, gi):
        with pytest.raises((OccursCheckError, GIError)):
            gi.infer(parse_term(r"\x -> x x"))

    def test_higher_order(self, gi):
        assert_type(gi, r"\f -> f 1", "forall a. (Int -> a) -> a")

    def test_deferred_instantiation(self, gi):
        # head ids True: the second instantiation of (head ids) is
        # deferred until the constraint solver knows its type (§4.1).
        assert_type(gi, "head ids True", "Bool")

    def test_nested_application_chain(self, gi):
        assert_type(gi, "inc (inc (inc 0))", "Int")

    def test_accepts_helper(self, gi):
        assert gi.accepts(parse_term("inc 1"))
        assert not gi.accepts(parse_term("inc True"))


class TestLambdaRule:
    """Section 2.3: un-annotated binders are fully monomorphic."""

    def test_polymorphic_use_rejected(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term(r"\f -> (f 1, f True)"))

    def test_annotated_binder_accepted(self, gi):
        assert_type(
            gi,
            r"\(f :: forall a. a -> a) -> (f 1, f True)",
            "(forall a. a -> a) -> (Int, Bool)",
        )

    def test_x_x_with_annotation(self, gi):
        assert_type(
            gi,
            r"\(x :: forall a. a -> a) -> x x",
            "forall b. (forall a. a -> a) -> b -> b",
        )

    def test_return_type_needs_annotation_for_poly(self, gi):
        # λ(x :: ∀a.a→a). x x has type (∀a.a→a) → b → b; to get the
        # polymorphic return type the body must be annotated (§2.3).
        assert_type(
            gi,
            r"\(x :: forall a. a -> a) -> (x x :: forall a. a -> a)",
            "(forall a. a -> a) -> (forall a. a -> a)",
        )

    def test_binder_cannot_become_polymorphic(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term(r"\xs -> poly (head xs)"))


class TestLet:
    def test_let_no_generalisation(self, gi):
        # Section 3.5: let does not generalise; using the binder at two
        # types fails without an annotation.
        assert not gi.accepts(parse_term(r"let f = \x -> x in (f 1, f True)"))

    def test_let_single_use(self, gi):
        assert_type(gi, r"let f = \x -> x in f 1", "Int")

    def test_let_of_bare_variable_instantiates(self, gi):
        # A bare variable on the right-hand side is a nullary application
        # and instantiates fully monomorphically, so the binder is *not*
        # polymorphic (the paper's Let puts "the type obtained from typing
        # e1" in the environment; generalisation needs an annotation).
        assert not gi.accepts(parse_term("let f = id in (f 1, f True)"))
        assert_type(
            gi,
            "let f = (id :: forall a. a -> a) in (f 1, f True)",
            "(Int, Bool)",
        )

    def test_let_preserves_polymorphic_bound_type(self, gi):
        # When the right-hand side's type is itself polymorphic under a
        # constructor, the binder keeps it without any annotation.
        assert_type(gi, "let xs = cons id ids in head xs", "forall a. a -> a")

    def test_let_generalisation_via_annotation(self, gi):
        assert_type(
            gi,
            r"let f = (\x -> x :: forall a. a -> a) in (f 1, f True)",
            "(Int, Bool)",
        )

    def test_let_impredicative_bound(self, gi):
        assert_type(gi, "let xs = id : ids in head xs", "forall a. a -> a")

    def test_let_shadowing(self, gi):
        assert_type(gi, "let inc = not in inc True", "Bool")


class TestAnnotations:
    def test_annotation_changes_result(self, gi):
        assert_type(gi, "single id", "forall a. [a -> a]")
        assert_type(gi, "(single id :: [forall a. a -> a])", "[forall a. a -> a]")

    def test_annotation_must_hold(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term("(inc :: Bool -> Bool)"))

    def test_annotation_cannot_over_generalise(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term(r"(\x -> inc x :: forall a. a -> a)"))

    def test_skolem_escape_reported(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term(r"\y -> (\x -> y :: forall a. a -> a)"))

    def test_nested_annotations(self, gi):
        assert_type(
            gi,
            "((single id :: [forall a. a -> a]) :: [forall b. b -> b])",
            "[forall a. a -> a]",
        )

    def test_check_entry_point(self, gi):
        result = gi.check(
            parse_term(r"\x -> x"), parse_type("forall a. a -> a")
        )
        assert str(result.type_) == "forall a. a -> a"

    def test_quantifier_order_in_annotations(self, gi, env):
        # §2.4: nested quantifier order is compared by equality.
        gi2 = Inferencer(
            env.extended_many(
                {
                    "gq": parse_type("[forall a b. a -> b -> b] -> Int"),
                    "xsq": parse_type("[forall b a. a -> b -> b]"),
                }
            )
        )
        assert not gi2.accepts(parse_term("gq xsq"))

    def test_top_level_quantifier_order_is_flexible(self, gi, env):
        # ...but top-level quantifiers go through subsumption.
        gi2 = Inferencer(
            env.extended_many(
                {
                    "fq": parse_type("(forall a b. a -> b -> b) -> Int"),
                    "xq": parse_type("forall b a. a -> b -> b"),
                }
            )
        )
        assert gi2.accepts(parse_term("fq xq"))


class TestEnvironment:
    def test_custom_environment(self):
        env = Environment({"x": INT})
        assert str(infer(parse_term("x"), env).type_) == "Int"

    def test_empty_environment(self):
        assert str(infer(parse_term(r"\x -> x")).type_) == "forall a. a -> a"

    def test_result_exposes_constraints(self, gi):
        result = gi.infer(parse_term("head ids"))
        assert result.constraints
        assert result.evidence is not None


class TestOptions:
    def test_vargen_ablation(self, env):
        base = Inferencer(env)
        no_vargen = Inferencer(env, options=InferOptions(use_vargen=False))
        term = parse_term("choose [] ids")
        assert base.accepts(term)
        assert not no_vargen.accepts(term)

    def test_nary_ablation(self, env):
        # cons id ids (C5) needs both arguments considered together: the
        # binary decomposition commits ((:) id) too early and fails.
        base = Inferencer(env)
        binary = Inferencer(env, options=InferOptions(nary_apps=False))
        term = parse_term("cons id ids")
        assert base.accepts(term)
        assert not binary.accepts(term)

    def test_binary_mode_still_handles_hm(self, env):
        binary = Inferencer(env, options=InferOptions(nary_apps=False))
        assert binary.accepts(parse_term("inc (head (single 1))"))

    def test_no_generalize(self, env):
        lax = Inferencer(env, options=InferOptions(generalize=False))
        result = lax.infer(parse_term(r"\x -> x"))
        from repro.core.types import fuv

        assert fuv(result.raw_type)
