"""Tests for the guardedness classification ``▷`` (Figures 4–5) — the
Instantiation Rule of Section 2.1 made executable."""

from repro.core.classify import Bit, classified_binders, classify, classify_argument
from repro.core.sorts import Sort
from repro.core.types import INT, TVar, forall, fun, list_of
from repro.syntax import parse_type

A, B, C = TVar("a"), TVar("b"), TVar("c")
GEN, STAR = Bit.GEN, Bit.STAR


def binder_sorts(source: str, sort: Sort, bits) -> dict:
    return dict(classified_binders(parse_type(source), sort, bits))


class TestClassifyArgument:
    def test_naked_variable_is_t(self):
        assert classify_argument(A) == {"a": Sort.T}

    def test_guarded_under_list_is_u(self):
        assert classify_argument(list_of(A)) == {"a": Sort.U}

    def test_guarded_under_arrow_is_u(self):
        # The function arrow is an ordinary constructor for guardedness.
        assert classify_argument(fun(A, B)) == {"a": Sort.U, "b": Sort.U}

    def test_forall_strips_binders(self):
        assert classify_argument(forall(["a"], fun(A, B))) == {"b": Sort.U}

    def test_no_variables(self):
        assert classify_argument(INT) == {}


class TestClassify:
    def test_result_only_gets_s(self):
        # single :: ∀a. a → [a], one argument: a naked in arg ⇒ t.
        assert binder_sorts("forall a. a -> [a]", Sort.M, [GEN]) == {"a": Sort.T}

    def test_map_both_guarded(self):
        sorts = binder_sorts(
            "forall p q. (p -> q) -> [p] -> [q]", Sort.M, [GEN, GEN]
        )
        assert sorts == {"p": Sort.U, "q": Sort.U}

    def test_partial_application_limits_guardedness(self):
        # ((:) id): only one argument given, so a is only naked (arg 1).
        sorts = binder_sorts("forall a. a -> [a] -> [a]", Sort.M, [GEN])
        assert sorts == {"a": Sort.T}

    def test_full_application_enables_guardedness(self):
        sorts = binder_sorts("forall a. a -> [a] -> [a]", Sort.M, [GEN, GEN])
        assert sorts == {"a": Sort.U}

    def test_nullary_is_fully_monomorphic(self):
        # A lone variable instantiates fully monomorphically (Section 2.2).
        assert binder_sorts("forall a. a -> a", Sort.M, []) == {"a": Sort.M}

    def test_nullary_annotated_is_unrestricted(self):
        # ...unless annotated: AnnApp classifies the result at sort u.
        assert binder_sorts("forall a. a -> a", Sort.U, []) == {"a": Sort.U}

    def test_choose_one_arg(self):
        assert binder_sorts("forall a. a -> a -> a", Sort.M, [GEN]) == {"a": Sort.T}

    def test_star_resets_naked_occurrences(self):
        # choose [] []: both arguments ⋆ ⇒ a stays fully monomorphic.
        assert binder_sorts("forall a. a -> a -> a", Sort.M, [STAR, STAR]) == {
            "a": Sort.M
        }

    def test_star_plus_gen_keeps_t(self):
        # choose [] ids: the • argument justifies top-level-monomorphism.
        assert binder_sorts("forall a. a -> a -> a", Sort.M, [STAR, GEN]) == {
            "a": Sort.T
        }

    def test_star_keeps_guarded_occurrences(self):
        # map head (single ids): q occurs only under the ⋆ argument's
        # arrow and in the result, and must still admit polymorphism (C10).
        sorts = binder_sorts(
            "forall p q. (p -> q) -> [p] -> [q]", Sort.M, [STAR, GEN]
        )
        assert sorts == {"p": Sort.U, "q": Sort.U}

    def test_join_takes_most_permissive(self):
        # a naked in arg1, guarded in arg2 ⇒ u wins.
        sorts = binder_sorts("forall a. a -> [a] -> Int", Sort.M, [GEN, GEN])
        assert sorts == {"a": Sort.U}

    def test_too_many_arguments_maps_to_m(self):
        # id applied to two arguments: classification survives, the arrow
        # unification reports the error later.
        sorts = binder_sorts("forall a. a -> a", Sort.M, [GEN, GEN])
        assert sorts == {"a": Sort.T}

    def test_nested_forall_in_argument(self):
        sorts = binder_sorts(
            "forall v. (forall s. ST s v) -> v", Sort.M, [GEN]
        )
        assert sorts == {"v": Sort.U}

    def test_classify_ignores_uvar_heads(self):
        from repro.core.sorts import Sort as S
        from repro.core.types import UVar

        assert classify(UVar("x", S.U), S.M, [GEN]) == {}
