"""One minimal trigger per public GIError subclass.

Each test asserts on the *class* of the rejection, not just its message,
so downstream tooling (the batch driver's ``error_class`` field, editor
integrations) can rely on the taxonomy staying stable.
"""

import pytest

from repro.core import Inferencer, InferOptions
from repro.core.constraints import Inst
from repro.core.errors import (
    AnnotationNeededError,
    GIError,
    MissingInstanceError,
    OccursCheckError,
    ScopeError,
    SkolemEscapeError,
    SortError,
    StuckConstraintError,
    UnificationError,
)
from repro.core.names import NameSupply
from repro.core.solver import Solver
from repro.core.sorts import Sort
from repro.core.types import INT
from repro.syntax import parse_term, parse_type
from repro.typeclasses import standard_instances
from repro.evalsuite.figure2 import figure2_env

ENV = figure2_env().extended_many(
    {"eq": parse_type("forall a. Eq a => a -> a -> Bool")}
)


def reject(source: str, **kwargs):
    with pytest.raises(GIError) as info:
        Inferencer(ENV, **kwargs).infer(parse_term(source))
    return info.value


class TestTaxonomy:
    def test_unification_error(self):
        error = reject("inc True")
        assert type(error) is UnificationError

    def test_occurs_check_error(self):
        error = reject(r"\x -> x x")
        assert type(error) is OccursCheckError
        assert isinstance(error, UnificationError)  # a refinement, not a sibling

    def test_sort_error(self):
        error = reject("map poly (single id)")  # Figure 2 row C9
        assert type(error) is SortError
        assert error.sort is Sort.M

    def test_skolem_escape_error(self):
        error = reject(r"\xs -> poly (head xs)")  # Figure 2 row B2
        assert type(error) is SkolemEscapeError

    def test_stuck_constraint_error(self):
        # No surface program leaves a non-class constraint stuck — the
        # solver defaults blocked unrestricted variables (Section 4.3.2).
        # With defaulting disabled the same one-constraint program must
        # fail deterministically instead.
        solver = Solver(NameSupply("u"), defaulting=False)
        blocked = solver.unifier.fresh(Sort.U, 0)
        with pytest.raises(StuckConstraintError) as info:
            solver.solve([Inst(blocked, Sort.M, (), (), INT, None)])
        assert info.value.constraints

    def test_scope_error(self):
        error = reject("frobnicate")
        assert type(error) is ScopeError
        assert error.name == "frobnicate"

    def test_annotation_needed_error(self):
        # An ambiguous residual constraint: `Eq` on a type variable that
        # the inferred type (Int) never mentions, so no caller can ever
        # discharge it.
        error = reject(
            r"let f = \x -> eq x x in 1", instances=standard_instances()
        )
        assert type(error) is AnnotationNeededError
        assert "annotation" in str(error)

    def test_missing_instance_error(self):
        error = reject("eq not not", instances=standard_instances())
        assert type(error) is MissingInstanceError
        assert error.constraint.class_name == "Eq"

    def test_every_class_is_a_gi_error(self):
        for subclass in (
            UnificationError,
            OccursCheckError,
            SortError,
            SkolemEscapeError,
            StuckConstraintError,
            ScopeError,
            AnnotationNeededError,
            MissingInstanceError,
        ):
            assert issubclass(subclass, GIError)


class TestModuleTaxonomy:
    """The module layer's additions to the taxonomy."""

    def test_cyclic_binding_error(self):
        from repro.core.errors import CyclicBindingError, TypeError_
        from repro.modules import ModuleEngine

        result = ModuleEngine(ENV).check_source("f = \\x -> g x\ng = \\x -> f x\n")
        diagnostic = result.reports[0].diagnostic
        assert diagnostic.error_class == "CyclicBindingError"
        error = CyclicBindingError(("f", "g"), ("f", "g"))
        assert isinstance(error, TypeError_)  # a type error, not a parse error
        assert error.group == ("f", "g")
        assert "requires a type signature on every member" in str(error)

    def test_duplicate_binding_error(self):
        from repro.core.errors import DuplicateBindingError
        from repro.modules import parse_module

        with pytest.raises(DuplicateBindingError) as info:
            parse_module("x = 1\nx = 2\n")
        error = info.value
        assert isinstance(error, GIError)
        assert (error.name, error.kind) == ("x", "binding")
        assert (error.line, error.first_line) == (2, 1)

    def test_both_classify_in_module_json(self):
        from repro.modules import ModuleEngine

        result = ModuleEngine(ENV).check_source("loop = \\x -> loop x\n")
        payload = result.to_dict()
        assert (
            payload["bindings"][0]["diagnostic"]["error_class"]
            == "CyclicBindingError"
        )
