"""Tests for the Appendix B type-class extension."""

import pytest

from repro.core import Inferencer
from repro.core.errors import GIError, MissingInstanceError
from repro.core.types import Pred, alpha_equal, rename_canonical
from repro.syntax import parse_term, parse_type
from repro.typeclasses import ClassTable, standard_instances
from repro.evalsuite.figure2 import figure2_env


@pytest.fixture(scope="module")
def env():
    return figure2_env().extended_many(
        {
            "eq": parse_type("forall a. Eq a => a -> a -> Bool"),
            "cmp": parse_type("forall a. Ord a => a -> a -> Bool"),
            "showIt": parse_type("forall a. Show a => a -> String"),
            "nub": parse_type("forall a. Eq a => [a] -> [a]"),
        }
    )


@pytest.fixture(scope="module")
def gi(env):
    return Inferencer(env, instances=standard_instances())


class TestInstanceResolution:
    def test_ground_instance(self, gi):
        assert str(gi.infer(parse_term("eq 1 2")).type_) == "Bool"

    def test_missing_ground_instance(self, gi):
        with pytest.raises(MissingInstanceError):
            gi.infer(parse_term("eq not not"))

    def test_recursive_instance(self, gi):
        assert str(gi.infer(parse_term("eq [[1]] [[2]]")).type_) == "Bool"

    def test_pair_instance(self, gi):
        assert str(gi.infer(parse_term("eq (1, True) (2, False)")).type_) == "Bool"

    def test_instance_context_failure_propagates(self, gi):
        # Eq [a] requires Eq a; Eq (Bool -> Bool) has no instance.
        with pytest.raises(MissingInstanceError):
            gi.infer(parse_term("eq [not] [not]"))


class TestQualifiedInference:
    def test_residual_constraint_generalised(self, gi):
        result = gi.infer(parse_term(r"\x -> eq x x"))
        assert str(result.type_) == "forall a. Eq a => a -> Bool"
        assert result.context and result.context[0].class_name == "Eq"

    def test_multiple_residuals(self, gi):
        result = gi.infer(parse_term(r"\x -> pair (eq x x) (showIt x)"))
        classes = sorted(p.class_name for p in result.type_.context)
        assert classes == ["Eq", "Show"]

    def test_residual_through_list(self, gi):
        result = gi.infer(parse_term(r"\xs -> nub (tail xs)"))
        assert str(result.type_) == "forall a. Eq a => [a] -> [a]"


class TestGivens:
    def test_signature_given_discharges(self, gi):
        result = gi.infer(
            parse_term(r"(\x -> eq x x :: forall a. Eq a => a -> Bool)")
        )
        assert str(result.type_) == "forall a. Eq a => a -> Bool"

    def test_given_with_superset(self, gi):
        # An unused given is fine.
        result = gi.infer(
            parse_term(r"(\x -> eq x x :: forall a. (Eq a, Show a) => a -> Bool)")
        )
        assert len(result.type_.context) == 2

    def test_missing_given_fails(self, gi):
        with pytest.raises(GIError):
            gi.infer(parse_term(r"(\x -> eq x x :: forall a. Show a => a -> Bool)"))

    def test_qualified_function_in_env_used_at_instance(self, gi):
        assert str(gi.infer(parse_term("nub [1, 2, 1]")).type_) == "[Int]"


class TestInteractionWithGuardedness:
    def test_impredicative_with_classes(self, env):
        # A class-constrained function over a polymorphic list: the
        # guardedness machinery is unaffected by the context.
        env2 = env.extended(
            "eqLen", parse_type("forall p. Eq Int => [p] -> [p] -> Bool")
        )
        gi = Inferencer(env2, instances=standard_instances())
        assert str(gi.infer(parse_term("eqLen ids ids")).type_) == "Bool"

    def test_qualified_annotation_with_impredicativity(self, env):
        gi = Inferencer(env, instances=standard_instances())
        result = gi.infer(
            parse_term("(single id :: [forall a. a -> a])")
        )
        assert str(result.type_) == "[forall a. a -> a]"


class TestClassTable:
    def test_declare_and_instance(self):
        table = ClassTable().declare("Num").instance("Num Int")
        env = figure2_env().extended(
            "double", parse_type("forall a. Num a => a -> a")
        )
        gi = Inferencer(env, instances=table.env())
        assert str(gi.infer(parse_term("double 3")).type_) == "Int"
        with pytest.raises(MissingInstanceError):
            gi.infer(parse_term("double True"))

    def test_instance_with_given(self):
        table = (
            ClassTable()
            .declare("Semigroup")
            .instance("Semigroup Int")
            .instance("Semigroup [a]", given=["Semigroup a"])
        )
        env = figure2_env().extended(
            "combine", parse_type("forall a. Semigroup a => a -> a -> a")
        )
        gi = Inferencer(env, instances=table.env())
        assert str(gi.infer(parse_term("combine [1] [2]")).type_) == "[Int]"

    def test_bad_predicate_rejected(self):
        with pytest.raises(ValueError):
            ClassTable().instance("Int")

    def test_standard_instances_cover_builtins(self):
        instances = standard_instances()
        from repro.core.constraints import ClassC
        from repro.core.types import BOOL, INT

        assert instances.match(ClassC("Eq", (INT,))) == []
        assert instances.match(ClassC("Ord", (BOOL,))) == []
        assert instances.match(ClassC("Eq", (parse_type("Float"),))) is None
