"""Compatibility shim: the strategies now live in the installable package.

``repro.conformance.strategies`` is the canonical home (so the CLI fuzz
generator and non-pytest tools can import them); this module re-exports
everything so existing ``from tests.strategies import ...`` imports keep
working.
"""

from repro.conformance.strategies import (  # noqa: F401
    CON_NAMES,
    TVAR_NAMES,
    UVAR_NAMES,
    VAR_POOL,
    closed_polytypes,
    hm_terms,
    monotypes,
    polytypes,
)

__all__ = [
    "CON_NAMES",
    "TVAR_NAMES",
    "UVAR_NAMES",
    "VAR_POOL",
    "closed_polytypes",
    "hm_terms",
    "monotypes",
    "polytypes",
]
