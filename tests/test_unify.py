"""Tests for sort- and level-aware unification (the equality rules of
Figure 8 plus float/promotion of Figure 10)."""

import pytest
from hypothesis import given

from repro.core.errors import (
    OccursCheckError,
    SkolemEscapeError,
    SortError,
    UnificationError,
)
from repro.core.sorts import Sort
from repro.core.types import (
    BOOL,
    INT,
    Forall,
    TCon,
    TVar,
    UVar,
    alpha_equal,
    forall,
    fun,
    fuv,
    list_of,
)
from repro.core.unify import Unifier

from tests.strategies import monotypes, polytypes

A, B = TVar("a"), TVar("b")
ID = forall(["a"], fun(A, A))


def uvar(name: str, sort: Sort = Sort.U, level: int = 0) -> UVar:
    return UVar(name, sort, level)


class TestStructural:
    def test_eqrefl(self):
        unifier = Unifier()
        unifier.unify(INT, INT)
        assert not unifier.subst

    def test_eqmono_decomposes(self):
        unifier = Unifier()
        alpha, beta = uvar("x"), uvar("y")
        unifier.unify(fun(alpha, beta), fun(INT, BOOL))
        assert unifier.zonk(alpha) == INT
        assert unifier.zonk(beta) == BOOL

    def test_constructor_mismatch(self):
        with pytest.raises(UnificationError):
            Unifier().unify(INT, BOOL)

    def test_arity_mismatch(self):
        with pytest.raises(UnificationError):
            Unifier().unify(TCon("T", (INT,)), TCon("T", (INT, BOOL)))

    def test_rigid_variables_only_match_themselves(self):
        Unifier().unify(A, A)
        with pytest.raises(UnificationError):
            Unifier().unify(A, B)
        with pytest.raises(UnificationError):
            Unifier().unify(A, INT)

    def test_occurs_check(self):
        unifier = Unifier()
        alpha = uvar("x")
        with pytest.raises(OccursCheckError):
            unifier.unify(alpha, list_of(alpha))

    def test_occurs_check_through_substitution(self):
        unifier = Unifier()
        alpha, beta = uvar("x"), uvar("y")
        unifier.unify(alpha, list_of(beta))
        with pytest.raises(OccursCheckError):
            unifier.unify(beta, alpha)

    @given(monotypes())
    def test_unify_with_self(self, type_):
        unifier = Unifier()
        unifier.unify(type_, type_)
        assert alpha_equal(unifier.zonk(type_), type_)

    @given(monotypes())
    def test_unify_fresh_var(self, type_):
        unifier = Unifier()
        alpha = uvar("fresh_probe")
        unifier.unify(alpha, type_)
        assert alpha_equal(unifier.zonk(alpha), unifier.zonk(type_))


class TestForallEquality:
    def test_alpha_equal_foralls(self):
        left = forall(["a"], fun(A, A))
        right = forall(["b"], fun(B, B))
        Unifier().unify(left, right)  # no exception

    def test_quantifier_order_matters(self):
        left = Forall(("a", "b"), fun(A, B, B))
        right = Forall(("b", "a"), fun(A, B, B))
        with pytest.raises(UnificationError):
            Unifier().unify(left, right)

    def test_forall_vs_mono_fails(self):
        with pytest.raises(UnificationError):
            Unifier().unify(ID, fun(INT, INT))

    def test_unification_inside_matched_bodies(self):
        # (∀b. b → α) ~ (∀b. b → Int) must solve α := Int.
        unifier = Unifier()
        alpha = uvar("x")
        left = Forall(("b",), fun(B, alpha))
        right = Forall(("b",), fun(B, INT))
        unifier.unify(left, right)
        assert unifier.zonk(alpha) == INT

    def test_bound_variable_cannot_leak(self):
        # (∀b. b → α) ~ (∀b. b → b) would need α := b — capture; reject.
        unifier = Unifier()
        alpha = uvar("x")
        with pytest.raises(SkolemEscapeError):
            unifier.unify(Forall(("b",), fun(B, alpha)), Forall(("b",), fun(B, B)))

    def test_binder_count_mismatch(self):
        left = Forall(("a",), fun(A, A))
        right = Forall(("a", "b"), fun(A, fun(B, B)))
        with pytest.raises(UnificationError):
            Unifier().unify(left, right)


class TestSorts:
    def test_eqvar_more_restrictive_wins(self):
        unifier = Unifier()
        alpha_u, beta_t = uvar("x", Sort.U), uvar("y", Sort.T)
        unifier.unify(alpha_u, beta_t)
        # The unrestricted variable must be the one substituted away.
        assert unifier.zonk(alpha_u) == beta_t
        assert unifier.zonk(beta_t) == beta_t

    def test_t_variable_accepts_nested_polymorphism(self):
        unifier = Unifier()
        beta = uvar("y", Sort.T)
        unifier.unify(beta, list_of(ID))
        assert unifier.zonk(beta) == list_of(ID)

    def test_t_variable_rejects_top_level_forall(self):
        unifier = Unifier()
        with pytest.raises(SortError):
            unifier.unify(uvar("y", Sort.T), ID)

    def test_m_variable_rejects_any_forall(self):
        unifier = Unifier()
        with pytest.raises(SortError):
            unifier.unify(uvar("z", Sort.M), list_of(ID))

    def test_eqfully_demotes(self):
        # αᵐ ~ [βᵘ] forces β to become fully monomorphic.
        unifier = Unifier()
        alpha_m, beta_u = uvar("x", Sort.M), uvar("y")
        unifier.unify(alpha_m, list_of(beta_u))
        demoted = unifier.zonk(beta_u)
        assert isinstance(demoted, UVar) and demoted.sort is Sort.M
        with pytest.raises(SortError):
            unifier.unify(beta_u, ID)

    def test_demoted_variable_still_unifies_mono(self):
        unifier = Unifier()
        alpha_m, beta_u = uvar("x", Sort.M), uvar("y")
        unifier.unify(alpha_m, list_of(beta_u))
        unifier.unify(beta_u, INT)
        assert unifier.zonk(alpha_m) == list_of(INT)


class TestLevels:
    def test_promotion(self):
        # Binding an outer variable to a type mentioning an inner variable
        # promotes the inner one (rule float).
        unifier = Unifier()
        outer = uvar("o", Sort.U, level=0)
        inner = uvar("i", Sort.U, level=3)
        unifier.unify(outer, list_of(inner))
        promoted = unifier.zonk(inner)
        assert isinstance(promoted, UVar)
        assert promoted.level == 0

    def test_skolem_escape(self):
        unifier = Unifier()
        skolem = unifier.fresh_skolem("s", level=2)
        outer = uvar("o", Sort.U, level=0)
        with pytest.raises(SkolemEscapeError):
            unifier.unify(outer, TVar(skolem))

    def test_inner_variable_may_hold_outer_skolem(self):
        unifier = Unifier()
        skolem = unifier.fresh_skolem("s", level=1)
        inner = uvar("i", Sort.U, level=2)
        unifier.unify(inner, TVar(skolem))
        assert unifier.zonk(inner) == TVar(skolem)

    def test_var_var_prefers_shallow(self):
        unifier = Unifier()
        shallow = uvar("s", Sort.U, level=0)
        deep = uvar("d", Sort.U, level=4)
        unifier.unify(shallow, deep)
        assert unifier.zonk(deep) == shallow

    def test_restrictive_but_deep_promotes(self):
        unifier = Unifier()
        outer_u = uvar("o", Sort.U, level=0)
        inner_t = uvar("i", Sort.T, level=3)
        unifier.unify(outer_u, inner_t)
        resolved = unifier.zonk(outer_u)
        assert isinstance(resolved, UVar)
        assert resolved.sort is Sort.T and resolved.level == 0


class TestZonk:
    def test_zonk_chases_chains(self):
        unifier = Unifier()
        a, b, c = uvar("a1"), uvar("b1"), uvar("c1")
        unifier.unify(a, b)
        unifier.unify(b, c)
        unifier.unify(c, INT)
        assert unifier.zonk(a) == INT

    def test_zonk_head_only_top(self):
        unifier = Unifier()
        a = uvar("a1")
        unifier.unify(a, list_of(uvar("b1")))
        assert isinstance(unifier.zonk_head(a), TCon)

    @given(polytypes())
    def test_zonk_empty_subst_is_identity(self, type_):
        assert Unifier().zonk(type_) == type_


class TestUnionFind:
    """The union-find substitution store behind the ``zonk``/``bind`` API."""

    def test_long_chain_compresses(self):
        unifier = Unifier()
        chain = [uvar(f"c{index}", Sort.M) for index in range(200)]
        for left, right in zip(chain, chain[1:]):
            unifier.unify(left, right)
        unifier.unify(chain[-1], INT)
        for variable in chain:
            assert unifier.zonk(variable) == INT
        # After one pass of queries every variable points (almost)
        # directly at its representative: re-resolving is flat.
        root = unifier._find(chain[0])
        assert all(unifier._find(v) == root for v in chain)

    def test_bindings_never_map_to_variables(self):
        # The var-var invariant: unions go through the parent table, so
        # no binding image is itself a unification variable.
        unifier = Unifier()
        a, b, c = uvar("a1"), uvar("b1"), uvar("c1")
        unifier.unify(a, b)
        unifier.unify(b, c)
        unifier.unify(a, list_of(INT))
        assert all(
            not isinstance(image, UVar) for image in unifier._binding.values()
        )

    def test_substitution_view_reports_all_entries(self):
        unifier = Unifier()
        a, b = uvar("a1"), uvar("b1")
        unifier.unify(a, b)
        unifier.unify(b, INT)
        assert len(unifier.subst) == 2
        # Entries keep the seed's link-at-a-time shape: ``a`` maps to its
        # representative, the representative to the bound type.
        assert a in unifier.subst and unifier.subst[b] == INT
        assert unifier.zonk(unifier.subst[a]) == INT

    def test_assign_unions_variables(self):
        unifier = Unifier()
        a, b = uvar("a1"), uvar("b1")
        unifier.assign(a, b)
        unifier.assign(b, INT)
        assert unifier.zonk(a) == INT

    def test_fuv_cache_consistent_after_binding(self):
        unifier = Unifier()
        a = uvar("a1")
        type_ = fun(a, list_of(a))
        assert list(unifier.fuv_of(type_)) == [a]
        unifier.unify(a, INT)
        # The cache keys on the *unzonked* node; zonking reflects the bind.
        assert fuv(unifier.zonk(type_)) == set()


class TestSkolemBookkeeping:
    def test_skolem_levels_do_not_leak_across_forall_unifications(self):
        # Regression: ``_unify_forall`` used to register the fresh
        # skolems of every quantifier unification in ``skolem_levels``
        # and never remove them, so a long-lived unifier grew without
        # bound (and stale entries could shadow later levels).
        unifier = Unifier()
        nested = forall(["a"], fun(A, forall(["b"], fun(B, A))))
        baseline = len(unifier.skolem_levels)
        for _ in range(50):
            unifier.unify(nested, nested)
        growth = len(unifier.skolem_levels) - baseline
        assert growth == 0, growth

    def test_skolem_levels_pruned_on_failure_too(self):
        unifier = Unifier()
        left = forall(["a"], fun(A, A))
        right = forall(["a"], fun(A, INT))
        baseline = len(unifier.skolem_levels)
        for _ in range(20):
            with pytest.raises(UnificationError):
                unifier.unify(left, right)
        assert len(unifier.skolem_levels) == baseline
