"""The serve daemon: protocol, sessions, containment, backpressure, drain.

Each test boots a real :class:`GIServer` on a Unix socket (TCP for the
one test that covers that path) via :func:`start_server_in_thread` and
talks to it with the library client — the same client the load
generator and the CI smoke job use, so every response read here is
schema-validated on the wire.
"""

import contextlib
import json
import socket as socket_module

import pytest

from repro.robustness import protocol
from repro.robustness.loadgen import deep_expr
from repro.robustness.server import ServeConfig, start_server_in_thread
from repro.robustness.serveclient import ServeClient


@contextlib.contextmanager
def serve(tmp_path, **overrides):
    """A running daemon on a Unix socket; yields (handle, socket path)."""
    sock = str(tmp_path / "gi.sock")
    overrides.setdefault("jobs", 2)
    config = ServeConfig(socket_path=sock, **overrides)
    with start_server_in_thread(config) as handle:
        yield handle, sock


def connect(sock: str) -> ServeClient:
    client = ServeClient(socket_path=sock)
    client.connect()
    return client


# ----------------------------------------------------------------------
# Protocol validators (pure)
# ----------------------------------------------------------------------


class TestRequestSchema:
    def _base(self, **fields):
        request = {"v": 1, "id": 1, "op": "infer", "expr": "head ids"}
        request.update(fields)
        return request

    def test_good_request_is_clean(self):
        assert protocol.validate_request(self._base()) == []

    def test_non_object_rejected(self):
        assert protocol.validate_request([1, 2]) != []
        assert protocol.validate_request("hi") != []

    def test_version_required_and_checked(self):
        assert any("v" in e for e in protocol.validate_request({"id": 1, "op": "stats"}))
        bad = self._base(v=99)
        assert any("version" in e for e in protocol.validate_request(bad))

    def test_id_required(self):
        request = self._base()
        del request["id"]
        assert any("`id`" in e for e in protocol.validate_request(request))

    def test_unknown_op_rejected(self):
        assert any(
            "unknown op" in e
            for e in protocol.validate_request({"v": 1, "id": 1, "op": "frobnicate"})
        )

    def test_missing_required_field(self):
        request = {"v": 1, "id": 1, "op": "check", "expr": "id"}
        assert any("signature" in e for e in protocol.validate_request(request))

    def test_module_source_xor_path(self):
        both = {"v": 1, "id": 1, "op": "module", "source": "x = 1", "path": "m.gi"}
        neither = {"v": 1, "id": 1, "op": "module"}
        assert any("exactly one" in e for e in protocol.validate_request(both))
        assert any("exactly one" in e for e in protocol.validate_request(neither))

    def test_unexpected_field_rejected(self):
        assert any(
            "unexpected" in e
            for e in protocol.validate_request(self._base(surprise=True))
        )

    def test_wrong_types_rejected(self):
        assert protocol.validate_request(self._base(expr=42)) != []
        assert protocol.validate_request(self._base(timeout_ms="soon")) != []

    def test_policy_field_validated(self):
        assert protocol.validate_request(self._base(policy="lazy-deep")) == []
        assert any(
            "unknown policy" in e
            for e in protocol.validate_request(self._base(policy="deep-lazy"))
        )
        assert protocol.validate_request(self._base(policy=7)) != []

    def test_nonpositive_budgets_rejected(self):
        assert any(
            "positive" in e
            for e in protocol.validate_request(self._base(timeout_ms=0))
        )
        assert any(
            "positive" in e
            for e in protocol.validate_request(self._base(max_steps=-5))
        )


class TestResponseSchema:
    def test_builders_satisfy_the_validator(self):
        assert protocol.validate_response(protocol.ok_response(1, "infer", type="Int")) == []
        assert (
            protocol.validate_response(
                protocol.error_response(2, "ParseError", "nope")
            )
            == []
        )
        shed = protocol.error_response(
            3,
            "Overloaded",
            "later",
            severity=protocol.SEVERITY_OVERLOADED,
            retry_after_ms=40,
        )
        assert protocol.validate_response(shed) == []
        assert protocol.validate_hello(protocol.hello("conn-1")) == []

    def test_overloaded_requires_retry_hint(self):
        shed = protocol.error_response(
            3, "Overloaded", "later", severity=protocol.SEVERITY_OVERLOADED
        )
        assert any("retry_after_ms" in e for e in protocol.validate_response(shed))

    def test_failure_requires_error_object(self):
        assert protocol.validate_response({"v": 1, "id": 1, "ok": False}) != []
        assert (
            protocol.validate_response(
                {"v": 1, "id": 1, "ok": False, "error": {"class": "X"}}
            )
            != []
        )

    def test_unknown_severity_rejected(self):
        response = protocol.error_response(1, "X", "m", severity="error")
        response["error"]["severity"] = "catastrophic"
        assert any("severity" in e for e in protocol.validate_response(response))

    def test_response_line_validator_covers_parse_errors(self):
        assert protocol.validate_response_line("{not json") != []
        good = protocol.encode(protocol.ok_response(1, "stats")).decode()
        assert protocol.validate_response_line(good) == []


# ----------------------------------------------------------------------
# The daemon itself
# ----------------------------------------------------------------------


class TestServeBasics:
    def test_hello_infer_check_stats(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                assert client.hello["proto"] == protocol.PROTO_VERSION
                reply = client.request("infer", expr="head ids")
                assert reply["ok"] and reply["type"] == "forall a. a -> a"
                assert reply["solver_steps"] > 0 and reply["ms"] >= 0
                reply = client.request(
                    "check", expr="single id", signature="[forall a. a -> a]"
                )
                assert reply["ok"]
                stats = client.request("stats")
                assert stats["ok"] and stats["requests"]["total"] >= 2
                assert stats["queue"]["limit"] == 64

    def test_type_errors_are_typed_not_fatal(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                for expr, expected in [
                    ("poly 1", "UnificationError"),
                    ("missing_name", "ScopeError"),
                    ("((", "ParseError"),
                ]:
                    reply = client.request("infer", expr=expr)
                    assert not reply["ok"]
                    assert reply["error"]["class"] == expected
                    assert reply["error"]["severity"] == "error"
                # The connection survived three failures.
                assert client.request("infer", expr="head ids")["ok"]

    def test_tcp_mode(self):
        config = ServeConfig(port=0, jobs=1)
        with start_server_in_thread(config) as handle:
            host, port = handle.address
            with ServeClient(host=host, port=port) as client:
                assert client.request("infer", expr="single id")["ok"]

    def test_explain_narrates(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                reply = client.request("explain", expr="app poly id")
                assert reply["ok"] and "classification" in reply["explanation"]

    def test_per_request_policy(self, tmp_path):
        flip = "let f = id in (f :: forall a. a -> a)"
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                # Default policy: eager instantiation, skolem escape.
                reply = client.request("infer", expr=flip)
                assert not reply["ok"]
                assert reply["error"]["class"] == "SkolemEscapeError"
                # Lazy instantiation flips the verdict for this request.
                reply = client.request("infer", expr=flip, policy="lazy-shallow")
                assert reply["ok"] and reply["type"] == "forall a. a -> a"
                # The override is per-request: the default is untouched.
                assert not client.request("infer", expr=flip)["ok"]
                reply = client.request(
                    "check", expr="k h lst", signature="Int -> Int -> Int"
                )
                assert not reply["ok"]

    def test_unknown_policy_is_a_schema_error(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                reply = client.request("infer", expr="id", policy="deepest")
                assert not reply["ok"]
                assert reply["error"]["severity"] == "error"
                assert "unknown policy" in reply["error"]["message"]
                # The connection survives the rejection.
                assert client.request("infer", expr="head ids")["ok"]

    def test_pipelined_requests_match_by_id(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                ids = [client.send("infer", expr="head ids") for _ in range(5)]
                replies = [client.wait_for(i) for i in reversed(ids)]
                assert all(r["ok"] for r in replies)
                assert [r["id"] for r in replies] == list(reversed(ids))


class TestSessions:
    MODULE = "five :: Int\nfive = 1\n"

    def test_connection_sessions_are_isolated(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as alice, connect(sock) as bob:
                assert alice.session != bob.session
                assert alice.request("module", source=self.MODULE)["ok"]
                assert alice.request("infer", expr="five")["type"] == "Int"
                # Bob's namespace never saw Alice's module.
                reply = bob.request("infer", expr="five")
                assert reply["error"]["class"] == "ScopeError"

    def test_named_sessions_are_shared(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as alice, connect(sock) as bob:
                assert alice.request(
                    "module", source=self.MODULE, session="team"
                )["ok"]
                assert (
                    bob.request("infer", expr="five", session="team")["type"] == "Int"
                )
                # ... but only inside the named session.
                assert not bob.request("infer", expr="five")["ok"]

    def test_module_failure_does_not_poison_the_session(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                reply = client.request("module", source="bad = missing_name\n")
                assert reply["ok"] is True  # module checked, with failures
                assert reply["failed"] == 1
                assert reply["diagnostics"][0]["error_class"] == "ScopeError"
                assert client.request("infer", expr="head ids")["ok"]

    def test_module_path_saves_sidecar_on_disconnect(self, tmp_path):
        module = tmp_path / "lib.gi"
        module.write_text("seven :: Int\nseven = 1\n", encoding="utf-8")
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                assert client.request("module", path=str(module))["ok"]
            # Disconnect persists the session's path-keyed caches.
            deadline = __import__("time").monotonic() + 5
            sidecar = tmp_path / "lib.gi.cache.json"
            while not sidecar.exists() and __import__("time").monotonic() < deadline:
                __import__("time").sleep(0.02)
            payload = json.loads(sidecar.read_text(encoding="utf-8"))
            assert "seven" in payload["entries"]

    def test_module_missing_path_is_an_io_error(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                reply = client.request("module", path=str(tmp_path / "nope.gi"))
                assert reply["error"]["class"] == "ModuleReadError"
                assert reply["error"]["phase"] == "io"


class TestContainment:
    def test_injected_faults_are_contained(self, tmp_path):
        with serve(tmp_path, allow_faults=True) as (handle, sock):
            with connect(sock) as client:
                for step in (1, 2, 3):
                    reply = client.request("infer", expr="head ids", fault_step=step)
                    assert not reply["ok"]
                    assert reply["error"]["severity"] == "internal"
                    assert reply["error"]["class"] == "InternalError"
                    assert "InjectedFaultError" in reply["error"]["message"]
                    assert "Traceback" in reply["error"]["traceback"]
                depth = client.request("infer", expr="head ids", fault_depth=1)
                assert depth["error"]["severity"] == "internal"
                # The server is fine.
                assert client.request("infer", expr="head ids")["ok"]
            assert handle.thread.is_alive()

    def test_faults_rejected_unless_enabled(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                reply = client.request("infer", expr="head ids", fault_step=1)
                assert reply["error"]["class"] == "ProtocolError"
                assert "allow-faults" in reply["error"]["message"]

    def test_malformed_json_gets_a_typed_reply(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                client.send_raw("this is not json\n")
                reply = client.wait_for(None)
                assert reply["error"]["class"] == "ProtocolError"
                assert client.request("infer", expr="head ids")["ok"]

    def test_oversized_line_is_shed_and_connection_closed(self, tmp_path):
        with serve(tmp_path, max_line_bytes=4096) as (handle, sock):
            with connect(sock) as client:
                client.send_raw(
                    json.dumps(
                        {"v": 1, "id": 9, "op": "infer", "expr": "x" * 10_000}
                    )
                    + "\n"
                )
                reply = client.wait_for(None)
                assert reply["error"]["class"] == "PayloadTooLarge"
                # The stream cannot be resynchronised; the server closes.
                with pytest.raises(ConnectionError):
                    client.request("infer", expr="head ids")
            # A fresh connection is unaffected.
            with connect(sock) as client:
                assert client.request("infer", expr="head ids")["ok"]

    def test_mid_request_disconnect_leaves_server_healthy(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            rude = connect(sock)
            rude.send("infer", expr=deep_expr(60))
            rude.close()
            with connect(sock) as client:
                assert client.request("infer", expr="head ids")["ok"]
            assert handle.thread.is_alive()

    def test_deadline_can_expire_in_the_queue(self, tmp_path):
        with serve(tmp_path, jobs=1) as (handle, sock):
            with connect(sock) as client:
                # Occupy the single worker, then race a 1ms-deadline
                # request behind it: its deadline burns in the queue.
                busy = client.send("infer", expr=deep_expr(150))
                doomed = client.send("infer", expr="head ids", timeout_ms=1)
                reply = client.wait_for(doomed)
                assert not reply["ok"]
                assert reply["error"]["class"] in (
                    "DeadlineExpired",  # expired waiting
                    "BudgetExceededError",  # admitted just before expiry
                )
                assert client.wait_for(busy)["ok"]

    def test_budget_ceilings_clamp_client_values(self, tmp_path):
        with serve(tmp_path, max_solver_steps=1_000) as (handle, sock):
            with connect(sock) as client:
                # A client may lower the ceiling but not raise it.
                reply = client.request(
                    "infer", expr=deep_expr(40), max_steps=5
                )
                assert reply["error"]["class"] == "BudgetExceededError"
                assert reply["error"]["severity"] == "error"


class TestBackpressure:
    def test_overload_sheds_typed_with_retry_hint(self, tmp_path):
        with serve(tmp_path, jobs=1, queue_limit=3) as (handle, sock):
            with connect(sock) as client:
                ids = [client.send("infer", expr=deep_expr(80)) for _ in range(20)]
                replies = [client.wait_for(i) for i in ids]
            statuses = [
                "ok" if r["ok"] else r["error"]["severity"] for r in replies
            ]
            shed = [r for r in replies if not r["ok"]]
            assert statuses.count("ok") >= 1
            assert len(shed) >= 1, "queue_limit=3 must shed under 20-deep burst"
            for reply in shed:
                assert reply["error"]["class"] == "Overloaded"
                assert isinstance(reply["retry_after_ms"], int)
                assert reply["retry_after_ms"] >= 5
            assert handle.server.counts["shed"] == len(shed)

    def test_accepted_latency_stays_bounded_under_overload(self, tmp_path):
        # The point of shedding: whatever the offered load, an *accepted*
        # request waits behind at most queue_limit others on `jobs`
        # workers — so its latency is bounded and the burst sheds rest.
        with serve(tmp_path, jobs=2, queue_limit=4) as (handle, sock):
            with connect(sock) as client:
                ids = [client.send("infer", expr=deep_expr(60)) for _ in range(40)]
                replies = [client.wait_for(i) for i in ids]
            served = [r for r in replies if r["ok"]]
            assert served and len(served) < 40
            worst_ms = max(r["ms"] for r in served)
            # Generous engineering bound: 4 queued × deep-spine service
            # time (~tens of ms) stays well under this; unbounded
            # queueing of all 40 would not.
            assert worst_ms < 5_000


class TestLifecycle:
    def test_shutdown_op_drains_cleanly(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                assert client.request("infer", expr="head ids")["ok"]
                reply = client.request("shutdown")
                assert reply["ok"] and reply["draining"] is True
            handle.thread.join(timeout=10)
            assert not handle.thread.is_alive()
            assert handle.server.exit_reason == "shutdown-op"
            # The socket file is gone after a clean drain.
            import os

            assert not os.path.exists(sock)

    def test_requests_during_drain_get_unavailable(self, tmp_path):
        with serve(tmp_path, jobs=1, drain_grace_s=2.0) as (handle, sock):
            with connect(sock) as client:
                busy = client.send("infer", expr=deep_expr(120))
                client.send("shutdown")
                late = client.send("infer", expr="head ids")
                seen = {}
                for _ in range(3):
                    reply = client._read_message()
                    seen[reply.get("id")] = reply
                assert seen[busy]["ok"], "in-flight work finishes during grace"
                assert seen[late]["error"]["severity"] == "unavailable"
                assert seen[late]["error"]["class"] == "ShuttingDown"
            handle.thread.join(timeout=10)
            assert not handle.thread.is_alive()

    def test_trace_file_is_schema_valid_and_flushed(self, tmp_path):
        from repro.observability import validate_line

        trace = tmp_path / "serve.jsonl"
        with serve(tmp_path, allow_faults=True, trace_path=str(trace)) as (
            handle,
            sock,
        ):
            with connect(sock) as client:
                client.request("infer", expr="head ids")
                client.request("infer", expr="head ids", fault_step=1)
                client.request("infer", expr="((")
        lines = [
            line
            for line in trace.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert lines, "trace must be flushed on drain"
        for line in lines:
            assert validate_line(line) == [], line
        events = [json.loads(line) for line in lines]
        names = {e.get("name") for e in events}
        assert "serve.request" in names and "serve.response" in names
        assert events[-1]["event"] == "metrics"

    def test_stop_is_idempotent(self, tmp_path):
        with serve(tmp_path) as (handle, sock):
            handle.stop()
            handle.stop()
            assert not handle.thread.is_alive()


class TestRetryHintSeams:
    """The latency-window seams of ``_retry_after_ms`` and ``stats``."""

    def test_retry_hint_sane_with_empty_latency_window(self, tmp_path):
        # Direct unit check first: no completed request has ever fed
        # ``_recent_ms``, so the estimate must fall back to the default
        # service time — never a ZeroDivisionError, never a 0ms hint
        # (which would tell clients to hammer the server in a tight loop).
        with serve(tmp_path, jobs=1, queue_limit=1) as (handle, sock):
            assert len(handle.server._recent_ms) == 0
            hint = handle.server._retry_after_ms()
            assert isinstance(hint, int) and 5 <= hint <= 5_000

    def test_overload_on_first_requests_after_boot(self, tmp_path):
        # End-to-end: overload the daemon before *any* request completes
        # (the very-first-requests-after-boot race).  Shed responses must
        # be typed Overloaded with a positive integer retry hint.
        with serve(tmp_path, jobs=1, queue_limit=1) as (handle, sock):
            with connect(sock) as client:
                ids = [client.send("infer", expr=deep_expr(100)) for _ in range(12)]
                replies = [client.wait_for(i) for i in ids]
            shed = [r for r in replies if not r["ok"]]
            assert shed, "queue_limit=1 must shed a 12-deep instant burst"
            for reply in shed:
                assert reply["error"]["class"] == "Overloaded"
                assert reply["error"]["severity"] == "overloaded"
                assert isinstance(reply["retry_after_ms"], int)
                assert reply["retry_after_ms"] >= 5

    def test_stats_mid_drain_is_answered(self, tmp_path):
        # ``stats`` is an observability op: it must keep answering while
        # the server drains (it is handled before the draining check),
        # with a well-typed payload reporting draining=True.
        with serve(tmp_path, jobs=1, drain_grace_s=2.0) as (handle, sock):
            with connect(sock) as client:
                busy = client.send("infer", expr=deep_expr(120))
                client.send("shutdown")
                stats_id = client.send("stats")
                seen = {}
                for _ in range(3):
                    reply = client._read_message()
                    seen[reply.get("id")] = reply
            stats = seen[stats_id]
            assert stats["ok"], "stats mid-drain must not be shed"
            assert stats["draining"] is True
            assert isinstance(stats["queue"]["pending"], int)
            assert seen[busy]["ok"]
            handle.thread.join(timeout=10)
            assert not handle.thread.is_alive()

    def test_stats_surfaces_intern_counters(self, tmp_path):
        # Satellite: the shared InternTable's hit/miss/full counters are
        # observable through the stats op, so capacity-full degradation
        # of a long-lived daemon is visible instead of silent.
        with serve(tmp_path) as (handle, sock):
            with connect(sock) as client:
                assert client.request("infer", expr="head ids")["ok"]
                stats = client.request("stats")
            intern = stats["intern"]
            assert intern["size"] == stats["intern_size"]
            assert set(intern) == {"size", "hits", "misses", "full_events"}
            assert intern["full_events"] == 0
            assert intern["misses"] >= 0 and intern["hits"] >= 0
