"""The counterexample corpus is a permanent regression suite: every
``.gi`` file under ``tests/corpus/`` re-runs the full oracle battery on
every test run, so a divergence the fuzzer once found can never silently
come back.  Files are written by ``repro fuzz --corpus`` (or by hand
when a fix lands) in the ``repro batch``-compatible format."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines import SYSTEMS
from repro.conformance import OracleContext, load_corpus, run_battery
from repro.conformance.oracles import PAIRWISE_IMPLICATIONS, _annotation_free
from repro.core.types import alpha_equal, rename_canonical
from repro.evalsuite.figure2 import figure2_env
from repro.robustness import read_batch_file

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)

ENV = figure2_env()


def expected_divergences(entry) -> set[str]:
    """Backend pairs a corpus file declares as legitimately divergent,
    from an ``-- expected-divergence: HM=>QuickLook, ...`` header."""
    raw = entry.metadata.get("expected-divergence", "")
    return {pair.strip() for pair in raw.split(",") if pair.strip()}


def test_corpus_exists_and_loads():
    assert CORPUS_DIR.is_dir()
    assert ENTRIES, "the checked-in corpus must not be empty"


def test_corpus_hygiene_every_file_parses():
    """``load_corpus`` silently skips comment-only files; the checked-in
    corpus must contain none — every ``.gi`` file carries a term."""
    on_disk = sorted(CORPUS_DIR.glob("*.gi"))
    assert [entry.path for entry in ENTRIES] == on_disk


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_corpus_hygiene_digest_matches_content(entry):
    """Filenames end in the sha1 digest of the canonical term (the
    ``counterexample_name`` convention), so a file whose term was edited
    without a rename — or a stale duplicate — fails loudly."""
    import hashlib

    digest = hashlib.sha1(str(entry.term).encode("utf-8")).hexdigest()[:12]
    assert entry.path.stem.endswith(f"-{digest}"), (
        f"{entry.path.name}: expected digest suffix -{digest} "
        f"for term `{entry.term}`"
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_corpus_hygiene_divergence_waivers_name_real_pairs(entry):
    """Every ``-- expected-divergence:`` header must name a registered
    ``Premise=>Conclusion`` pair from the implication matrix — a typo'd
    waiver would silently stop waiving."""
    known = {
        f"{premise}=>{conclusion}"
        for premise, conclusion, _level in PAIRWISE_IMPLICATIONS
    }
    for pair in expected_divergences(entry):
        assert pair in known, (
            f"{entry.path.name}: `{pair}` is not a registered implication "
            f"(known: {', '.join(sorted(known))})"
        )
        premise, _, conclusion = pair.partition("=>")
        assert premise in SYSTEMS and conclusion in SYSTEMS


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_corpus_case_passes_full_battery(entry):
    """The once-failing, now-fixed counterexample passes every oracle."""
    ctx = OracleContext(figure2_env())
    violation = run_battery(ctx, entry.term)
    assert violation is None, f"{entry.path.name}: {violation}"


def test_corpus_replays_through_batch_pipeline():
    """``repro batch tests/corpus`` sees exactly the corpus expressions."""
    sources = read_batch_file(str(CORPUS_DIR))
    assert sources == [entry.source for entry in ENTRIES]


def test_corpus_files_record_their_oracle():
    for entry in ENTRIES:
        assert "oracle" in entry.metadata, entry.path.name


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
@pytest.mark.parametrize("system_name", tuple(SYSTEMS))
def test_corpus_case_crashes_no_backend(system_name, entry):
    """Every backend must *decide* (or cleanly run out of budget on)
    every corpus term — no internal errors on past counterexamples."""
    outcome = SYSTEMS[system_name].run(entry.term, ENV)
    assert not outcome.crashed, (
        f"{entry.path.name}: {system_name} crashed: {outcome.detail}"
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_corpus_case_cross_backend_agreement(entry):
    """The pairwise implication matrix holds on every corpus term,
    except for pairs the file itself annotates as expected divergence.

    Deliberately stricter than ``oracle_differential``: the oracle skips
    type equality on annotated terms wholesale, while here each corpus
    file must name the diverging pair explicitly — a legitimate
    divergence is a recorded finding, not a silent pass."""
    waived = expected_divergences(entry)
    outcomes = {name: SYSTEMS[name].run(entry.term, ENV) for name in SYSTEMS}
    for premise, conclusion, level in PAIRWISE_IMPLICATIONS:
        label = f"{premise}=>{conclusion}"
        if label in waived:
            continue
        if premise in ("HM", "GI") and not _annotation_free(entry.term):
            continue
        first, second = outcomes[premise], outcomes[conclusion]
        if not first.accepted or not second.available:
            continue
        assert second.accepted, (
            f"{entry.path.name}: {label} violated — "
            f"{conclusion} rejected: {second.detail}"
        )
        if level == "type":
            assert alpha_equal(
                rename_canonical(first.type_), rename_canonical(second.type_)
            ), (
                f"{entry.path.name}: {label} types diverge — "
                f"{first.type_} vs {second.type_}"
            )
