"""The counterexample corpus is a permanent regression suite: every
``.gi`` file under ``tests/corpus/`` re-runs the full oracle battery on
every test run, so a divergence the fuzzer once found can never silently
come back.  Files are written by ``repro fuzz --corpus`` (or by hand
when a fix lands) in the ``repro batch``-compatible format."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.conformance import OracleContext, load_corpus, run_battery
from repro.evalsuite.figure2 import figure2_env
from repro.robustness import read_batch_file

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_exists_and_loads():
    assert CORPUS_DIR.is_dir()
    assert ENTRIES, "the checked-in corpus must not be empty"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_corpus_case_passes_full_battery(entry):
    """The once-failing, now-fixed counterexample passes every oracle."""
    ctx = OracleContext(figure2_env())
    violation = run_battery(ctx, entry.term)
    assert violation is None, f"{entry.path.name}: {violation}"


def test_corpus_replays_through_batch_pipeline():
    """``repro batch tests/corpus`` sees exactly the corpus expressions."""
    sources = read_batch_file(str(CORPUS_DIR))
    assert sources == [entry.source for entry in ENTRIES]


def test_corpus_files_record_their_oracle():
    for entry in ENTRIES:
        assert "oracle" in entry.metadata, entry.path.name
