"""Tests for the lexer, parser, and pretty printer."""

import pytest
from hypothesis import given

from repro.core.errors import ParseError
from repro.core.terms import Ann, AnnLam, App, Case, CaseAlt, Lam, Let, Lit, Var, app
from repro.core.types import (
    BOOL,
    INT,
    Forall,
    Pred,
    TCon,
    TVar,
    forall,
    fun,
    list_of,
    tuple_of,
)
from repro.syntax import parse_term, parse_type, pretty_term, pretty_type, tokenize

from tests.strategies import hm_terms, polytypes


class TestLexer:
    def test_symbols(self):
        kinds = [t.kind for t in tokenize("\\x -> x :: [a]")]
        assert kinds == ["symbol", "ident", "symbol", "ident", "symbol",
                         "symbol", "ident", "symbol", "eof"]

    def test_comments_skipped(self):
        tokens = tokenize("x -- a comment\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]

    def test_positions(self):
        tokens = tokenize("x\n  y")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_char_literal(self):
        assert tokenize("'c'")[0].kind == "char"

    def test_string_literal(self):
        assert tokenize('"hello"')[0].text == "hello"

    def test_primes_in_identifiers(self):
        assert tokenize("auto'")[0].text == "auto'"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("№")


class TestTypeParser:
    A, B = TVar("a"), TVar("b")

    def test_arrow_right_assoc(self):
        assert parse_type("a -> b -> a") == fun(self.A, self.B, self.A)

    def test_parens(self):
        assert parse_type("(a -> b) -> a") == fun(fun(self.A, self.B), self.A)

    def test_forall(self):
        assert parse_type("forall a. a -> a") == forall(["a"], fun(self.A, self.A))

    def test_forall_to_the_right_of_arrow(self):
        parsed = parse_type("Int -> forall a. a -> a")
        assert parsed == fun(INT, forall(["a"], fun(self.A, self.A)))

    def test_list(self):
        assert parse_type("[forall a. a -> a]") == list_of(
            forall(["a"], fun(self.A, self.A))
        )

    def test_tuple(self):
        assert parse_type("(Int, Bool)") == tuple_of(INT, BOOL)

    def test_constructor_application(self):
        assert parse_type("ST s Int") == TCon("ST", (TVar("s"), INT))

    def test_unit(self):
        assert parse_type("()") == TCon("()")

    def test_context(self):
        parsed = parse_type("forall a. Eq a => a -> Bool")
        assert isinstance(parsed, Forall)
        assert parsed.context == (Pred("Eq", (self.A,)),)

    def test_multi_context(self):
        parsed = parse_type("forall a b. (Eq a, Ord b) => a -> b")
        assert len(parsed.context) == 2

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_type("Int Int ->")

    def test_empty_forall(self):
        with pytest.raises(ParseError):
            parse_type("forall . Int")


class TestTermParser:
    def test_application_flattens(self):
        assert parse_term("f x y") == App(Var("f"), (Var("x"), Var("y")))

    def test_parenthesised_application_also_flattens(self):
        # The parser maximises n-ary applications (Section 3.2).
        assert parse_term("(f x) y") == App(Var("f"), (Var("x"), Var("y")))

    def test_lambda_multi_binder(self):
        assert parse_term(r"\x y -> x") == Lam("x", Lam("y", Var("x")))

    def test_lambda_dot_syntax(self):
        assert parse_term(r"\x. x") == Lam("x", Var("x"))

    def test_annotated_lambda(self):
        parsed = parse_term(r"\(x :: forall a. a -> a) -> x")
        assert isinstance(parsed, AnnLam)

    def test_annotation(self):
        parsed = parse_term("(f x :: Int)")
        assert parsed == Ann(app(Var("f"), Var("x")), INT)

    def test_let(self):
        parsed = parse_term("let x = f y in x")
        assert parsed == Let("x", app(Var("f"), Var("y")), Var("x"))

    def test_case(self):
        parsed = parse_term("case m of { Just x -> x ; Nothing -> y }")
        assert parsed == Case(
            Var("m"),
            (CaseAlt("Just", ("x",), Var("x")), CaseAlt("Nothing", (), Var("y"))),
        )

    def test_list_sugar(self):
        assert parse_term("[]") == Var("nil")
        assert parse_term("[x]") == app(Var("cons"), Var("x"), Var("nil"))
        assert parse_term("[x, y]") == app(
            Var("cons"), Var("x"), app(Var("cons"), Var("y"), Var("nil"))
        )

    def test_cons_operator_right_assoc(self):
        assert parse_term("x : y : zs") == app(
            Var("cons"), Var("x"), app(Var("cons"), Var("y"), Var("zs"))
        )

    def test_append_operator(self):
        assert parse_term("xs ++ ys") == app(Var("append"), Var("xs"), Var("ys"))

    def test_dollar_is_ordinary(self):
        assert parse_term("f $ x") == app(Var("$"), Var("f"), Var("x"))

    def test_tuple_sugar(self):
        assert parse_term("(x, y)") == app(Var("pair"), Var("x"), Var("y"))

    def test_literals(self):
        assert parse_term("42") == Lit(42)
        assert parse_term("True") == Lit(True)
        assert parse_term("'c'") == Lit("c")

    def test_nested(self):
        parsed = parse_term(r"let f = \x -> x in (f 1, f True)")
        assert isinstance(parsed, Let)

    def test_missing_in(self):
        with pytest.raises(ParseError):
            parse_term("let x = 1")

    def test_empty_lambda(self):
        with pytest.raises(ParseError):
            parse_term(r"\ -> x")


class TestRoundTrip:
    @given(polytypes())
    def test_types_roundtrip(self, type_):
        assert parse_type(pretty_type(type_)) == type_

    def test_terms_roundtrip(self):
        sources = [
            "runST $ argST",
            r"\x y -> f (g x) y",
            "(single id :: [forall a. a -> a])",
            r"let go = \n -> plus n 1 in go 41",
            "case xs of { Cons y ys -> y ; Nil -> z }",
            r"\(f :: (forall a. a -> a) -> Int) -> f id",
        ]
        for source in sources:
            term = parse_term(source)
            assert parse_term(pretty_term(term)) == term

    @given(hm_terms())
    def test_generated_terms_roundtrip(self, term):
        assert parse_term(pretty_term(term)) == term


class TestErrorPositions:
    """Every ParseError carries the line/column of the offending token
    (the robustness satellite: positions flow from the lexer into the
    error, including across newlines)."""

    def _fail(self, source, parse=parse_term):
        with pytest.raises(ParseError) as info:
            parse(source)
        return info.value

    def test_malformed_term_reports_position(self):
        error = self._fail("inc )")
        assert (error.line, error.column) == (1, 5)
        assert "1:5" in str(error)

    def test_position_crosses_newlines(self):
        error = self._fail("head\n  [1,")
        assert error.line == 2
        assert error.column == 6

    def test_unterminated_string_position(self):
        error = self._fail('f\n "abc')
        assert (error.line, error.column) == (2, 2)

    def test_unexpected_character_position(self):
        error = self._fail("id ?")
        assert (error.line, error.column) == (1, 4)

    def test_missing_in_position(self):
        error = self._fail("let x = 1")
        assert (error.line, error.column) == (1, 10)

    def test_type_error_position(self):
        error = self._fail("forall .", parse=parse_type)
        assert error.line == 1
        assert error.column is not None

    def test_empty_input_position(self):
        error = self._fail("")
        assert (error.line, error.column) == (1, 1)

    def test_multiline_type_position(self):
        error = self._fail("[Int ->\n  ]", parse=parse_type)
        assert error.line == 2
