"""Direct tests of the constraint solver (Figure 8/10/14 rules)."""

import pytest

from repro.core.constraints import ClassC, Eq, Gen, Inst, Quant, Scheme
from repro.core.classify import Bit
from repro.core.errors import (
    MissingInstanceError,
    StuckConstraintError,
    UnificationError,
)
from repro.core.names import NameSupply
from repro.core.solver import InstanceEnv, Solver
from repro.core.sorts import Sort
from repro.core.types import (
    BOOL,
    INT,
    TVar,
    UVar,
    forall,
    fun,
    list_of,
)


def make_solver(instances=None):
    return Solver(NameSupply("s"), instances=instances)


A = TVar("a")
ID = forall(["a"], fun(A, A))


class TestEqualities:
    def test_simple_equality(self):
        solver = make_solver()
        alpha = UVar("x", Sort.U)
        solver.solve([Eq(alpha, INT)])
        assert solver.unifier.zonk(alpha) == INT

    def test_inconsistent_equality(self):
        with pytest.raises(UnificationError):
            make_solver().solve([Eq(INT, BOOL)])

    def test_order_insensitive(self):
        # eqsubst propagates regardless of constraint order.
        for order in (0, 1):
            solver = make_solver()
            alpha, beta = UVar("x", Sort.U), UVar("y", Sort.U)
            constraints = [Eq(alpha, list_of(beta)), Eq(beta, INT)]
            if order:
                constraints.reverse()
            solver.solve(constraints)
            assert solver.unifier.zonk(alpha) == list_of(INT)


class TestInstantiation:
    def test_inst_epsilon_unifies(self):
        # instϵ: µ ⩽ϵ ϵ;η becomes µ ~ η.
        solver = make_solver()
        beta = UVar("r", Sort.T)
        solver.solve([Inst(INT, Sort.M, (), (), beta)])
        assert solver.unifier.zonk(beta) == INT

    def test_inst_forall_freshens_monomorphically_when_nullary(self):
        # A lone variable instantiates fully monomorphically (§3.3).
        solver = make_solver()
        beta = UVar("r", Sort.T)
        solver.solve([Inst(ID, Sort.M, (), (), beta)])
        resolved = solver.unifier.zonk(beta)
        from repro.core.types import fuv

        variables = fuv(resolved)
        assert variables and all(v.sort is Sort.M for v in variables)

    def test_inst_arrow_consumes_arguments(self):
        solver = make_solver()
        arg = UVar("a1", Sort.U)
        res = UVar("r", Sort.T)
        solver.solve([Inst(fun(INT, BOOL), Sort.M, (Bit.GEN,), (arg,), res)])
        assert solver.unifier.zonk(arg) == INT
        assert solver.unifier.zonk(res) == BOOL

    def test_inst_guarded_variable_goes_unrestricted(self):
        # head-like type: the binder under [·] may take a polytype.
        head_type = forall(["p"], fun(list_of(TVar("p")), TVar("p")))
        solver = make_solver()
        arg = UVar("a1", Sort.U)
        res = UVar("r", Sort.T)
        solver.solve(
            [
                Inst(head_type, Sort.M, (Bit.GEN,), (arg,), res),
                Eq(arg, list_of(ID)),
            ]
        )
        # The deferred result instantiation re-instantiates ∀a.a→a fully
        # monomorphically (α → α); top-level generalisation would then
        # recover ∀a. a → a.
        resolved = solver.unifier.zonk(res)
        from repro.core.types import arrow_parts, is_arrow

        assert is_arrow(resolved)
        left, right = arrow_parts(resolved)
        assert left == right and isinstance(left, UVar)

    def test_deferred_inst_wakes_up(self):
        # βᵘ ⩽ϵ ϵ;r is stuck until β is bound to a polytype.
        solver = make_solver()
        beta = UVar("b", Sort.U)
        res = UVar("r", Sort.T)
        solver.solve([Inst(beta, Sort.M, (), (), res), Eq(beta, ID)])
        from repro.core.types import fuv, is_fully_monomorphic

        resolved = solver.unifier.zonk(res)
        # ∀a.a→a instantiated fully monomorphically: α → α.
        assert is_fully_monomorphic(resolved)

    def test_defaulting_resolves_unconstrained(self):
        # A generalisation against an unconstrained unrestricted variable
        # defaults rather than getting stuck.
        solver = make_solver()
        rhs = UVar("x", Sort.U)
        scheme = Scheme((), (), INT)
        solver.solve([Gen(scheme, rhs)])
        assert solver.unifier.zonk(rhs) == INT


class TestGeneralisation:
    def test_release_against_mono(self):
        solver = make_solver()
        rhs = UVar("x", Sort.T)
        captured = UVar("c", Sort.M)
        scheme = Scheme((captured,), (Eq(captured, INT),), fun(captured, captured))
        solver.solve([Gen(scheme, rhs)])
        assert solver.unifier.zonk(rhs) == fun(INT, INT)

    def test_skolemise_against_poly(self):
        # (⨅{α}. ⊤ ⇒ α → α) ⪯ ∀p. p → p  must solve α := p.
        solver = make_solver()
        captured = UVar("c", Sort.M)
        scheme = Scheme((captured,), (), fun(captured, captured))
        solver.solve([Gen(scheme, ID)])  # no exception

    def test_skolem_escape_detected(self):
        # (⨅{}. ⊤ ⇒ αᵐ) ⪯ ∀p. p → p: α is outer, p escapes.
        solver = make_solver()
        outer = UVar("o", Sort.M)
        scheme = Scheme((), (), fun(outer, outer))
        from repro.core.errors import SkolemEscapeError

        with pytest.raises(SkolemEscapeError):
            solver.solve([Gen(scheme, ID), Eq(outer, outer)])


class TestQuantification:
    def test_skolems_are_rigid_inside(self):
        solver = make_solver()
        quant = Quant(("sk",), (), (), (Eq(TVar("sk"), INT),))
        with pytest.raises(UnificationError):
            solver.solve([quant])

    def test_existentials_are_refreshed_deeper(self):
        solver = make_solver()
        ex = UVar("e", Sort.U)
        quant = Quant(("sk",), (ex,), (), (Eq(ex, TVar("sk")),))
        solver.solve([quant])  # inner variable may hold the inner skolem

    def test_outer_variable_cannot_hold_skolem(self):
        from repro.core.errors import SkolemEscapeError

        solver = make_solver()
        outer = UVar("o", Sort.U)
        quant = Quant(("sk",), (), (), (Eq(outer, TVar("sk")),))
        with pytest.raises(SkolemEscapeError):
            solver.solve([quant])

    def test_float_with_promotion(self):
        # An outer variable equated (inside the scope) with a type built
        # from inner existentials: the inner ones are promoted out.
        solver = make_solver()
        outer = UVar("o", Sort.U)
        inner = UVar("i", Sort.U)
        quant = Quant(("sk",), (inner,), (), (Eq(outer, list_of(inner)),))
        solver.solve([quant])
        resolved = solver.unifier.zonk(outer)
        assert isinstance(resolved, type(list_of(INT)))
        element = resolved.args[0]
        assert isinstance(element, UVar) and element.level == 0


class TestClassConstraints:
    def test_instance_discharge(self):
        instances = InstanceEnv()
        instances.add_instance(ClassC("Eq", (INT,)))
        solver = make_solver(instances)
        solver.solve([ClassC("Eq", (INT,))])

    def test_missing_instance(self):
        with pytest.raises(MissingInstanceError):
            make_solver().solve([ClassC("Eq", (BOOL,))])

    def test_instance_with_context(self):
        instances = InstanceEnv()
        instances.add_instance(ClassC("Eq", (INT,)))
        instances.add_instance(
            ClassC("Eq", (list_of(TVar("a")),)),
            context=(ClassC("Eq", (TVar("a"),)),),
            variables=("a",),
        )
        solver = make_solver(instances)
        solver.solve([ClassC("Eq", (list_of(list_of(INT)),))])
        with pytest.raises(MissingInstanceError):
            make_solver(instances).solve([ClassC("Eq", (list_of(BOOL),))])

    def test_given_discharges_wanted(self):
        solver = make_solver()
        quant = Quant(
            ("sk",),
            (),
            (ClassC("Eq", (TVar("sk"),)),),
            (ClassC("Eq", (TVar("sk"),)),),
        )
        solver.solve([quant])

    def test_residual_class_constraint_reported(self):
        solver = make_solver()
        alpha = UVar("x", Sort.M)
        residual = solver.solve([ClassC("Eq", (alpha,))])
        assert len(residual) == 1
