-- oracle: differential:internal-error
-- seed: fuzz-derived (deep-chain stress family)
-- mode: well-typed
-- fixed-by: iterative zonk/subst/occurs/alpha-equality in repro.core
-- detail: a 400-argument application builds a ~400-deep arrow spine; the
-- detail: recursive zonk/subst/alpha-equal walkers used to blow Python's
-- detail: recursion limit during generalisation (contained as an
-- detail: InternalError, phase=generalize) instead of typing the term.
\f -> f 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1
