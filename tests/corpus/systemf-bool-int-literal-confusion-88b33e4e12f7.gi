-- oracle: systemf
-- seed: 42
-- case: 115
-- mode: arbitrary
-- fixed-by: type-aware Lit equality (Lit(True) == Lit(1) under Python's True == 1)
-- detail: any term-keyed cache that had seen `1` would hand its Int result
-- detail: to `True` (and vice versa), so the elaborated System F term for
-- detail: `True` erased and evaluated to 1. The battery asserts the source
-- detail: and the erased elaboration still evaluate to the same value.
True
