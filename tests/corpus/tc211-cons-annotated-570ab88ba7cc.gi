-- oracle: ghc-tc211
-- seed: ported (GHC testsuite tc211.hs, `((:) id ids) :: [forall a. a -> a]`)
-- mode: well-typed
-- detail: an annotated cons cell with a polymorphic element type: the
-- detail: result annotation guards the impredicative instantiation of
-- detail: (:) at `forall a. a -> a`.  GI, HMF-N and Quick Look accept;
-- detail: plain HMF, HM, RankN and FreezeML reject (rank-1 or
-- detail: predicative instantiation only), all vacuously under the
-- detail: implication matrix since no premise system accepts.
(id : ids :: [forall a. a -> a])
