-- oracle: ghc-tc211
-- seed: ported (GHC testsuite tc211.hs, `[\x -> x, id] :: [forall a. a -> a]`)
-- mode: well-typed
-- detail: a bare lambda consed onto ids under a result annotation: the
-- detail: lambda is checked against the guarded `forall a. a -> a`
-- detail: element type (the Lambda Rule with an expected sigma), the
-- detail: same shape as tc211's list-literal of eta-unexpanded
-- detail: identities.  GI, HMF-N and Quick Look accept.
((\x -> x) : ids :: [forall a. a -> a])
