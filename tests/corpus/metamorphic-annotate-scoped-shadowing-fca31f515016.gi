-- oracle: metamorphic:annotate
-- seed: 42
-- case: 302
-- mode: well-typed
-- fixed-by: subst_type_vars_in_term shadowing under nested forall annotations
-- detail: an inner `forall a` annotation must shadow an outer scoped `a`
-- detail: for the expression it annotates; before the fix the outer skolem
-- detail: leaked into the open annotation `(id :: a -> a)` and re-annotating
-- detail: the term with its own inferred type failed with a skolem clash.
(((id :: a -> a) :: forall a. a -> a) :: forall a. a -> a)
