"""Property tests for the instantiation-policy axis (satellite S2).

Two invariants over the conformance fuzzer's term strategies:

* the policy lives entirely in the *inference* layer: parsing and
  pretty-printing never see it, so ``parse(pretty(t)) == t`` holds for
  every term and the printed form infers identically to the original
  under **every** policy point;
* inference under any policy is a function of the term: re-running the
  same term twice gives the same outcome (acceptance and α-equal type),
  i.e. the policy threading introduced no hidden state.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.conformance.strategies import hm_terms
from repro.core.errors import GIError
from repro.core.infer import Inferencer, InferOptions
from repro.core.policy import POLICIES
from repro.core.types import alpha_equal, rename_canonical
from repro.evalsuite.figure2 import figure2_env
from repro.syntax import parse_term

ENV = figure2_env()


def _outcome(term, policy):
    """(accepted, canonical type or error class) under one policy."""
    options = InferOptions(policy=policy)
    try:
        result = Inferencer(figure2_env(), options=options).infer(term)
    except GIError as error:
        return (False, type(error).__name__)
    except RecursionError:
        return (False, "RecursionError")
    return (True, rename_canonical(result.type_))


def _same(a, b) -> bool:
    if a[0] != b[0]:
        return False
    if isinstance(a[1], str) or isinstance(b[1], str):
        return a[1] == b[1]
    return alpha_equal(a[1], b[1])


@settings(max_examples=60, deadline=None)
@given(hm_terms())
def test_pretty_parse_roundtrip_is_policy_blind(term):
    reparsed = parse_term(str(term))
    assert reparsed == term
    for policy in POLICIES:
        assert _same(_outcome(term, policy), _outcome(reparsed, policy)), (
            f"policy {policy} distinguishes a term from its printed form"
        )


@settings(max_examples=40, deadline=None)
@given(hm_terms())
def test_inference_under_each_policy_is_deterministic(term):
    for policy in POLICIES:
        assert _same(_outcome(term, policy), _outcome(term, policy)), (
            f"policy {policy} is not deterministic on `{term}`"
        )
