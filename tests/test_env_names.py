"""Unit tests for environments, name supplies, and the prelude."""

import pytest

from repro.core.env import DataCon, Environment
from repro.core.errors import ScopeError
from repro.core.names import NameSupply, letters
from repro.core.sorts import Sort
from repro.core.types import INT, TVar, UVar, forall, fun, list_of
from repro.evalsuite.prelude import figure1_env


class TestEnvironment:
    def test_lookup(self):
        env = Environment({"x": INT})
        assert env.lookup("x") == INT

    def test_lookup_missing(self):
        with pytest.raises(ScopeError):
            Environment().lookup("x")

    def test_extended_is_persistent(self):
        env = Environment({"x": INT})
        extended = env.extended("y", INT)
        assert "y" in extended
        assert "y" not in env

    def test_extended_many(self):
        env = Environment().extended_many({"a": INT, "b": INT})
        assert "a" in env and "b" in env

    def test_shadowing(self):
        env = Environment({"x": INT}).extended("x", list_of(INT))
        assert env.lookup("x") == list_of(INT)

    def test_free_type_vars(self):
        env = Environment({"x": fun(TVar("a"), TVar("b"))})
        assert env.free_type_vars() == {"a", "b"}

    def test_free_unification_vars(self):
        alpha = UVar("u", Sort.M)
        env = Environment({"x": alpha})
        assert env.free_unification_vars() == {alpha}

    def test_is_closed(self):
        assert Environment({"x": forall(["a"], TVar("a"))}).is_closed()
        assert not Environment({"x": TVar("a")}).is_closed()

    def test_datacons(self):
        con = DataCon("K", ("a",), (), (TVar("a"),), "T")
        env = Environment().with_datacon(con)
        assert env.lookup_datacon("K") is con
        with pytest.raises(ScopeError):
            env.lookup_datacon("Missing")

    def test_len_and_items(self):
        env = Environment({"x": INT, "y": INT})
        assert len(env) == 2
        assert dict(env.items()) == {"x": INT, "y": INT}


class TestNameSupply:
    def test_fresh_unique(self):
        supply = NameSupply("t")
        names = [supply.fresh() for _ in range(100)]
        assert len(set(names)) == 100

    def test_hint(self):
        supply = NameSupply()
        assert supply.fresh("foo").startswith("foo")

    def test_hint_strips_digits(self):
        supply = NameSupply()
        name = supply.fresh("a12")
        assert name.startswith("a") and not name.startswith("a12") or name[1].isdigit()

    def test_fresh_many(self):
        supply = NameSupply()
        assert len(supply.fresh_many(5)) == 5

    def test_letters(self):
        stream = letters()
        first = [next(stream) for _ in range(28)]
        assert first[0] == "a" and first[25] == "z"
        assert first[26] == "a1"


class TestPrelude:
    def test_every_figure1_binding_present(self):
        env = figure1_env()
        for name in (
            "head", "tail", "nil", "cons", "single", "append", "length",
            "id", "inc", "choose", "poly", "auto", "auto'", "ids", "map",
            "app", "revapp", "flip", "runST", "argST",
        ):
            assert name in env, name

    def test_figure2_helpers_present(self):
        env = figure1_env()
        for name in ("f", "g", "h", "k", "lst", "r", "g23"):
            assert name in env, name

    def test_prelude_is_closed(self):
        assert figure1_env().is_closed()

    def test_signatures_match_figure1(self):
        env = figure1_env()
        assert str(env.lookup("head")) == "forall p. [p] -> p"
        assert str(env.lookup("ids")) == "[forall a. a -> a]"
        assert str(env.lookup("runST")) == "forall v. (forall s. ST s v) -> v"
        assert str(env.lookup("poly")) == "(forall a. a -> a) -> (Int, Bool)"
        assert (
            str(env.lookup("flip"))
            == "forall a b c. (a -> b -> c) -> b -> a -> c"
        )
