"""The headline reproduction: every row of Figure 2, measured.

GI must agree with the paper's ✓/No verdict on all 32 examples, *and*
infer exactly the type the paper states wherever one is given.  The
annotated repairs the paper suggests for rejected rows must be accepted.
"""

import pytest

from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.types import alpha_equal, rename_canonical
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import BY_KEY, FIGURE2, REPAIRS, figure2_env


@pytest.fixture(scope="module")
def gi():
    return Inferencer(figure2_env())


@pytest.mark.parametrize("example", FIGURE2, ids=lambda ex: ex.key)
def test_gi_verdict_matches_paper(gi, example):
    accepted = gi.accepts(example.term)
    assert accepted == example.expected["GI"], (
        f"{example.key} ({example.source}): GI "
        f"{'accepted' if accepted else 'rejected'}, paper says "
        f"{'✓' if example.expected['GI'] else 'No'}"
    )


@pytest.mark.parametrize(
    "example",
    [ex for ex in FIGURE2 if ex.gi_type is not None],
    ids=lambda ex: ex.key,
)
def test_gi_inferred_type_matches_paper(gi, example):
    inferred = gi.infer(example.term).type_
    stated = rename_canonical(parse_type(example.gi_type))
    assert alpha_equal(inferred, stated), (
        f"{example.key}: inferred `{inferred}`, paper states `{stated}`"
    )


@pytest.mark.parametrize("key", sorted(REPAIRS), ids=str)
def test_paper_suggested_repairs_work(gi, key):
    assert not gi.accepts(BY_KEY[key].term), f"{key} unexpectedly accepted"
    assert gi.accepts(parse_term(REPAIRS[key])), (
        f"{key}: the paper's suggested annotation/η-expansion "
        f"`{REPAIRS[key]}` was rejected"
    )


class TestSpecificRows:
    """Spot checks on the behaviours the paper calls out in prose."""

    def test_dollar_needs_no_special_case(self, gi):
        # runST $ e works through the *ordinary* type of ($) — the
        # motivating example of Section 2.4.
        assert str(gi.infer(parse_term("runST $ argST")).type_) == "Int"

    def test_redefined_dollar_still_works(self):
        # ...and therefore a user-redefined ($) behaves identically
        # (GHC's special-case rule is non-modular; GI's is not).
        env = figure2_env().extended(
            "apply'", parse_type("forall a b. (a -> b) -> a -> b")
        )
        assert Inferencer(env).accepts(parse_term("apply' runST argST"))

    def test_e1_requires_eta_expansion(self, gi):
        assert not gi.accepts(BY_KEY["E1"].term)
        assert gi.accepts(BY_KEY["E2"].term)

    def test_b1_requires_annotation_in_every_system(self, gi):
        assert not gi.accepts(BY_KEY["B1"].term)

    def test_a7_and_a8_asymmetry(self, gi):
        # A7 (choose id auto) is accepted, A8 (choose id auto') is not:
        # auto' has a top-level quantifier that the ⋆ argument id cannot
        # match without an annotation.
        assert gi.accepts(BY_KEY["A7"].term)
        assert not gi.accepts(BY_KEY["A8"].term)

    def test_partial_application_c5(self, gi):
        # ((:) id) alone can only instantiate top-level-monomorphically;
        # with ids supplied the instantiation becomes polymorphic.
        partial = gi.infer(parse_term("cons id")).type_
        assert alpha_equal(
            partial,
            rename_canonical(parse_type("forall a. [a -> a] -> [a -> a]")),
        )
        full = gi.infer(parse_term("cons id ids")).type_
        assert str(full) == "[forall a. a -> a]"

    def test_expected_matrix_is_complete(self):
        assert len(FIGURE2) == 32
        groups = {ex.group for ex in FIGURE2}
        assert groups == {"A", "B", "C", "D", "E"}
        for example in FIGURE2:
            assert set(example.expected) == {"GI", "MLF", "HMF", "FPH", "HML"}
