"""Tests for the Section 5 compatibility study (simulated Stackage)."""

import pytest

from repro.evalsuite.stackage import (
    _ETA_TEMPLATES,
    _FRIENDLY_TEMPLATES,
    _PLAIN_TEMPLATES,
    _SYB_TEMPLATES,
    Analyzer,
    Declaration,
    Verdict,
    eta_expand_var_args,
    generate_corpus,
    push_annotation_inward,
    run_study,
    study_env,
)
from repro.core.terms import Ann, Lam, Var, app
from repro.syntax import parse_term, parse_type


@pytest.fixture(scope="module")
def analyzer():
    return Analyzer(study_env())


class TestTemplates:
    """Every template category must behave as the corpus intends —
    measured with the real GI checker, not assumed."""

    @pytest.mark.parametrize("name,sig,body", _PLAIN_TEMPLATES + _FRIENDLY_TEMPLATES)
    def test_accepted_unchanged(self, analyzer, name, sig, body):
        accepted, repair = analyzer.check_declaration(Declaration(name, sig, body))
        assert accepted and repair is None

    @pytest.mark.parametrize("name,sig,body", _ETA_TEMPLATES)
    def test_eta_templates_need_eta(self, analyzer, name, sig, body):
        accepted, repair = analyzer.check_declaration(Declaration(name, sig, body))
        assert not accepted and repair == "eta"

    @pytest.mark.parametrize("name,sig,body", _SYB_TEMPLATES)
    def test_syb_templates_use_special_case(self, analyzer, name, sig, body):
        accepted, repair = analyzer.check_declaration(Declaration(name, sig, body))
        assert not accepted and repair == "special-case"


class TestRepairs:
    def test_eta_expand_var_args(self):
        term = parse_term("flip h")
        expanded = eta_expand_var_args(term)
        assert expanded == app(
            Var("flip"), Lam("eta_x", app(Var("h"), Var("eta_x")))
        )

    def test_eta_expansion_is_identity_without_apps(self):
        term = parse_term(r"\x -> x")
        assert eta_expand_var_args(term) == term

    def test_push_annotation_inward(self):
        term = parse_term(r"\x y -> y")
        signature = parse_type("forall a. a -> (forall b. b -> b)")
        pushed = push_annotation_inward(term, signature)
        assert pushed is not None
        assert isinstance(pushed, Ann)

    def test_push_annotation_requires_nested_forall(self):
        term = parse_term(r"\x -> x")
        assert push_annotation_inward(term, parse_type("Int -> Int")) is None


class TestCorpus:
    def test_deterministic(self):
        first = generate_corpus(seed=7, size=50)
        second = generate_corpus(seed=7, size=50)
        assert [p.name for p in first] == [p.name for p in second]
        assert [len(p.declarations) for p in first] == [
            len(p.declarations) for p in second
        ]

    def test_seed_changes_corpus(self):
        first = generate_corpus(seed=1, size=50)
        second = generate_corpus(seed=2, size=50)
        assert [len(p.declarations) for p in first] != [
            len(p.declarations) for p in second
        ]

    def test_rank_proportion(self):
        corpus = generate_corpus(seed=3, size=400)
        rank = sum(1 for p in corpus if p.uses_rankntypes)
        assert rank == round(400 * 609 / 2400)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(seed=2018, size=240)

    def test_totals_consistent(self, study):
        assert study.total == 240
        assert study.ok + study.eta + study.larger == study.rankntypes

    def test_shape_matches_paper(self, study):
        # The paper's shape: most RankNTypes packages compile unchanged;
        # a ~12% minority needs η-expansions; TH needs more; a couple of
        # unrelated failures.
        assert study.ok > 0.8 * study.rankntypes
        assert 0 < study.eta < 0.2 * study.rankntypes
        assert study.larger == 1
        assert study.unrelated == 2

    def test_every_repair_is_an_eta_expansion(self, study):
        for report in study.reports:
            if report.verdict is Verdict.ETA:
                assert report.repaired, report.package.name

    def test_non_rank_packages_all_pass(self, study):
        for report in study.reports:
            if not report.package.uses_rankntypes and not report.package.broken_build:
                assert report.verdict is Verdict.OK

    def test_rows_render(self, study):
        rows = study.rows()
        assert rows[0][1] == 240
        assert len(rows) == 6
