"""Editable installs on offline machines without the `wheel` package need
the legacy setup.py path; all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
