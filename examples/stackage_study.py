#!/usr/bin/env python3
"""Rerun the Section 5 compatibility study (simulated Stackage corpus).

Run:  python examples/stackage_study.py [size]

``size`` defaults to 600 for a quick run; the benchmark harness runs the
full 2,400-package corpus.  The analysis is real — every declaration goes
through the GI checker, failures are mechanically repaired and
re-checked — only the corpus itself is synthetic (see DESIGN.md).
"""

import sys

from repro.evalsuite.report import render_table
from repro.evalsuite.stackage import Verdict, run_study


def main(size: int = 600) -> None:
    print(f"checking {size} synthetic packages with the GI checker ...")
    study = run_study(seed=2018, size=size)

    print()
    print(render_table(
        ["quantity", "count"],
        study.rows(),
        title=f"Section 5 study at corpus size {size} "
        f"(paper: 2400 / 609 / 75 / 1 / 2)",
    ))

    eta_reports = [r for r in study.reports if r.verdict is Verdict.ETA]
    print("\nexample η-expansion repairs (declaration -> repaired):")
    shown = 0
    for report in eta_reports:
        for name in report.repaired:
            print(f"  {report.package.name}: {name}")
            shown += 1
            if shown >= 5:
                break
        if shown >= 5:
            break

    larger = [r for r in study.reports if r.verdict is Verdict.LARGER]
    for report in larger:
        generated = [d.name for d in report.package.declarations if d.generated]
        print(
            f"\nTemplate-Haskell-style package {report.package.name} needs "
            f"larger changes: generated declarations {generated} cannot be "
            f"η-expanded at source level."
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
