#!/usr/bin/env python3
"""The ``runST $ e`` story (Section 2.4) — and full elaboration.

GHC ships a built-in special typing rule for ``f $ x`` just to make
``runST $ do {...}`` typecheck; the paper's point is that guarded
impredicativity handles it through the *ordinary* type of ``($)``, so a
user-redefined operator behaves identically.

This example takes the program through the whole pipeline:
parse → infer → elaborate to System F → independently re-check →
erase → execute.  The same programs also ship as a module file,
``runst_pipeline.gi``, checked through the module layer at the end
(equivalent to ``python -m repro module examples/runst_pipeline.gi``).

Run:  python examples/runst_pipeline.py
"""

from pathlib import Path

from repro import Inferencer
from repro.evalsuite.figure2 import figure2_env
from repro.interp import evaluate, prelude_env
from repro.modules import ModuleEngine, render_module_text
from repro.syntax import parse_term, parse_type, pretty_term
from repro.systemf import elaborate_result, erase, pretty_fterm, typecheck


def main() -> None:
    env = figure2_env().extended(
        # A user-defined ($): same type, no compiler magic.
        "applyTo", parse_type("forall a b. (a -> b) -> a -> b")
    )
    gi = Inferencer(env)

    programs = [
        "runST $ argST",
        "applyTo runST argST",          # user-defined ($) works identically
        "app runST argST",              # D4
        "revapp argST runST",           # D5
    ]

    print("=== runST through ($): parse -> infer -> System F -> run ===\n")
    for source in programs:
        term = parse_term(source)
        result = gi.infer(term)
        fterm = elaborate_result(result)
        ftype = typecheck(fterm, env)

        print(f"  source      : {pretty_term(term)}")
        print(f"  inferred    : {result.type_}")
        print(f"  System F    : {pretty_fterm(fterm)}")
        print(f"  F checks at : {ftype}")

        runtime = prelude_env().extended(
            "applyTo", lambda f: lambda x: f(x)
        )
        value = evaluate(erase(fterm), runtime)
        original = evaluate(term, runtime)
        assert value == original
        print(f"  runs to     : {value}")
        print()

    # The impredicative instantiation is visible in the elaborated term:
    # ($) @(∀s. ST s Int) @Int runST argST — the quantified type is a
    # type *argument*.
    result = gi.infer(parse_term("runST $ argST"))
    fterm = elaborate_result(result)
    rendered = pretty_fterm(fterm)
    assert "@(forall s. ST s" in rendered
    print("note the impredicative type argument in:")
    print(f"  {rendered}")

    print("\n=== the same programs as a module file (runst_pipeline.gi) ===\n")
    module_path = Path(__file__).with_name("runst_pipeline.gi")
    module_result = ModuleEngine(figure2_env()).check_file(str(module_path))
    print(render_module_text(module_result))


if __name__ == "__main__":
    main()
