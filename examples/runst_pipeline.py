#!/usr/bin/env python3
"""The ``runST $ e`` story (Section 2.4) — and full elaboration.

GHC ships a built-in special typing rule for ``f $ x`` just to make
``runST $ do {...}`` typecheck; the paper's point is that guarded
impredicativity handles it through the *ordinary* type of ``($)``, so a
user-redefined operator behaves identically.

This example takes the program through the whole pipeline:
parse → infer → elaborate to System F → independently re-check →
erase → execute.

Run:  python examples/runst_pipeline.py
"""

from repro import Inferencer
from repro.evalsuite.figure2 import figure2_env
from repro.interp import evaluate, prelude_env
from repro.syntax import parse_term, parse_type, pretty_term
from repro.systemf import elaborate_result, erase, pretty_fterm, typecheck


def main() -> None:
    env = figure2_env().extended(
        # A user-defined ($): same type, no compiler magic.
        "applyTo", parse_type("forall a b. (a -> b) -> a -> b")
    )
    gi = Inferencer(env)

    programs = [
        "runST $ argST",
        "applyTo runST argST",          # user-defined ($) works identically
        "app runST argST",              # D4
        "revapp argST runST",           # D5
    ]

    print("=== runST through ($): parse -> infer -> System F -> run ===\n")
    for source in programs:
        term = parse_term(source)
        result = gi.infer(term)
        fterm = elaborate_result(result)
        ftype = typecheck(fterm, env)

        print(f"  source      : {pretty_term(term)}")
        print(f"  inferred    : {result.type_}")
        print(f"  System F    : {pretty_fterm(fterm)}")
        print(f"  F checks at : {ftype}")

        runtime = prelude_env().extended(
            "applyTo", lambda f: lambda x: f(x)
        )
        value = evaluate(erase(fterm), runtime)
        original = evaluate(term, runtime)
        assert value == original
        print(f"  runs to     : {value}")
        print()

    # The impredicative instantiation is visible in the elaborated term:
    # ($) @(∀s. ST s Int) @Int runST argST — the quantified type is a
    # type *argument*.
    result = gi.infer(parse_term("runST $ argST"))
    fterm = elaborate_result(result)
    rendered = pretty_fterm(fterm)
    assert "@(forall s. ST s" in rendered
    print("note the impredicative type argument in:")
    print(f"  {rendered}")


if __name__ == "__main__":
    main()
