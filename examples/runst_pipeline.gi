module RunST where

-- The `runST $ e` story (Section 2.4) as a module.  GHC ships a special
-- typing rule for ($) just to make this compile; under guarded
-- impredicativity the *ordinary* type of ($) suffices, so every binding
-- below checks with no compiler magic.

viaDollar :: Int
viaDollar = runST $ argST

-- The same instantiation through other ordinary higher-order functions
-- (Figure 2 rows D4 and D5); these two bindings are unsigned, so their
-- types are inferred and generalised.
viaApp = app runST argST

viaRevapp = revapp argST runST

allRuns :: [Int]
allRuns = viaDollar : (viaApp : [viaRevapp])
