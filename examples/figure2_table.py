#!/usr/bin/env python3
"""Regenerate Figure 2 of the paper at the terminal.

Measured columns (marked *) come from the systems implemented in this
repository; MLF/FPH/HML columns are the paper's reference data.

Run:  python examples/figure2_table.py [--types] [--policies]

With ``--types`` the table also prints the type GI infers for each
accepted example, against the type the paper states where available.
With ``--policies`` it appends the instantiation-policy grid: the
ported GHC tc211 corpus under every eager/lazy × deep/shallow policy,
for each backend with a policy axis.
"""

import sys

from repro.core import Inferencer
from repro.core.errors import GIError
from repro.evalsuite.figure2 import FIGURE2, MEASURED_SYSTEMS, figure2_env, measured_matrix
from repro.evalsuite.report import mark, mark_outcome, render_policy_matrix, render_table


def main(show_types: bool = False, show_policies: bool = False) -> None:
    env = figure2_env()
    measured = measured_matrix(env)

    headers = (
        ["id", "example"]
        + [f"{name}*" for name in MEASURED_SYSTEMS]
        + ["| GI", "MLF", "HMF", "FPH", "HML"]
    )
    rows = []
    for ex in FIGURE2:
        rows.append(
            [ex.key, ex.source[:34]]
            + [mark_outcome(measured[name][ex.key]) for name in MEASURED_SYSTEMS]
            + ["| " + mark(ex.expected["GI"])]
            + [mark(ex.expected[name]) for name in ("MLF", "HMF", "FPH", "HML")]
        )
    print(render_table(headers, rows,
                       title="Figure 2 — measured (*) vs paper (right of |)"))

    agreements = sum(
        1 for ex in FIGURE2 if measured["GI"][ex.key].accepted == ex.expected["GI"]
    )
    print(f"\nGI agreement with the paper: {agreements}/{len(FIGURE2)}")

    if show_types:
        print("\nInferred types (GI):")
        gi = Inferencer(env)
        for ex in FIGURE2:
            try:
                inferred = str(gi.infer(ex.term).type_)
            except GIError:
                inferred = "(rejected)"
            stated = ex.gi_type or ""
            suffix = f"   [paper: {stated}]" if stated else ""
            print(f"  {ex.key:4s} {ex.source[:32]:34s} : {inferred}{suffix}")

    if show_policies:
        from repro.baselines.registry import POLICY_SYSTEMS
        from repro.evalsuite.policies import TC211, policy_matrix

        print("\nInstantiation-policy grid — GHC tc211 corpus "
              "(T6 flips under lazy, T7 under deep):\n")
        print(render_policy_matrix(policy_matrix(env), TC211, POLICY_SYSTEMS))


if __name__ == "__main__":
    main(
        show_types="--types" in sys.argv,
        show_policies="--policies" in sys.argv,
    )
