module LensLibrary where

-- The lens motivation from Section 2.4, as a module: "programmers think
-- of a lens as a first-class value, and are perplexed when they cannot
-- put a lens into a list".  We use the Identity-functor specialisation
-- (a 'setter': (a -> a) -> s -> s), so the vocabulary stays inside the
-- class-free core language; the quantifier structure is the same.

first :: (Int -> Int) -> (Int, Bool) -> (Int, Bool)
first = \f p -> pair (f (fst p)) (snd p)

second :: (Bool -> Bool) -> (Int, Bool) -> (Int, Bool)
second = \f p -> pair (fst p) (f (snd p))

-- A *polymorphic* setter: the shape that needs impredicativity once it
-- is stored in a container.
idLens :: forall s. (s -> s) -> s -> s
idLens = \f s -> f s

over :: forall s. ((s -> s) -> s -> s) -> (s -> s) -> s -> s
over = \ln f s -> ln f s

-- The perplexing case: a list of polymorphic lenses.  The signature is
-- the guard; the elements instantiate impredicatively.
lenses :: [forall s. (s -> s) -> s -> s]
lenses = idLens : [idLens]

-- Retrieve a lens from the list and use it at two different structures:
-- head instantiates its type variable to the polymorphic lens type.
bumped = over (head lenses) inc 3

flipped = over (head lenses) not True

both = pair bumped flipped
