#!/usr/bin/env python3
"""The Appendix B extension: type classes and implication constraints.

The constraint architecture is the point of Section 4: new constraint
forms slot in without touching the guardedness machinery.  This example
declares ``Eq`` with a few instances, infers qualified types, and shows a
given constraint from a signature discharging a wanted one.

Run:  python examples/typeclasses_demo.py
"""

from repro import Inferencer
from repro.core.errors import GIError
from repro.typeclasses import standard_instances
from repro.evalsuite.figure2 import figure2_env
from repro.syntax import parse_term, parse_type


def main() -> None:
    env = figure2_env().extended_many(
        {
            "eq": parse_type("forall a. Eq a => a -> a -> Bool"),
            "elem": parse_type("forall a. Eq a => a -> [a] -> Bool"),
            "showIt": parse_type("forall a. Show a => a -> String"),
        }
    )
    instances = standard_instances()
    gi = Inferencer(env, instances=instances)

    print("=== type classes through the constraint pipeline ===\n")

    programs = [
        # Instances discharge wanted constraints:
        ("eq 1 2", "Eq Int instance"),
        ("eq [True] [False]", "Eq [a] instance with Eq Bool context"),
        # Residual constraints are quantified into the inferred type:
        (r"\x -> eq x x", "inferring a qualified type"),
        (r"\x y -> pair (eq x y) (showIt x)", "two residual constraints"),
        # A given from a signature discharges the wanted:
        (r"(\x -> eq x x :: forall a. Eq a => a -> Bool)",
         "given Eq a ⊢ wanted Eq a"),
        # A residual constraint over a generalised variable floats into
        # the context (a Haskell compiler would report it as ambiguous at
        # the top level, but as an inferred type it is faithful):
        ("eq id id", "residual constraint on a quantified variable"),
        # A ground missing instance is an error:
        ("eq not not", "no Eq instance for Bool -> Bool"),
    ]

    for source, label in programs:
        print(f"  -- {label}")
        print(f"  {source}")
        try:
            result = gi.infer(parse_term(source))
            print(f"    : {result.type_}")
        except GIError as error:
            print(f"    rejected: {str(error)[:90]}")
        print()

    # Guardedness and classes compose: a qualified function applied to a
    # polymorphic list still instantiates impredicatively.
    env2 = env.extended(
        "eqHead", parse_type("forall p. [p] -> [p] -> Bool")
    )
    result = Inferencer(env2, instances=instances).infer(
        parse_term("eqHead ids ids")
    )
    print(f"  eqHead ids ids : {result.type_}  (guardedness unaffected)")


if __name__ == "__main__":
    main()
