#!/usr/bin/env python3
"""Quickstart: infer guarded-impredicative types for a few programs.

Run:  python examples/quickstart.py
"""

from repro import Inferencer
from repro.core.errors import GIError
from repro.evalsuite.figure2 import figure2_env
from repro.interp import run
from repro.syntax import parse_term


def main() -> None:
    # The environment of Figure 1: head, ids, poly, runST, ($), ...
    env = figure2_env()
    gi = Inferencer(env)

    programs = [
        # The tantalising example from the introduction: a list of
        # polymorphic functions, used directly.
        "head ids",
        # Impredicative instantiation justified by guardedness:
        "id : ids",
        # The celebrated ($) example — no special case needed:
        "runST $ argST",
        # n-ary applications let arguments justify each other:
        "id poly (\\x -> x)",
        # Higher-rank checking through an annotated lambda:
        r"\(f :: forall a. a -> a) -> (f 1, f True)",
        # Where GI asks for an annotation (and the fix):
        "map poly (single id)",
        "map poly (single id :: [forall a. a -> a])",
    ]

    print("=== Guarded impredicative type inference ===\n")
    for source in programs:
        print(f"  {source}")
        try:
            result = gi.infer(parse_term(source))
            print(f"    : {result.type_}")
        except GIError as error:
            print(f"    rejected: {error}")
        print()

    # Inference results carry everything: the principal type, the raw
    # solver output, the generated constraints, and elaboration evidence.
    result = gi.infer(parse_term("head ids"))
    print("constraints generated for `head ids`:")
    for constraint in result.constraints:
        print(f"    {constraint}")

    # Programs also *run* (a small CBV interpreter ships with the repo):
    print()
    print("running `runST $ argST`      =>", run(parse_term("runST $ argST")))
    print("running `head ids True`      =>", run(parse_term("head ids True")))
    print("running `id poly (\\x -> x)`  =>", run(parse_term(r"id poly (\x -> x)")))


if __name__ == "__main__":
    main()
