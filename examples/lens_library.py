#!/usr/bin/env python3
"""The lens motivation from Section 2.4.

Haskell's lens library defines

    type Lens s t a b = forall f. Functor f => (a -> f b) -> s -> f t

and "programmers think of a lens as a first-class value, and are perplexed
when they cannot put a lens into a list or other data structure."  This
example builds a miniature van-Laarhoven-style lens vocabulary in the GI
surface language and shows that, with guarded impredicativity, lenses go
into lists, get picked back out, and compose — no annotations at the use
sites.

(We use the Identity-functor specialisation ``(a -> a) -> s -> s`` — a
*setter* — so the example stays inside the class-free core language; the
quantifier structure that defeats predicative systems is the same.)

The same vocabulary ships as a real module file, ``lens_library.gi``,
checked through the module layer at the end of the run (equivalent to
``python -m repro module examples/lens_library.gi``).

Run:  python examples/lens_library.py
"""

from pathlib import Path

from repro import Inferencer
from repro.core.errors import GIError
from repro.baselines import RankNInferencer
from repro.evalsuite.figure2 import figure2_env
from repro.modules import ModuleEngine, render_module_text
from repro.syntax import parse_term, parse_type


def lens_env():
    """A pair 'record' with two setter lenses."""
    env = figure2_env()
    # Setter s a = (a -> a) -> s -> s;  here s = (Int, Bool).
    return env.extended_many(
        {
            # _1 modifies the first component, _2 the second.
            "_1": parse_type("(Int -> Int) -> (Int, Bool) -> (Int, Bool)"),
            "_2": parse_type("(Bool -> Bool) -> (Int, Bool) -> (Int, Bool)"),
            # A *polymorphic* setter that works on any structure whose
            # update function is the identity family — the shape that
            # needs impredicativity once stored in a container:
            "idLens": parse_type("forall s. (s -> s) -> s -> s"),
            "over": parse_type(
                "forall s. ((s -> s) -> s -> s) -> (s -> s) -> s -> s"
            ),
            "point": parse_type("(Int, Bool)"),
        }
    )


def main() -> None:
    env = lens_env()
    gi = Inferencer(env)
    rankn = RankNInferencer(env)

    print("=== first-class lenses under guarded impredicativity ===\n")

    programs = [
        # A lens used directly — fine in any higher-rank system:
        ("over idLens inc 3", "direct use"),
        # A *list of lenses* — the perplexing case: requires the list
        # element type to be the polymorphic lens type:
        ("idLens : [idLens]", "a list of polymorphic lenses"),
        ("(single idLens :: [forall s. (s -> s) -> s -> s])",
         "storing a lens with an annotation"),
        # Taking the lens back out of the list and using it at two
        # different structures:
        ("let lenses = idLens : [idLens] in over (head lenses) inc 3",
         "retrieve from the list, use at Int"),
        # The decisive case: the list of lenses crosses a function
        # boundary, so its element type must *be* the polymorphic lens
        # type — predicative systems reject this even with the
        # annotation, because head must instantiate p := ∀s. (s→s)→s→s.
        (r"\(ls :: [forall s. (s -> s) -> s -> s]) -> "
         r"pair (over (head ls) inc 3) (over (head ls) not True)",
         "a lens list crossing a lambda: needs impredicativity"),
    ]

    for source, label in programs:
        print(f"  -- {label}")
        print(f"  {source}")
        try:
            result = gi.infer(parse_term(source))
            print(f"    GI    : {result.type_}")
        except GIError as error:
            print(f"    GI    rejected: {str(error)[:80]}")
        try:
            rankn_type = rankn.infer(parse_term(source))
            print(f"    RankN : {rankn_type}")
        except GIError:
            print("    RankN rejected (predicative systems cannot store "
                  "lenses in lists)")
        print()

    print("=== the same library as a module file (lens_library.gi) ===\n")
    module_path = Path(__file__).with_name("lens_library.gi")
    result = ModuleEngine(figure2_env()).check_file(str(module_path))
    print(render_module_text(result))


if __name__ == "__main__":
    main()
