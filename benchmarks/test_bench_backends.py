"""Benchmark the **backend matrix**: all seven executable systems over
the Figure-2 corpus, plus the differential oracle itself.

Prints (and writes to ``results/backend_matrix.txt``) the extended
Figure-2 acceptance matrix with the FreezeML and QuickLook columns, and
benchmarks each backend's whole-corpus inference cost so the relative
price of quick-look spines and freeze-aware unification is tracked over
time.
"""

from pathlib import Path

import pytest

from repro.baselines import SYSTEMS
from repro.conformance import DEFAULT_ORACLES, OracleContext, run_battery
from repro.evalsuite.figure2 import (
    FIGURE2,
    MEASURED_SYSTEMS,
    figure2_env,
    measured_matrix,
)
from repro.evalsuite.report import mark_outcome, render_table

ENV = figure2_env()
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def matrix():
    return measured_matrix(ENV)


def test_regenerate_backend_matrix(matrix, benchmark):
    benchmark(lambda: measured_matrix(ENV))
    headers = ["id", "example"] + [f"{name}*" for name in MEASURED_SYSTEMS]
    rows = [
        [ex.key, ex.source[:34]]
        + [mark_outcome(matrix[name][ex.key]) for name in MEASURED_SYSTEMS]
        for ex in FIGURE2
    ]
    table = render_table(
        headers,
        rows,
        title="Backend matrix — all executable systems on Figure 2",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "backend_matrix.txt").write_text(table + "\n", encoding="utf-8")

    crashed = [
        (name, key)
        for name, outcomes in matrix.items()
        for key, outcome in outcomes.items()
        if outcome.crashed
    ]
    assert not crashed, crashed


@pytest.mark.parametrize("system_name", sorted(SYSTEMS))
def test_bench_backend_whole_corpus(benchmark, system_name):
    """Whole-corpus inference cost per backend (relative price of the
    quick-look spine pass, freeze checks, etc.)."""
    system = SYSTEMS[system_name]

    def run_corpus():
        return sum(1 for ex in FIGURE2 if system.run(ex.term, ENV).accepted)

    accepted = benchmark(run_corpus)
    assert 0 < accepted <= len(FIGURE2)


def test_bench_differential_oracle(benchmark):
    """Cost of one full differential-oracle pass (all seven backends,
    all pairwise implications) over the whole corpus."""

    def run_battery_over_corpus():
        violations = []
        for ex in FIGURE2:
            ctx = OracleContext(ENV)
            violation = run_battery(ctx, ex.term, oracles=("differential",))
            if violation is not None:
                violations.append((ex.key, violation))
        return violations

    violations = benchmark(run_battery_over_corpus)
    assert not violations, violations
