"""Cold vs warm module re-checking on a ~100-binding synthetic module.

The point of the incremental engine is that a warm re-check (everything
cached) and a leaf-edit re-check (one chain dirty) cost a small fraction
of the cold check.  This bench measures all three and writes the numbers
to ``BENCH_modules.json`` at the repo root so CI and the paper notes can
quote them.

Set ``REPRO_BENCH_SMOKE=1`` to run one small repetition (used by the CI
smoke step); the timing assertion — warm strictly faster than cold —
holds in both modes.
"""

import json
import os
import time
from pathlib import Path

from repro.evalsuite.figure2 import figure2_env
from repro.evalsuite.modules_corpus import synthetic_module_source
from repro.modules import ModuleCache, ModuleEngine, parse_module

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 1 if SMOKE else 5
CHAINS, DEPTH = (2, 10) if SMOKE else (4, 25)
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_modules.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_cold_vs_warm_recheck():
    source = synthetic_module_source(chains=CHAINS, depth=DEPTH)
    bindings = len(parse_module(source).bindings)
    edited = source.replace("c0_0 :: Int\nc0_0 = 0", "c0_0 :: Bool\nc0_0 = True")
    assert edited != source

    cold_times, warm_times, edit_times = [], [], []
    for _ in range(REPEATS):
        engine = ModuleEngine(figure2_env(), cache=ModuleCache())

        cold, cold_s = _timed(lambda: engine.check_source(source))
        assert cold.ok and cold.stats.cache_misses == bindings
        cold_times.append(cold_s)

        warm, warm_s = _timed(lambda: engine.check_source(source))
        assert warm.stats.cache_hits == bindings
        warm_times.append(warm_s)

        edit, edit_s = _timed(lambda: engine.check_source(edited))
        assert edit.ok and edit.stats.cache_misses == DEPTH
        edit_times.append(edit_s)

    cold_s = min(cold_times)
    warm_s = min(warm_times)
    edit_s = min(edit_times)

    # The acceptance bar: a warm re-check must be measurably faster than
    # a cold check.  (In practice it is orders of magnitude faster — the
    # warm path does no inference at all.)
    assert warm_s < cold_s, (warm_s, cold_s)

    payload = {
        "benchmark": "module_recheck",
        "smoke": SMOKE,
        "bindings": bindings,
        "chains": CHAINS,
        "depth": DEPTH,
        "repeats": REPEATS,
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "leaf_edit_seconds": round(edit_s, 6),
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "leaf_edit_speedup": round(cold_s / edit_s, 1) if edit_s else None,
        "leaf_edit_rechecked": DEPTH,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_bench_concurrent_cold_check():
    """jobs=4 cold check agrees with serial (time is machine-dependent,
    so only correctness is asserted here; the layer structure of the
    synthetic module bounds the achievable parallelism anyway)."""
    source = synthetic_module_source(chains=CHAINS, depth=DEPTH)
    serial = ModuleEngine(figure2_env()).check_source(source)
    pooled = ModuleEngine(figure2_env(), jobs=4).check_source(source)
    assert pooled.ok
    assert pooled.types == serial.types
