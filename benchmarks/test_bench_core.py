"""Core-engine benchmarks: union-find substitution + wake-up scheduling.

This bench pins down the two performance claims of the core rework and
writes the numbers to ``BENCH_core.json`` at the repo root:

* ``var_chain`` — zonking through a long variable-variable chain.  The
  union-find store (path compression + rank) must beat a bench-local
  reimplementation of the old representation (a flat ``dict`` walked
  link by link on every query, the seed's ``zonk``) by >= 1.5x.
* ``gen_chain`` — a dependency chain of deferred generalisation
  constraints (:func:`repro.evalsuite.workloads.gen_chain_constraints`).
  The variable-indexed wake-up queue pops each deferred constraint O(1)
  times; the legacy re-scan mode (``Solver(wake_queue=False)``) revisits
  every still-blocked constraint per round.  Wake mode must win by
  >= 1.5x and its step count must stay linear.
* ``var_chain.arena_seconds`` / ``gen_chain.arena_seconds`` — the same
  two workloads replayed through the arena unifier's id-level API
  (``fresh_id``/``assign_id``/``zonk_id``), where a type is an int and
  the store is a dense array.  Full mode gates these against the
  committed PR 5 absolutes (``PR5_*_SECONDS``) at >= 5x; smoke mode
  gates them relatively against the same-run object-level store.
* ``figure2`` — the full Figure-2 inference sweep: the fast path must
  not regress the paper suite (accept count and total solver steps are
  asserted stable; seconds are recorded for the before/after table in
  EXPERIMENTS.md).
* ``deep_chain_term`` / ``defaulting_fan`` — end-to-end inference on the
  synthetic stress terms, exercising iterative zonk/occurs on one deep
  spine and a long defer/wake stream respectively.

Runs are interleaved (one pass per mode per repeat, minimum taken) so a
machine-load spike hits all modes alike.  Set ``REPRO_BENCH_SMOKE=1``
for the quick CI variant; the speedup assertions hold in both modes.
Set ``REPRO_BENCH_BASELINE=<path>`` to additionally compare against a
committed ``BENCH_core.json``: step counts must match exactly (they are
deterministic) and smoke timings must stay within 2x.
"""

import json
import os
import time
from pathlib import Path

from repro.core.arena_unify import ArenaUnifier
from repro.core.errors import GIError
from repro.core.evidence import EvidenceStore
from repro.core.infer import Inferencer
from repro.core.names import NameSupply
from repro.core.solver import InstanceEnv, Solver
from repro.core.sorts import Sort
from repro.core.types import TCon, Type, UVar
from repro.core.unify import Unifier
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.evalsuite.workloads import (
    deep_chain_term,
    defaulting_fan,
    gen_chain_constraints,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 3 if SMOKE else 7
VAR_CHAIN_N = 800 if SMOKE else 3000
GEN_CHAIN_N = 150 if SMOKE else 400
DEEP_TERM_N = 150 if SMOKE else 300
FAN_N = 30 if SMOKE else 60
MIN_SPEEDUP = 1.5
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

# The committed PR 5 numbers (full mode, N=3000 / N=400) — the arena's
# id-level fast path must beat these absolutes by >= 5x.  Kept as
# constants because this bench overwrites BENCH_core.json on every run.
PR5_VAR_CHAIN_SECONDS = 0.009816
PR5_GEN_CHAIN_SECONDS = 0.004673
ARENA_MIN_SPEEDUP = 5.0

ENV = figure2_env()
INT = TCon("Int", ())


class DictChainUnifier:
    """The seed's substitution representation, kept here as the bench
    reference: a flat ``var -> type`` dict whose var-var links are walked
    afresh on every ``zonk`` query (no compression, no memoisation)."""

    def __init__(self) -> None:
        self.subst: dict[UVar, Type] = {}

    def bind(self, variable: UVar, type_: Type) -> None:
        self.subst[variable] = type_

    def zonk(self, type_: Type) -> Type:
        while isinstance(type_, UVar):
            image = self.subst.get(type_)
            if image is None:
                return type_
            type_ = image
        return type_


def _min_of(samples):
    return round(min(samples), 6)


# ----------------------------------------------------------------------
# Workload passes (one timed pass each; callers interleave repeats)
# ----------------------------------------------------------------------


def _var_chain_unionfind(length: int) -> float:
    unifier = Unifier(NameSupply("b"))
    chain = [UVar(f"v{index}", Sort.M) for index in range(length)]
    start = time.perf_counter()
    for left, right in zip(chain, chain[1:]):
        unifier.assign(left, right)
    unifier.assign(chain[-1], INT)
    for variable in chain:
        assert unifier.zonk(variable) == INT
    return time.perf_counter() - start


def _var_chain_dict(length: int) -> float:
    unifier = DictChainUnifier()
    chain = [UVar(f"v{index}", Sort.M) for index in range(length)]
    start = time.perf_counter()
    for left, right in zip(chain, chain[1:]):
        unifier.bind(left, right)
    unifier.bind(chain[-1], INT)
    for variable in chain:
        assert unifier.zonk(variable) == INT
    return time.perf_counter() - start


def _var_chain_arena(length: int) -> float:
    """The var_chain workload through the arena's id-level API: same
    link/bind/zonk-everything sequence, but every type is an int and the
    hot calls are hoisted locals (the idiomatic tight-loop shape the id
    API exists for)."""
    unifier = ArenaUnifier(NameSupply("b"))
    assign = unifier.assign_id
    ids = [unifier.fresh_id(Sort.M, 0) for _ in range(length)]
    int_id = unifier._arena.tcon("Int")
    start = time.perf_counter()
    for left, right in zip(ids, ids[1:]):
        assign(left, right)
    assign(ids[-1], int_id)
    assert unifier.zonk_ids(ids).count(int_id) == length
    return time.perf_counter() - start


def _gen_chain_arena(length: int) -> float:
    """The store traffic of the wake-mode gen_chain solve replayed at the
    id level: each bind immediately re-zonks the variable it woke (the
    watcher's re-examination), then one final generalisation sweep."""
    unifier = ArenaUnifier(NameSupply("b"))
    fresh, assign, zonk = unifier.fresh_id, unifier.assign_id, unifier.zonk_id
    int_id = unifier._arena.tcon("Int")
    ids = [fresh(Sort.M, 0) for _ in range(length)]
    start = time.perf_counter()
    for left, right in zip(ids, ids[1:]):
        assign(left, right)
        zonk(left)
    assign(ids[-1], int_id)
    for variable in ids:
        assert zonk(variable) == int_id
    return time.perf_counter() - start


def _gen_chain(length: int, wake: bool) -> tuple[float, int]:
    constraints = gen_chain_constraints(length)
    solver = Solver(
        NameSupply("b"), EvidenceStore(), InstanceEnv(), wake_queue=wake
    )
    start = time.perf_counter()
    solver.solve(constraints)
    return time.perf_counter() - start, solver.steps


def _figure2_sweep() -> tuple[float, int, int]:
    inferencer = Inferencer(ENV)
    accepted = 0
    steps = 0
    start = time.perf_counter()
    for example in FIGURE2:
        try:
            result = inferencer.infer(example.term)
        except GIError:
            continue
        accepted += 1
        steps += result.solver.steps
    return time.perf_counter() - start, accepted, steps


def _infer_term(term) -> tuple[float, int]:
    inferencer = Inferencer(ENV)
    start = time.perf_counter()
    result = inferencer.infer(term)
    return time.perf_counter() - start, result.solver.steps


# ----------------------------------------------------------------------


def test_bench_core():
    var_uf, var_dict = [], []
    chain_wake, chain_legacy = [], []
    fig_seconds = []
    deep_seconds, fan_seconds = [], []
    fig_meta = set()
    chain_steps = set()
    deep_steps = set()
    var_arena, gen_arena = [], []
    for _ in range(REPEATS):
        var_uf.append(_var_chain_unionfind(VAR_CHAIN_N))
        var_dict.append(_var_chain_dict(VAR_CHAIN_N))
        var_arena.append(_var_chain_arena(VAR_CHAIN_N))
        gen_arena.append(_gen_chain_arena(GEN_CHAIN_N))
        seconds, steps = _gen_chain(GEN_CHAIN_N, wake=True)
        chain_wake.append(seconds)
        chain_steps.add(("wake", steps))
        seconds, steps = _gen_chain(GEN_CHAIN_N, wake=False)
        chain_legacy.append(seconds)
        chain_steps.add(("legacy", steps))
        seconds, accepted, steps = _figure2_sweep()
        fig_seconds.append(seconds)
        fig_meta.add((accepted, steps))
        seconds, steps = _infer_term(deep_chain_term(DEEP_TERM_N))
        deep_seconds.append(seconds)
        deep_steps.add(steps)
        seconds, _ = _infer_term(defaulting_fan(FAN_N))
        fan_seconds.append(seconds)

    # Step counts are deterministic — identical across repeats.
    assert len(fig_meta) == 1, fig_meta
    assert len(chain_steps) == 2, chain_steps
    assert len(deep_steps) == 1, deep_steps
    accepted, fig_steps = fig_meta.pop()
    wake_steps = next(s for mode, s in chain_steps if mode == "wake")
    legacy_steps = next(s for mode, s in chain_steps if mode == "legacy")

    # The paper suite must not regress: the sweep accepts exactly the
    # examples the paper marks typeable under guarded instantiation.
    assert accepted == sum(
        1 for example in FIGURE2 if example.expected["GI"]
    ), accepted

    # Wake-up scheduling is linear in the chain; re-scanning is not.
    assert wake_steps <= 5 * GEN_CHAIN_N + 5, (wake_steps, GEN_CHAIN_N)
    assert legacy_steps > wake_steps, (legacy_steps, wake_steps)

    var_speedup = min(var_dict) / min(var_uf)
    chain_speedup = min(chain_legacy) / min(chain_wake)
    assert var_speedup >= MIN_SPEEDUP, (min(var_dict), min(var_uf))
    assert chain_speedup >= MIN_SPEEDUP, (min(chain_legacy), min(chain_wake))

    # The arena id-level path must beat the committed PR 5 absolutes by
    # >= 5x (full mode only — smoke shrinks N, so there it is gated
    # relatively against the same-run object-level store instead).
    arena_var_speedup = PR5_VAR_CHAIN_SECONDS / min(var_arena)
    arena_gen_speedup = PR5_GEN_CHAIN_SECONDS / min(gen_arena)
    if not SMOKE:
        assert arena_var_speedup >= ARENA_MIN_SPEEDUP, (
            min(var_arena),
            PR5_VAR_CHAIN_SECONDS,
        )
        assert arena_gen_speedup >= ARENA_MIN_SPEEDUP, (
            min(gen_arena),
            PR5_GEN_CHAIN_SECONDS,
        )
    assert min(var_uf) / min(var_arena) >= 2.0, (min(var_uf), min(var_arena))
    assert min(chain_wake) / min(gen_arena) >= 2.0, (
        min(chain_wake),
        min(gen_arena),
    )

    payload = {
        "benchmark": "core_engine",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "var_chain": {
            "length": VAR_CHAIN_N,
            "unionfind_seconds": _min_of(var_uf),
            "dict_chain_seconds": _min_of(var_dict),
            "speedup": round(var_speedup, 2),
            "arena_seconds": _min_of(var_arena),
            "arena_speedup_vs_pr5": round(arena_var_speedup, 2),
        },
        "gen_chain": {
            "length": GEN_CHAIN_N,
            "wake_seconds": _min_of(chain_wake),
            "legacy_seconds": _min_of(chain_legacy),
            "wake_steps": wake_steps,
            "legacy_steps": legacy_steps,
            "speedup": round(chain_speedup, 2),
            "arena_seconds": _min_of(gen_arena),
            "arena_speedup_vs_pr5": round(arena_gen_speedup, 2),
        },
        "figure2": {
            "examples": len(FIGURE2),
            "accepted": accepted,
            "solver_steps": fig_steps,
            "seconds": _min_of(fig_seconds),
        },
        "deep_chain_term": {
            "depth": DEEP_TERM_N,
            "solver_steps": deep_steps.pop(),
            "seconds": _min_of(deep_seconds),
        },
        "defaulting_fan": {
            "width": FAN_N,
            "seconds": _min_of(fan_seconds),
        },
    }
    _compare_baseline(payload)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _compare_baseline(payload: dict) -> None:
    """CI regression gate: steps must match the committed baseline
    exactly; timings must stay within 2x (generous — CI machines vary)."""
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline_path:
        return
    baseline = json.loads(Path(baseline_path).read_text())
    assert payload["figure2"]["accepted"] == baseline["figure2"]["accepted"]
    if payload["smoke"] == baseline["smoke"]:
        for section in ("figure2", "gen_chain", "deep_chain_term"):
            for key, value in baseline[section].items():
                if key.endswith("steps"):
                    assert payload[section][key] == value, (section, key)
    for section in ("var_chain", "gen_chain", "figure2", "deep_chain_term"):
        for key, value in baseline[section].items():
            if key.endswith("seconds") and value > 0:
                ratio = payload[section][key] / value
                assert ratio <= 2.0, (section, key, payload[section][key], value)
