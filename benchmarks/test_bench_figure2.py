"""Benchmark + regeneration of **Figure 2** (the paper's main table).

Running this file prints the regenerated table: five *measured* columns
(our GI, plain HMF, HMF with the n-ary extension, Algorithm W, RankN)
next to the paper's five published columns (GI/MLF/HMF/FPH/HML; the
MLF/FPH/HML ones are reference data — see DESIGN.md).  It asserts that
the measured GI column equals the published one on every row, and
benchmarks inference time over the whole corpus and per group.

The table is also written to ``results/figure2.txt``.
"""

from pathlib import Path

import pytest

from repro.baselines import SYSTEMS
from repro.core import Inferencer
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.evalsuite.report import mark, render_table

ENV = figure2_env()
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

MEASURED = ("GI", "HMF", "HMF-N", "HM", "RankN")
REFERENCE = ("GI", "MLF", "HMF", "FPH", "HML")


def _measure_all() -> dict[str, dict[str, bool]]:
    return {
        name: {ex.key: SYSTEMS[name].accepts(ex.term, ENV) for ex in FIGURE2}
        for name in MEASURED
    }


@pytest.fixture(scope="module")
def matrix():
    return _measure_all()


def test_regenerate_figure2_table(matrix, benchmark):
    benchmark(_measure_all)
    headers = (
        ["id", "example"]
        + [f"{name}*" for name in MEASURED]
        + [f"{name} (paper)" for name in REFERENCE]
    )
    rows = []
    for ex in FIGURE2:
        rows.append(
            [ex.key, ex.source[:34]]
            + [mark(matrix[name][ex.key]) for name in MEASURED]
            + [mark(ex.expected[name]) for name in REFERENCE]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Figure 2 — measured columns (*, this implementation) vs the "
            "paper.\nMLF/FPH/HML are reference data from the paper; see "
            "EXPERIMENTS.md for the HMF variant analysis."
        ),
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure2.txt").write_text(table + "\n", encoding="utf-8")

    # The headline claim: the GI column reproduces the paper exactly.
    mismatches = [
        ex.key for ex in FIGURE2 if matrix["GI"][ex.key] != ex.expected["GI"]
    ]
    assert not mismatches, mismatches


def test_gi_agreement_summary(matrix, benchmark):
    """Agreement counts per measured system against its published column."""
    gi = Inferencer(ENV)
    benchmark(lambda: [gi.accepts(ex.term) for ex in FIGURE2])
    lines = []
    for name, published in (("GI", "GI"), ("HMF", "HMF"), ("HMF-N", "HMF")):
        agree = sum(
            1 for ex in FIGURE2 if matrix[name][ex.key] == ex.expected[published]
        )
        lines.append(f"{name:6s} vs paper {published}: {agree}/{len(FIGURE2)}")
    summary = "\n".join(lines)
    print()
    print(summary)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure2_agreement.txt").write_text(summary + "\n", encoding="utf-8")
    assert lines[0].endswith(f"{len(FIGURE2)}/{len(FIGURE2)}")


def test_bench_gi_whole_corpus(benchmark):
    """Inference time for all 32 examples through GI."""
    gi = Inferencer(ENV)

    def run_corpus():
        return sum(1 for ex in FIGURE2 if gi.accepts(ex.term))

    accepted = benchmark(run_corpus)
    assert accepted == sum(1 for ex in FIGURE2 if ex.expected["GI"])


@pytest.mark.parametrize("group", ["A", "B", "C", "D", "E"])
def test_bench_gi_by_group(benchmark, group):
    gi = Inferencer(ENV)
    examples = [ex for ex in FIGURE2 if ex.group == group]

    def run_group():
        return [gi.accepts(ex.term) for ex in examples]

    results = benchmark(run_group)
    assert results == [ex.expected["GI"] for ex in examples]


@pytest.mark.parametrize("system_name", ["GI", "HMF", "HM", "RankN"])
def test_bench_system_comparison(benchmark, system_name):
    """Relative inference cost of each executable system on the corpus."""
    system = SYSTEMS[system_name]

    def run_corpus():
        return sum(1 for ex in FIGURE2 if system.accepts(ex.term, ENV))

    benchmark(run_corpus)
