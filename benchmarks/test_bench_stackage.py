"""Benchmark + regeneration of the **Section 5 table** (Stackage study).

The paper: 2,400 packages; 609 use RankNTypes; 75 required manual changes
(all η-expansions); 1 needs larger changes (TH-generated code); 2 failed
for unrelated reasons.  We regenerate the table over the simulated corpus
(see DESIGN.md for the substitution) at full scale, assert the shape, and
benchmark the analyzer at a smaller scale.

The table is written to ``results/stackage.txt``.
"""

from pathlib import Path

import pytest

from repro.evalsuite.report import render_table
from repro.evalsuite.stackage import Verdict, run_study

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

PAPER_NUMBERS = {
    "packages in corpus": 2400,
    "packages using RankNTypes": 609,
    "packages needing manual changes (all η-expansions)": 75,
    "packages needing larger changes (TH-generated code)": 1,
    "packages failing for unrelated reasons": 2,
}


@pytest.fixture(scope="module")
def study():
    return run_study(seed=2018, size=2400)


def test_regenerate_section5_table(study, benchmark):
    benchmark(run_study, seed=2018, size=120)
    rows = []
    for label, measured in study.rows():
        paper = PAPER_NUMBERS.get(label, "—")
        rows.append([label, measured, paper])
    table = render_table(
        ["Section 5 quantity", "measured", "paper"],
        rows,
        title="Section 5 — GI compatibility study over the simulated "
        "Stackage corpus (seed 2018)",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "stackage.txt").write_text(table + "\n", encoding="utf-8")

    assert study.total == 2400
    assert study.rankntypes == 609
    assert study.larger == 1
    assert study.unrelated == 2
    # η-expansion count: calibrated corpus, measured verdicts.
    assert abs(study.eta - 75) <= 5
    assert study.ok == study.rankntypes - study.eta - study.larger


def test_all_manual_changes_are_eta_expansions(study, benchmark):
    """The paper's strongest claim: every manual repair is an η-expansion."""
    from repro.evalsuite.stackage import Analyzer, Declaration, study_env, _ETA_TEMPLATES

    analyzer = Analyzer(study_env())
    declaration = Declaration(*_ETA_TEMPLATES[0])
    benchmark(analyzer.check_declaration, declaration)
    for report in study.reports:
        if report.verdict is Verdict.ETA:
            assert report.repaired
        if report.verdict is Verdict.LARGER:
            # The TH-style package fails because the generated code cannot
            # be η-expanded at source level.
            assert any(d.generated for d in report.package.declarations)


def test_bench_analyzer(benchmark):
    """Analyzer throughput at 1/10 scale."""
    result = benchmark(run_study, seed=2018, size=240)
    assert result.total == 240
