"""Ablation benches for the design choices DESIGN.md calls out.

Two ingredients of GI are switchable in our implementation:

* **n-ary applications** (Section 2.1/3.2): with ``nary_apps=False``
  every application is typed one argument at a time, so guardedness can
  only be justified by a single argument;
* **rule VarGen** (Section 3.3 / Figure 5): with ``use_vargen=False``
  bare-variable arguments are typed like any other expression, losing
  ``choose [] ids``-style impredicative pre-instantiation.

The bench regenerates the Figure 2 GI column under each configuration and
reports which examples each ingredient buys; written to
``results/ablation.txt``.
"""

from pathlib import Path

import pytest

from repro.core import Inferencer, InferOptions
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.evalsuite.report import mark, render_table

ENV = figure2_env()
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

CONFIGS = {
    "full": InferOptions(),
    "no-vargen": InferOptions(use_vargen=False),
    "binary-apps": InferOptions(nary_apps=False),
    "neither": InferOptions(use_vargen=False, nary_apps=False),
}


@pytest.fixture(scope="module")
def matrix():
    results = {}
    for name, options in CONFIGS.items():
        gi = Inferencer(ENV, options=options)
        results[name] = {ex.key: gi.accepts(ex.term) for ex in FIGURE2}
    return results


def test_regenerate_ablation_table(matrix, benchmark):
    gi = Inferencer(ENV, options=CONFIGS["full"])
    benchmark(lambda: [gi.accepts(ex.term) for ex in FIGURE2])
    headers = ["id", "example", "paper"] + list(CONFIGS)
    rows = []
    for ex in FIGURE2:
        rows.append(
            [ex.key, ex.source[:30], mark(ex.expected["GI"])]
            + [mark(matrix[name][ex.key]) for name in CONFIGS]
        )
    accepted = {name: sum(matrix[name].values()) for name in CONFIGS}
    footer = "accepted: " + "  ".join(f"{k}={v}" for k, v in accepted.items())
    table = render_table(
        headers, rows, title="Ablation — Figure 2 GI column per configuration"
    )
    print()
    print(table)
    print(footer)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation.txt").write_text(table + "\n" + footer + "\n", encoding="utf-8")


def test_full_configuration_dominates(matrix, benchmark):
    """Removing an ingredient never *gains* an example."""
    gi = Inferencer(ENV, options=CONFIGS["neither"])
    benchmark(lambda: [gi.accepts(ex.term) for ex in FIGURE2])
    for name in ("no-vargen", "binary-apps", "neither"):
        for ex in FIGURE2:
            if matrix[name][ex.key]:
                assert matrix["full"][ex.key], (name, ex.key)


def test_vargen_buys_star_examples(matrix, benchmark):
    """VarGen is what accepts choose [] ids (A3) and map head (single
    ids) (C10)."""
    gi = Inferencer(ENV, options=CONFIGS["no-vargen"])
    benchmark(lambda: [gi.accepts(ex.term) for ex in FIGURE2])
    assert matrix["full"]["A3"] and not matrix["no-vargen"]["A3"]
    assert matrix["full"]["C10"] and not matrix["no-vargen"]["C10"]


def test_nary_buys_multi_argument_guardedness(matrix, benchmark):
    """The n-ary treatment is what accepts id : ids (C5)."""
    gi = Inferencer(ENV, options=CONFIGS["binary-apps"])
    benchmark(lambda: [gi.accepts(ex.term) for ex in FIGURE2])
    assert matrix["full"]["C5"] and not matrix["binary-apps"]["C5"]


def test_hm_fragment_unaffected(matrix, benchmark):
    """The ablations only affect impredicative examples; the predicative
    rows (A1, A2, C4, C7) survive every configuration."""
    gi = Inferencer(ENV)
    rows = [ex for ex in FIGURE2 if ex.key in ("A1", "A2", "C4", "C7")]
    benchmark(lambda: [gi.accepts(ex.term) for ex in rows])
    for name in CONFIGS:
        for key in ("A1", "A2", "C4", "C7"):
            assert matrix[name][key], (name, key)


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_bench_ablation_configs(benchmark, config_name):
    gi = Inferencer(ENV, options=CONFIGS[config_name])

    def run_corpus():
        return sum(1 for ex in FIGURE2 if gi.accepts(ex.term))

    benchmark(run_corpus)
