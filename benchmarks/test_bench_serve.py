"""Serving latency and throughput under concurrent clients.

One daemon, three offered-load levels (1 / 8 / 64 clients), well-typed
traffic only — the numbers here are about the *serving* overhead
(protocol, admission, executor hop), not the solver.  A second section
round-trips a ~bindings-deep module through the server twice in one
session, measuring the cold check against the warm (fully cached)
re-check — the session-cache reuse story, end to end through the wire.

Results land in ``BENCH_serve.json`` at the repo root (p50/p95/p99 and
requests/second per client level).  Set ``REPRO_BENCH_SMOKE=1`` for the
CI-sized run; set ``REPRO_BENCH_BASELINE=<path>`` to additionally gate
against a previous run's numbers (same-mode timings within 3x — CI
machines vary — and exact served/sent accounting).
"""

import json
import os
import time
from pathlib import Path

from repro.evalsuite.modules_corpus import synthetic_module_source
from repro.modules import parse_module
from repro.robustness.loadgen import LoadConfig, run_load
from repro.robustness.server import ServeConfig, start_server_in_thread
from repro.robustness.serveclient import ServeClient

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENT_LEVELS = (1, 4) if SMOKE else (1, 8, 64)
REQUESTS_PER_CLIENT = 16 if SMOKE else 48
CHAINS, DEPTH = (2, 10) if SMOKE else (4, 25)
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def test_bench_serve_scaling_and_cache(tmp_path):
    sock = str(tmp_path / "bench.sock")
    config = ServeConfig(
        socket_path=sock,
        jobs=4,
        queue_limit=256,  # the bench measures latency, not shedding
    )
    payload = {
        "benchmark": "serve",
        "smoke": SMOKE,
        "jobs": config.jobs,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "scaling": {},
    }
    with start_server_in_thread(config) as handle:
        for clients in CLIENT_LEVELS:
            report = run_load(
                LoadConfig(
                    socket_path=sock,
                    clients=clients,
                    requests=REQUESTS_PER_CLIENT,
                    seed=clients,  # deterministic, distinct per level
                    ill_rate=0.0,
                    deep_rate=0.0,
                )
            )
            assert report.violations == []
            assert report.served == clients * REQUESTS_PER_CLIENT
            latency = report.percentiles()
            payload["scaling"][str(clients)] = {
                "served": report.served,
                "throughput_rps": round(report.throughput_rps, 1),
                "p50_ms": latency["p50"],
                "p95_ms": latency["p95"],
                "p99_ms": latency["p99"],
            }

        # -- cold vs warm module round-trip through the server ----------
        source = synthetic_module_source(chains=CHAINS, depth=DEPTH)
        bindings = len(parse_module(source).bindings)
        with ServeClient(socket_path=sock) as client:
            started = time.perf_counter()
            cold = client.request("module", source=source, stats=True)
            cold_s = time.perf_counter() - started
            assert cold["ok"] and cold["passed"] == bindings
            assert cold["cached"] == 0

            started = time.perf_counter()
            warm = client.request("module", source=source, stats=True)
            warm_s = time.perf_counter() - started
            assert warm["ok"] and warm["cached"] == bindings

        # The warm re-check does no inference; it must beat the cold
        # check even through the full wire round-trip.
        assert warm_s < cold_s, (warm_s, cold_s)
        payload["module_roundtrip"] = {
            "bindings": bindings,
            "cold_seconds": round(cold_s, 6),
            "warm_seconds": round(warm_s, 6),
            "warm_cache_hits": warm["cached"],
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
        }

        # Nothing was shed or lost across the whole bench.
        counts = handle.server.counts
        assert counts["shed"] == 0 and counts["internal"] == 0

    _compare_baseline(payload)
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _compare_baseline(payload: dict) -> None:
    """Opt-in regression gate against a previous run's numbers."""
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline_path:
        return
    baseline = json.loads(Path(baseline_path).read_text())
    if payload["smoke"] != baseline["smoke"]:
        return  # cross-mode sizes differ; only same-mode timings compare
    for level, numbers in baseline["scaling"].items():
        if level not in payload["scaling"]:
            continue
        current = payload["scaling"][level]
        assert current["served"] == numbers["served"], level
        if numbers["p50_ms"] > 0:
            assert current["p50_ms"] / numbers["p50_ms"] <= 3.0, (
                level,
                current["p50_ms"],
                numbers["p50_ms"],
            )
        if numbers["throughput_rps"] > 0:
            assert current["throughput_rps"] / numbers["throughput_rps"] >= 1 / 3, (
                level,
                current["throughput_rps"],
                numbers["throughput_rps"],
            )
