"""Tracer overhead on the Figure-2 sweep: off vs disabled vs on vs JSONL.

The observability layer's contract is that *not* using it is free: every
instrumentation site is guarded by ``tracer is not None and
tracer.enabled``, so a pipeline built with ``tracer=None`` (the default)
or with the shared :data:`NULL_TRACER` must run at the same speed as the
uninstrumented engine did.  This bench measures the full Figure-2
inference sweep under four configurations and writes the numbers to
``BENCH_observability.json`` at the repo root:

* ``off``      — ``tracer=None`` (the baseline every guard short-circuits);
* ``disabled`` — ``NULL_TRACER`` passed explicitly (``enabled`` is False);
* ``enabled``  — a live :class:`Tracer` buffering spans/events in memory;
* ``jsonl``    — a live tracer streaming every event to a JSONL file.

The acceptance bar is that ``disabled`` costs < 5% over ``off``.  Runs
are interleaved (one pass per mode per repeat, minimum taken) so a
machine-load spike hits all modes alike rather than biasing one.

Set ``REPRO_BENCH_SMOKE=1`` for the quick CI variant; the <5% assertion
holds in both modes.
"""

import json
import os
import time
from pathlib import Path

from repro.core.errors import GIError
from repro.core.infer import Inferencer
from repro.evalsuite.figure2 import FIGURE2, figure2_env
from repro.observability import NULL_TRACER, JsonlWriter, Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 3 if SMOKE else 9
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"

ENV = figure2_env()
TERMS = [example.term for example in FIGURE2]


def _sweep(tracer) -> int:
    """Infer every Figure-2 term under ``tracer``; returns accept count."""
    inferencer = Inferencer(ENV, tracer=tracer)
    accepted = 0
    for term in TERMS:
        try:
            inferencer.infer(term)
            accepted += 1
        except GIError:
            pass
    return accepted


def _timed_sweep(tracer_factory) -> tuple[int, float]:
    tracer = tracer_factory()
    start = time.perf_counter()
    accepted = _sweep(tracer)
    return accepted, time.perf_counter() - start


def test_bench_tracer_overhead(tmp_path):
    jsonl_path = tmp_path / "sweep.jsonl"

    def jsonl_tracer():
        # Re-truncate per pass so every repeat writes the same volume.
        return Tracer(sink=JsonlWriter(open(jsonl_path, "w", encoding="utf-8")))

    modes = {
        "off": lambda: None,
        "disabled": lambda: NULL_TRACER,
        "enabled": Tracer,
        "jsonl": jsonl_tracer,
    }
    times = {name: [] for name in modes}
    accepts = set()
    for _ in range(REPEATS):
        for name, factory in modes.items():
            accepted, seconds = _timed_sweep(factory)
            accepts.add(accepted)
            times[name].append(seconds)

    # Every mode must agree on the sweep's verdicts — tracing is
    # observation, never behaviour.
    assert len(accepts) == 1, accepts

    best = {name: min(samples) for name, samples in times.items()}
    disabled_overhead_pct = 100.0 * (best["disabled"] - best["off"]) / best["off"]

    # The acceptance bar: a disabled tracer is within noise of no tracer.
    assert disabled_overhead_pct < 5.0, (best["disabled"], best["off"])

    payload = {
        "benchmark": "tracer_overhead",
        "smoke": SMOKE,
        "examples": len(TERMS),
        "accepted": accepts.pop(),
        "repeats": REPEATS,
        "off_seconds": round(best["off"], 6),
        "disabled_seconds": round(best["disabled"], 6),
        "enabled_seconds": round(best["enabled"], 6),
        "jsonl_seconds": round(best["jsonl"], 6),
        "disabled_overhead_pct": round(disabled_overhead_pct, 2),
        "enabled_overhead_pct": round(
            100.0 * (best["enabled"] - best["off"]) / best["off"], 2
        ),
        "jsonl_overhead_pct": round(
            100.0 * (best["jsonl"] - best["off"]) / best["off"], 2
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
