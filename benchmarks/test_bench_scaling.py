"""Scaling benchmarks: inference time vs program size.

Not a table in the paper — the paper's implementation claim is that GI
"easily integrates in a pre-existing constraint-based type inference
engine" with modest overhead; these benches quantify our implementation's
scaling on five workload shapes, including a pipeline that performs an
impredicative instantiation at every step.
"""

import pytest

from repro.core import Inferencer
from repro.evalsuite.figure2 import figure2_env
from repro.evalsuite.workloads import (
    application_chain,
    impredicative_pipeline,
    lambda_tower,
    let_chain,
    mixed_program,
    wide_application,
)

ENV = figure2_env()
SIZES = [8, 32, 128]


@pytest.mark.parametrize("size", SIZES)
def test_bench_application_chain(benchmark, size):
    term = application_chain(size)
    gi = Inferencer(ENV)
    result = benchmark(lambda: gi.infer(term).type_)
    assert str(result) == "Int"


@pytest.mark.parametrize("size", SIZES)
def test_bench_let_chain(benchmark, size):
    term = let_chain(size)
    gi = Inferencer(ENV)
    result = benchmark(lambda: gi.infer(term).type_)
    assert str(result) == "Int"


@pytest.mark.parametrize("size", [8, 32])
def test_bench_lambda_tower(benchmark, size):
    term = lambda_tower(size)
    gi = Inferencer(ENV)
    result = benchmark(lambda: gi.infer(term).type_)
    assert str(result) == "Int"


@pytest.mark.parametrize("size", SIZES)
def test_bench_impredicative_pipeline(benchmark, size):
    term = impredicative_pipeline(size)
    gi = Inferencer(ENV)
    result = benchmark(lambda: gi.infer(term).type_)
    assert str(result) == "[forall a. a -> a]"


@pytest.mark.parametrize("size", [8, 32])
def test_bench_wide_application(benchmark, size):
    term = wide_application(size)
    gi = Inferencer(ENV)
    benchmark(lambda: gi.infer(term).type_)


@pytest.mark.parametrize("size", [10, 40])
def test_bench_mixed_program(benchmark, size):
    term = mixed_program(size, seed=size)
    gi = Inferencer(ENV)
    benchmark(lambda: gi.infer(term).type_)


def test_scaling_is_roughly_linear(benchmark):
    """Sanity: doubling the impredicative pipeline roughly doubles the
    constraint count (no accidental quadratic blow-up in generation)."""
    gi = Inferencer(ENV)
    benchmark(lambda: gi.infer(impredicative_pipeline(16)).type_)
    from repro.core.generate import Generator

    def constraints_for(size: int) -> int:
        generator = Generator()
        _, constraints = generator.gen(ENV, impredicative_pipeline(size))

        def count(cs) -> int:
            from repro.core.constraints import Gen, Quant

            total = 0
            for c in cs:
                total += 1
                if isinstance(c, Gen):
                    total += count(c.scheme.constraints)
                elif isinstance(c, Quant):
                    total += count(c.wanteds)
            return total

        return count(constraints)

    small, large = constraints_for(16), constraints_for(32)
    assert large <= 2.5 * small
