"""The instantiation-policy evaluation grid over the ported GHC
``tc211.hs`` corpus.

GHC's ``tc211`` test is *the* impredicativity litmus file: lists of
``forall a. a -> a`` elements built with annotated ``(:)``, bare
lambdas under a result annotation, and result-type-driven resolution.
Each row here is one of those shapes re-expressed over the Figure-1/2
environment; the checked-in twins live in ``tests/corpus/`` (a sync
test keeps the two lists identical).

:func:`policy_matrix` runs every row through every system that has a
meaningful instantiation-policy axis (:data:`~repro.baselines.registry.
POLICY_SYSTEMS`) under every point of the eager/lazy × deep/shallow
grid, producing the acceptance table the stability discussion in
DESIGN.md refers to — most rows are policy-invariant, and the rows that
flip (`T6` under lazy, `T7` under deep) flip exactly where the
stability paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import POLICY_SYSTEMS, SYSTEMS, SystemOutcome
from repro.core.env import Environment
from repro.core.policy import POLICIES, InstantiationPolicy
from repro.core.terms import Term
from repro.syntax import parse_term


@dataclass(frozen=True)
class PolicyExample:
    """One tc211-derived row of the policy grid."""

    key: str
    source: str
    note: str = ""

    @property
    def term(self) -> Term:
        return parse_term(self.source)


#: The ported tc211 family.  ``T1``–``T5`` probe impredicative list
#: construction (annotated cons, checked lambda, guarded head/tail,
#: result- and argument-side sigma); ``T6`` is the lazy-instantiation
#: flip, ``T7`` the deep-skolemisation flip (Figure 2's E1).
TC211: tuple[PolicyExample, ...] = (
    PolicyExample(
        "T1", "(id : ids :: [forall a. a -> a])", "annotated (:) at sigma"
    ),
    PolicyExample(
        "T2", "((\\x -> x) : ids :: [forall a. a -> a])", "lambda checked at sigma"
    ),
    PolicyExample(
        "T3", "head ids : tail ids", "unannotated, guarded by tail ids"
    ),
    PolicyExample(
        "T4", "(single id :: [forall a. a -> a])", "result-type-driven"
    ),
    PolicyExample(
        "T5", "single (id :: forall a. a -> a)", "argument-side sigma"
    ),
    PolicyExample(
        "T6", "let f = id in (f :: forall a. a -> a)", "flips under lazy"
    ),
    PolicyExample(
        "T7", "k h lst", "flips under deep (Figure 2 E1)"
    ),
)


def policy_matrix(
    env: Environment | None = None,
    budget=None,
    systems: tuple[str, ...] = POLICY_SYSTEMS,
    policies: tuple[InstantiationPolicy, ...] = POLICIES,
) -> dict[str, dict[str, dict[str, SystemOutcome]]]:
    """``{policy-name: {system: {row-key: SystemOutcome}}}``.

    Unlike the differential oracles (which compare each system's own
    *published* configuration), every cell here runs the backend under
    the named policy explicitly — the point is how acceptance moves as
    the policy moves, per system."""
    if env is None:
        from repro.evalsuite.figure2 import figure2_env

        env = figure2_env()
    return {
        policy.name: {
            name: {
                example.key: SYSTEMS[name].run(
                    example.term, env, budget=budget, policy=policy
                )
                for example in TC211
            }
            for name in systems
        }
        for policy in policies
    }
