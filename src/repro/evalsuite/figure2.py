"""The example corpus of Figure 2, with the paper's expected results.

Thirty examples (A1–E3) from the impredicativity literature, each with the
✓/No verdict Figure 2 reports for GI, MLF, HMF, FPH and HML, and — where
the paper states one — the type GI infers.

The ``GI`` and ``HMF`` columns of the regenerated table are *measured* by
running our implementations; the ``MLF``/``FPH``/``HML`` columns are
reference data from the paper (those systems are third-party and were not
implemented by the paper's authors either; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.env import Environment
from repro.core.terms import Term
from repro.syntax.parser import parse_term, parse_type
from repro.evalsuite.prelude import figure1_env

SYSTEMS = ("GI", "MLF", "HMF", "FPH", "HML")


@dataclass(frozen=True)
class Example:
    """One row of Figure 2."""

    key: str
    source: str
    expected: dict[str, bool]
    """Paper verdict per system (True = ✓)."""

    gi_type: str | None = None
    """The type the paper says GI infers, when stated."""

    note: str = ""

    @property
    def term(self) -> Term:
        return parse_term(self.source)

    @property
    def group(self) -> str:
        return self.key[0]


def _row(key: str, source: str, verdicts: str, gi_type: str | None = None, note: str = "") -> Example:
    """``verdicts`` is five characters, ``y``/``n``, in SYSTEMS order."""
    expected = {system: flag == "y" for system, flag in zip(SYSTEMS, verdicts)}
    return Example(key, source, expected, gi_type, note)


FIGURE2: tuple[Example, ...] = (
    # A — polymorphic instantiation
    _row("A1", r"\x y -> y", "yyyyy", gi_type="forall a b. a -> b -> b",
         note="MLF infers (b ⩾ ∀c. c → c) ⇒ a → b; GI infers a → b → b"),
    _row("A2", "choose id", "yyyyy", gi_type="forall a. (a -> a) -> a -> a",
         note="FPH, HMF and GI infer (a → a) → a → a"),
    _row("A3", "choose [] ids", "yyyyy", gi_type="[forall a. a -> a]"),
    _row("A4", r"\(x :: forall a. a -> a) -> x x", "yyyyy",
         gi_type="forall b. (forall a. a -> a) -> b -> b",
         note="MLF infers (∀a.a→a)→(∀a.a→a); GI infers (∀a.a→a)→b→b"),
    _row("A5", "id auto", "yyyyy",
         gi_type="(forall a. a -> a) -> (forall a. a -> a)"),
    _row("A6", "id auto'", "yyyyy",
         gi_type="forall b. (forall a. a -> a) -> b -> b"),
    _row("A7", "choose id auto", "yynny",
         gi_type="(forall a. a -> a) -> (forall a. a -> a)"),
    _row("A8", "choose id auto'", "nynny",
         note="GI needs an annotation on id :: (∀a.a→a) → (∀a.a→a)"),
    _row("A9", "f (choose id) ids", "nynyy",
         note="f :: ∀a. (a → a) → [a] → a; GI needs an annotation on id"),
    _row("A10", "poly id", "yyyyy"),
    _row("A11", r"poly (\x -> x)", "yyyyy"),
    _row("A12", r"id poly (\x -> x)", "yyyyy", gi_type="(Int, Bool)"),
    # B — inference of polymorphic arguments
    _row("B1", r"\f -> (f 1, f True)", "nnnnn",
         note="all systems require an annotation on f :: ∀a. a → a"),
    _row("B2", r"\xs -> poly (head xs)", "nynnn",
         note="all systems except MLF require annotated xs :: [∀a. a → a]"),
    # C — functions on polymorphic lists
    _row("C1", "length ids", "yyyyy", gi_type="Int"),
    _row("C2", "tail ids", "yyyyy", gi_type="[forall a. a -> a]"),
    _row("C3", "head ids", "yyyyy", gi_type="forall a. a -> a"),
    _row("C4", "single id", "yyyyy", gi_type="forall a. [a -> a]"),
    _row("C5", "id : ids", "yynyy", gi_type="[forall a. a -> a]"),
    _row("C6", r"(\x -> x) : ids", "yynyy", gi_type="[forall a. a -> a]"),
    _row("C7", "single inc ++ single id", "yyyyy", gi_type="[Int -> Int]"),
    _row("C8", "g (single id) ids", "nynyy",
         note="g :: ∀a. [a] → [a] → a; GI needs single id :: [∀a. a → a]"),
    _row("C9", "map poly (single id)", "nyyyy",
         note="GI needs an annotation single id :: [∀a. a → a]"),
    _row("C10", "map head (single ids)", "yyyyy", gi_type="[forall a. a -> a]"),
    # D — application functions
    _row("D1", "app poly id", "yyyyy", gi_type="(Int, Bool)"),
    _row("D2", "revapp id poly", "yyyyy", gi_type="(Int, Bool)"),
    _row("D3", "runST argST", "yyyyy", gi_type="Int"),
    _row("D4", "app runST argST", "yyyyy", gi_type="Int"),
    _row("D5", "revapp argST runST", "yyyyy", gi_type="Int"),
    # E — η-expansion
    _row("E1", "k h lst", "nnnnn",
         note="h :: Int → ∀a. a → a; k :: ∀a. a → [a] → a; lst :: [∀a. Int → a → a]"),
    _row("E2", r"k (\x -> h x) lst", "yynyy", gi_type="forall a. Int -> a -> a"),
    _row("E3", r"r (\x y -> y)", "nynnn",
         note="r :: (∀a. a → ∀b. b → b) → Int"),
)

BY_KEY: dict[str, Example] = {example.key: example for example in FIGURE2}

# Annotated repairs for rows GI rejects (where a valid System F typing
# exists).  Used by tests to check each suggested fix really works.
#
# Note on A8/A9: the paper's footnote says "GI needs an annotation on
# id :: (∀a.a→a) → (∀a.a→a) in the previous two examples".  For A9 the
# repair works once the annotation is placed on the partial application
# ``choose id`` (an un-annotated nullary ``auto'``/``choose id`` can only
# instantiate its own quantifier monomorphically).  For A8 *no* annotation
# can help: ``choose id auto'`` demands a single type σ with
# ``σ→σ ~ (∀a.a→a)→(τ→τ)``, i.e. ``∀a.a→a = τ→τ`` — unsatisfiable with
# invariant constructors in plain System F types.  Only MLF and HML accept
# A8 (via bounded/flexible quantification), exactly as Figure 2 reports;
# there is nothing to repair inside GI.  EXPERIMENTS.md records this.
REPAIRS: dict[str, str] = {
    "A9": "f (choose id :: (forall a. a -> a) -> (forall a. a -> a)) ids",
    "B1": r"\(f :: forall a. a -> a) -> (f 1, f True)",
    "B2": r"\(xs :: [forall a. a -> a]) -> poly (head xs)",
    "C8": "g (single id :: [forall a. a -> a]) ids",
    "C9": "map poly (single id :: [forall a. a -> a])",
    "E1": r"k (\x -> h x) lst",
}


def figure2_env() -> Environment:
    """The environment the Figure 2 examples are typed in."""
    env = figure1_env()
    return env.extended("$", parse_type("forall a b. (a -> b) -> a -> b"))


#: The executable (measured) columns of the extended backend matrix, in
#: display order.  :data:`SYSTEMS` above stays the *paper's* column set;
#: these are the systems this repository actually runs.
MEASURED_SYSTEMS: tuple[str, ...] = (
    "GI",
    "HMF",
    "HMF-N",
    "HM",
    "RankN",
    "FreezeML",
    "QuickLook",
)


def measured_matrix(
    env: Environment | None = None,
    budget=None,
    systems: tuple[str, ...] = MEASURED_SYSTEMS,
):
    """``{system: {row-key: SystemOutcome}}`` over the Figure-2 rows.

    Each cell is the three-valued outcome of one backend on one row, so
    renderers can distinguish a rejection from a budget blowup."""
    from repro.baselines.registry import SYSTEMS as REGISTRY

    if env is None:
        env = figure2_env()
    return {
        name: {
            example.key: REGISTRY[name].run(example.term, env, budget=budget)
            for example in FIGURE2
        }
        for name in systems
    }
