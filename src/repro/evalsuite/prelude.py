"""The standard environment of Figure 1 (plus Figure 2's extra bindings).

Every function used by the paper's examples, with exactly the signatures
given in Figure 1 and in the footnotes of Figure 2.  List constructors are
bound under the spellings ``nil`` / ``cons`` (and ``single`` etc.); the
parser's ``[]`` / ``:`` sugar resolves to these names.
"""

from __future__ import annotations

from repro.core.env import DataCon, Environment
from repro.core.types import (
    BOOL,
    CHAR,
    INT,
    TCon,
    TVar,
    Type,
    forall,
    fun,
    list_of,
    tuple_of,
)

_a = TVar("a")
_b = TVar("b")
_c = TVar("c")
_p = TVar("p")
_q = TVar("q")
_s = TVar("s")
_v = TVar("v")

ID_TYPE: Type = forall(["a"], fun(_a, _a))
"""``∀a. a → a`` — the type that impredicativity examples revolve around."""


def ST(state: Type, value: Type) -> Type:
    """The ``ST s v`` constructor of the runST example."""
    return TCon("ST", (state, value))


def figure1_env() -> Environment:
    """The environment of Figure 1, extended with Figure 2's helpers."""
    bindings: dict[str, Type] = {
        # Lists.
        "head": forall(["p"], fun(list_of(_p), _p)),
        "tail": forall(["p"], fun(list_of(_p), list_of(_p))),
        "nil": forall(["p"], list_of(_p)),
        "cons": forall(["p"], fun(_p, list_of(_p), list_of(_p))),
        "single": forall(["p"], fun(_p, list_of(_p))),
        "append": forall(["p"], fun(list_of(_p), list_of(_p), list_of(_p))),
        "length": forall(["p"], fun(list_of(_p), INT)),
        # Functions.
        "id": ID_TYPE,
        "inc": fun(INT, INT),
        "choose": forall(["a"], fun(_a, _a, _a)),
        "poly": fun(ID_TYPE, tuple_of(INT, BOOL)),
        "auto": fun(ID_TYPE, ID_TYPE),
        "auto'": forall(["b"], fun(ID_TYPE, _b, _b)),
        "ids": list_of(ID_TYPE),
        "map": forall(["p", "q"], fun(fun(_p, _q), list_of(_p), list_of(_q))),
        "app": forall(["a", "b"], fun(fun(_a, _b), _a, _b)),
        "revapp": forall(["a", "b"], fun(_a, fun(_a, _b), _b)),
        "flip": forall(["a", "b", "c"], fun(fun(_a, _b, _c), _b, _a, _c)),
        "runST": forall(["v"], fun(forall(["s"], ST(_s, _v)), _v)),
        "argST": forall(["s"], ST(_s, INT)),
        # Figure 2 footnote helpers.
        #   A9:  f :: ∀a. (a → a) → [a] → a
        "f": forall(["a"], fun(fun(_a, _a), list_of(_a), _a)),
        #   C8:  g :: ∀a. [a] → [a] → a
        "g": forall(["a"], fun(list_of(_a), list_of(_a), _a)),
        #   E:   h :: Int → ∀a. a → a
        "h": fun(INT, forall(["a"], fun(_a, _a))),
        #   E:   k :: ∀a. a → [a] → a
        "k": forall(["a"], fun(_a, list_of(_a), _a)),
        #   E:   lst :: [∀a. Int → a → a]
        "lst": list_of(forall(["a"], fun(INT, _a, _a))),
        #   E3:  r :: (∀a. a → ∀b. b → b) → Int
        "r": fun(forall(["a"], fun(_a, forall(["b"], fun(_b, _b)))), INT),
        # Section 2.3's g, renamed to avoid clashing with C8's g:
        #   g23 :: ((∀a. a → a) → (Char, Bool)) → Int
        "g23": fun(fun(ID_TYPE, tuple_of(CHAR, BOOL)), INT),
        # Misc literals-as-functions used around the paper.
        "not": fun(BOOL, BOOL),
        "even": fun(INT, BOOL),
        "plus": fun(INT, INT, INT),
        "fst": forall(["a", "b"], fun(tuple_of(_a, _b), _a)),
        "snd": forall(["a", "b"], fun(tuple_of(_a, _b), _b)),
        "pair": forall(["a", "b"], fun(_a, _b, tuple_of(_a, _b))),
        "const": forall(["a", "b"], fun(_a, _b, _a)),
        "undefined": forall(["a"], _a),
    }
    env = Environment(bindings)
    # Data constructors for case expressions over lists, pairs and Maybe.
    env = env.with_datacon(
        DataCon("Nil", ("p",), (), (), "[]")
    ).with_datacon(
        DataCon("Cons", ("p",), (), (TVar("p"), list_of(TVar("p"))), "[]")
    ).with_datacon(
        DataCon("Pair", ("a", "b"), (), (TVar("a"), TVar("b")), "(,)")
    ).with_datacon(
        DataCon("Nothing", ("a",), (), (), "Maybe")
    ).with_datacon(
        DataCon("Just", ("a",), (), (TVar("a"),), "Maybe")
    )
    env = env.extended_many(
        {
            "Nothing": forall(["a"], TCon("Maybe", (_a,))),
            "Just": forall(["a"], fun(_a, TCon("Maybe", (_a,)))),
        }
    )
    return env
