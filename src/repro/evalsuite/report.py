"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from typing import Sequence

CHECK = "✓"
CROSS = "No"
UNAVAIL = "?"


def mark(accepted: bool) -> str:
    return CHECK if accepted else CROSS


def mark_outcome(outcome) -> str:
    """Render a three-valued :class:`~repro.baselines.SystemOutcome`:
    accepted, rejected, or unavailable (budget/crash — not a verdict)."""
    if outcome.accepted:
        return CHECK
    return CROSS if outcome.rejected else UNAVAIL


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    normalized = [[str(cell) for cell in row] for row in rows]
    for row in normalized:
        if len(row) != columns:
            raise ValueError("row width does not match header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in normalized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
