"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from typing import Sequence

CHECK = "✓"
CROSS = "No"
UNAVAIL = "?"


def mark(accepted: bool) -> str:
    return CHECK if accepted else CROSS


def mark_outcome(outcome) -> str:
    """Render a three-valued :class:`~repro.baselines.SystemOutcome`:
    accepted, rejected, or unavailable (budget/crash — not a verdict)."""
    if outcome.accepted:
        return CHECK
    return CROSS if outcome.rejected else UNAVAIL


def render_policy_matrix(matrix, examples, systems: Sequence[str]) -> str:
    """Render the instantiation-policy grid: one acceptance table per
    policy (rows = tc211 examples, columns = policy-axis systems), in
    the grid's own order.

    ``matrix`` is :func:`repro.evalsuite.policies.policy_matrix` output:
    ``{policy-name: {system: {row-key: SystemOutcome}}}``."""
    sections = []
    for policy_name, by_system in matrix.items():
        headers = ["id", "example"] + list(systems)
        rows = []
        for example in examples:
            rows.append(
                [example.key, example.source[:40]]
                + [mark_outcome(by_system[name][example.key]) for name in systems]
            )
        sections.append(
            render_table(headers, rows, title=f"policy {policy_name}")
        )
    return "\n\n".join(sections)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    normalized = [[str(cell) for cell in row] for row in rows]
    for row in normalized:
        if len(row) != columns:
            raise ValueError("row width does not match header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in normalized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
