"""The Section 5 compatibility study, on a simulated Stackage corpus.

The paper modified GHC to impose GI's restrictions and rebuilt all of
Stackage: of 2,400 packages, 609 used ``RankNTypes``; 75 required manual
changes, **all of which were η-expansions**; one (``singletons``) would
need larger changes because Template Haskell generates un-η-expanded
code; two more failed for unrelated reasons.

We have neither GHC nor Stackage offline, so the corpus is *synthetic*
(seeded, deterministic) — but the **analysis is real**: every generated
declaration is type-checked with our GI implementation; rejected
declarations are mechanically repaired (η-expansion of variable
arguments, then pushing the result annotation inwards) and re-checked.
Category proportions are calibrated to the paper's scale; the *verdicts*
(which declarations fail, which repairs fix them) are measured, not
scripted — a generator bug that produced GI-compatible "variance" code
would show up as a count of zero, not silently match the paper.

Declaration patterns follow the categories the paper names:

* plain Hindley–Milner code (most declarations in most packages);
* GI-friendly rank-n code: ``runST $ …``, ``poly (λx. x)``-style calls,
  lens-like aliases stored in lists;
* SYB-style definitions with a ``∀`` to the right of an arrow, for which
  the paper added a special case (we repair by pushing the annotation
  inwards, the same transformation GHC's special case performs);
* variance-dependent call sites (``flip f`` where ``f`` has a nested
  quantifier) that genuinely need η-expansion under GI;
* a Template-Haskell-style package whose failing code is *generated*, so
  η-expansion cannot be applied at the source level;
* unrelated build failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.core.env import Environment
from repro.core.errors import GIError
from repro.core.infer import Inferencer
from repro.core.terms import Ann, AnnLam, App, Lam, Term, Var, app
from repro.core.types import Forall, Type, arrow_parts, is_arrow, strip_forall
from repro.syntax.parser import parse_term, parse_type
from repro.evalsuite.figure2 import figure2_env


class Verdict(Enum):
    """Per-package outcome of the compatibility check."""

    OK = "compiles unchanged"
    ETA = "needs η-expansion"
    LARGER = "needs larger changes"
    UNRELATED = "fails for unrelated reasons"


@dataclass(frozen=True)
class Declaration:
    """One top-level binding: ``name :: signature ; name = body``."""

    name: str
    signature: str
    body: str
    generated: bool = False
    """Template-Haskell-style: produced by a code generator, so manual
    source repairs are not applicable."""


@dataclass
class Package:
    """A synthetic package: a name, declarations, RankNTypes usage."""

    name: str
    uses_rankntypes: bool
    declarations: list[Declaration] = field(default_factory=list)
    broken_build: bool = False


@dataclass
class PackageReport:
    package: Package
    verdict: Verdict
    failed: list[str] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)


@dataclass
class StudyResult:
    """The Section 5 table."""

    total: int
    rankntypes: int
    ok: int
    eta: int
    larger: int
    unrelated: int
    reports: list[PackageReport] = field(default_factory=list)

    def rows(self) -> list[tuple[str, int]]:
        return [
            ("packages in corpus", self.total),
            ("packages using RankNTypes", self.rankntypes),
            ("RankNTypes packages compiling unchanged", self.ok),
            ("packages needing manual changes (all η-expansions)", self.eta),
            ("packages needing larger changes (TH-generated code)", self.larger),
            ("packages failing for unrelated reasons", self.unrelated),
        ]


# ----------------------------------------------------------------------
# Corpus generation
# ----------------------------------------------------------------------

_PLAIN_TEMPLATES = [
    ("length2", "forall a. [a] -> Int", r"\xs -> plus (length xs) (length xs)"),
    ("twice", "forall a. (a -> a) -> a -> a", r"\f x -> f (f x)"),
    ("compose2", "Int -> Int", r"\x -> inc (inc x)"),
    ("swap2", "forall a b. (a, b) -> (b, a)", r"\p -> pair (snd p) (fst p)"),
    ("heads", "forall a. [[a]] -> [a]", r"\xs -> map head xs"),
    ("apply1", "forall a b. (a -> b) -> a -> b", r"\f x -> f x"),
    ("constK", "forall a b. a -> b -> a", r"\x y -> x"),
]

# GI-friendly RankNTypes usage: accepted without changes.
_FRIENDLY_TEMPLATES = [
    ("runAction", "Int", "runST $ argST"),
    ("runBoth", "(Int, Int)", "pair (runST argST) (app runST argST)"),
    ("useIds", "forall a. a -> a", "head ids"),
    ("polyPair", "(Int, Bool)", r"poly (\x -> x)"),
    ("storeId", "[forall a. a -> a]", "id : ids"),
    ("allIds", "[forall a. a -> a]", "tail ids ++ ids"),
    ("applyPoly", "(Int, Bool)", "app poly id"),
    ("lensList", "[forall a. a -> a]", r"(\x -> x) : ids"),
]

# SYB style: a ∀ to the right of an arrow in a *definition* signature.
_SYB_TEMPLATES = [
    ("gmapQ", "forall a. a -> (forall b. b -> b)", r"\x y -> y"),
    ("extQ", "forall a. a -> (forall b. b -> b -> b)", r"\x u v -> v"),
]

# Variance-dependent call sites: need η-expansion under GI.  Each fails
# with a structural Forall-vs-arrow error (all constructors are invariant,
# Section 5) and is fixed by η-expanding the offending variable argument.
_ETA_TEMPLATES = [
    ("flipped", "forall b. b -> Int -> b", "flip h"),
    ("variance", "Bool", "g24 h"),
    ("chosen", "Int -> Int -> Int", "choose inc2 h"),
]


def study_env() -> Environment:
    """The study's typing environment: Figure 1 plus variance helpers.

    ``h :: Int → ∀a. a → a`` comes from Figure 2's E group; ``g24`` and
    ``inc2`` mimic consumers expecting the η-expanded shape.
    """
    env = figure2_env()
    return env.extended_many(
        {
            "g24": parse_type("(Int -> Int -> Int) -> Bool"),
            "inc2": parse_type("Int -> Int -> Int"),
        }
    )


def generate_corpus(seed: int = 2018, size: int = 2400) -> list[Package]:
    """A deterministic synthetic corpus of ``size`` packages.

    609/2400 of the packages use RankNTypes; of those, the weights put
    ~12% in the variance-dependent category (the paper found 75/609) and
    one package in the TH-generated category.
    """
    rng = random.Random(seed)
    rank_count = round(size * 609 / 2400)
    packages: list[Package] = []
    eta_target = round(rank_count * 75 / 609)
    th_target = 1 if size >= 100 else 0
    unrelated_target = 2 if size >= 100 else 0

    # Assign special categories to distinct package indices.
    rank_indices = rng.sample(range(size), rank_count)
    rank_set = set(rank_indices)
    specials = rng.sample(rank_indices, eta_target + th_target)
    eta_set = set(specials[:eta_target])
    th_set = set(specials[eta_target:])
    unrelated_set = set(
        rng.sample([i for i in range(size) if i not in rank_set], unrelated_target)
    )

    for index in range(size):
        name = f"pkg-{index:04d}"
        package = Package(name, uses_rankntypes=index in rank_set)
        count = rng.randint(3, 8)
        for decl_index in range(count):
            template, signature, body = rng.choice(_PLAIN_TEMPLATES)
            package.declarations.append(
                Declaration(f"{template}_{decl_index}", signature, body)
            )
        if index in rank_set:
            for decl_index in range(rng.randint(1, 3)):
                template, signature, body = rng.choice(_FRIENDLY_TEMPLATES)
                package.declarations.append(
                    Declaration(f"{template}_{decl_index}", signature, body)
                )
            if rng.random() < 0.5:
                template, signature, body = rng.choice(_SYB_TEMPLATES)
                package.declarations.append(Declaration(template, signature, body))
        if index in eta_set:
            template, signature, body = rng.choice(_ETA_TEMPLATES)
            package.declarations.append(Declaration(template, signature, body))
        if index in th_set:
            template, signature, body = rng.choice(_ETA_TEMPLATES)
            package.declarations.append(
                Declaration(f"th_{template}", signature, body, generated=True)
            )
        if index in unrelated_set:
            package.broken_build = True
        packages.append(package)
    return packages


# ----------------------------------------------------------------------
# The analyzer: really type-check, really repair
# ----------------------------------------------------------------------


def eta_expand_var_args(term: Term) -> Term:
    """η-expand every bare-variable argument: ``f g`` becomes
    ``f (λx. g x)`` — the repair the paper reports for all 75 packages."""
    if isinstance(term, App):
        new_args = []
        for argument in term.args:
            if isinstance(argument, Var):
                new_args.append(Lam("eta_x", app(argument, Var("eta_x"))))
            else:
                new_args.append(eta_expand_var_args(argument))
        return app(eta_expand_var_args(term.head), *new_args)
    if isinstance(term, Lam):
        return Lam(term.var, eta_expand_var_args(term.body))
    if isinstance(term, AnnLam):
        return AnnLam(term.var, term.annotation, eta_expand_var_args(term.body))
    if isinstance(term, Ann):
        return Ann(eta_expand_var_args(term.expr), term.annotation)
    return term


def push_annotation_inward(term: Term, signature: Type) -> Term | None:
    """The paper's SYB special case: for ``f :: ∀ā. σ1 → … → ∀b̄.ρ`` with
    a matching lambda definition, annotate the lambda's body instead of
    the whole definition, so the nested quantifier is checked directly."""
    binders, body = strip_forall(signature)
    current: Term = term
    peeled: list[tuple[str, Type]] = []
    sig = body
    while isinstance(current, Lam) and is_arrow(sig):
        parameter, sig = arrow_parts(sig)
        peeled.append((current.var, parameter))
        current = current.body
    if not peeled or not isinstance(sig, Forall):
        return None
    rebuilt: Term = Ann(current, sig)
    for name, parameter in reversed(peeled):
        rebuilt = AnnLam(name, parameter, rebuilt)
    from repro.core.types import forall

    return Ann(rebuilt, forall(binders, body))


@dataclass
class Analyzer:
    """Runs the GI checker (plus mechanical repairs) over a corpus."""

    env: Environment

    def check_declaration(self, declaration: Declaration) -> tuple[bool, str | None]:
        """(accepted, repair) — repair is ``None`` (fine as-is), ``"eta"``
        or ``"special-case"``; raises ValueError if nothing helps."""
        signature = parse_type(declaration.signature)
        term = parse_term(declaration.body)
        inferencer = Inferencer(self.env)
        try:
            inferencer.infer(Ann(term, signature))
            return True, None
        except GIError:
            pass
        repaired = eta_expand_var_args(term)
        if repaired != term:
            try:
                inferencer.infer(Ann(repaired, signature))
                return False, "eta"
            except GIError:
                pass
        pushed = push_annotation_inward(term, signature)
        if pushed is not None:
            try:
                inferencer.infer(pushed)
                return False, "special-case"
            except GIError:
                pass
        raise ValueError(f"declaration {declaration.name} is unrepairable")

    def check_package(self, package: Package) -> PackageReport:
        if package.broken_build:
            return PackageReport(package, Verdict.UNRELATED)
        failed: list[str] = []
        repaired: list[str] = []
        needs_eta = False
        needs_larger = False
        for declaration in package.declarations:
            accepted, repair = self.check_declaration(declaration)
            if accepted:
                continue
            failed.append(declaration.name)
            if repair == "special-case":
                # The paper's GHC patch applies this automatically; it is
                # not a manual change.
                repaired.append(declaration.name)
                continue
            if declaration.generated:
                # η-expansion would have to happen inside generated code.
                needs_larger = True
                continue
            if repair == "eta":
                repaired.append(declaration.name)
                needs_eta = True
        if needs_larger:
            verdict = Verdict.LARGER
        elif needs_eta:
            verdict = Verdict.ETA
        else:
            verdict = Verdict.OK
        return PackageReport(package, verdict, failed, repaired)


def run_study(seed: int = 2018, size: int = 2400) -> StudyResult:
    """Generate the corpus, check every package, tabulate Section 5."""
    env = study_env()
    analyzer = Analyzer(env)
    packages = generate_corpus(seed, size)
    reports = [analyzer.check_package(package) for package in packages]
    rank = [r for r in reports if r.package.uses_rankntypes]
    return StudyResult(
        total=len(packages),
        rankntypes=len(rank),
        ok=sum(1 for r in rank if r.verdict is Verdict.OK),
        eta=sum(1 for r in rank if r.verdict is Verdict.ETA),
        larger=sum(1 for r in rank if r.verdict is Verdict.LARGER),
        unrelated=sum(1 for r in reports if r.verdict is Verdict.UNRELATED),
        reports=reports,
    )
