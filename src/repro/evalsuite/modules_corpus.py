"""Evaluation workloads expressed as real module files.

The Section 5 study and the Figure 2 examples were born as isolated
expressions checked against the Figure 1 prelude; this module renders
them — and a synthetic scaling workload — as *module source text* for
the module layer (:mod:`repro.modules`), so the evaluation exercises the
same code path a user's ``python -m repro module`` run does.

* :func:`package_module_source` turns one synthetic Stackage package
  (:class:`repro.evalsuite.stackage.Package`) into a module file whose
  declarations carry their signatures;
* :func:`stackage_fragment_source` is the corpus of GI-friendly
  RankNTypes fragments as a single module;
* :func:`synthetic_module_source` builds a deterministic ~``chains ×
  depth``-binding module of independent dependency chains — the workload
  behind the incremental-check benchmark, where editing one chain's leaf
  must invalidate exactly that chain and nothing else.
"""

from __future__ import annotations

from repro.evalsuite.stackage import _FRIENDLY_TEMPLATES, Declaration, Package


def declaration_source(declaration: Declaration) -> str:
    """One declaration as module text: signature line plus binding line."""
    return (
        f"{declaration.name} :: {declaration.signature}\n"
        f"{declaration.name} = {declaration.body}"
    )


def package_module_source(package: Package) -> str:
    """A synthetic Stackage package as one module file.

    Check it against :func:`repro.evalsuite.stackage.study_env` — the
    variance templates mention the study's extra helpers.
    """
    parts = [f"-- package {package.name}"]
    parts += [declaration_source(declaration) for declaration in package.declarations]
    return "\n\n".join(parts) + "\n"


def stackage_fragment_source() -> str:
    """Every GI-friendly RankNTypes fragment of the study, as a module."""
    parts = ["module StackageFragments where"]
    for name, signature, body in _FRIENDLY_TEMPLATES:
        parts.append(f"{name} :: {signature}\n{name} = {body}")
    return "\n\n".join(parts) + "\n"


# The chain steps cycle through these shapes; each consumes exactly the
# previous binding, so a chain is one dependency path and an edit at its
# leaf invalidates the whole chain and nothing outside it.
_STEP_SHAPES = (
    "single {prev}",
    "pair {prev} {prev}",
    "choose {prev} {prev}",
)


def synthetic_module_source(chains: int = 4, depth: int = 25) -> str:
    """A deterministic module of ``chains`` independent dependency chains.

    Chain ``c`` starts at an annotated integer leaf ``c{c}_0`` and builds
    ``depth - 1`` dependent bindings on top of it; two impredicative
    bindings (a stored polymorphic list and a ``runST $ …`` use) ride
    along to keep the workload honest about the paper's feature.  Total
    bindings: ``chains * depth + 2``.

    The leaf's declaration is the exact two lines
    ``c0_0 :: Int`` / ``c0_0 = 0``, so tests and benchmarks can dirty one
    chain with a plain string replacement (e.g. to ``Bool`` / ``True``
    for a type-changing edit, or ``= 7`` for a type-preserving one).
    """
    parts = ["module Synthetic where"]
    for chain in range(chains):
        parts.append(f"c{chain}_0 :: Int\nc{chain}_0 = {chain}")
        for step in range(1, depth):
            shape = _STEP_SHAPES[(chain + step) % len(_STEP_SHAPES)]
            body = shape.format(prev=f"c{chain}_{step - 1}")
            parts.append(f"c{chain}_{step} = {body}")
    parts.append("polyStore :: [forall a. a -> a]\npolyStore = id : ids")
    parts.append("runner :: Int\nrunner = runST $ argST")
    return "\n\n".join(parts) + "\n"
