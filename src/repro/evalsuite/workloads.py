"""Synthetic workload generators for the scaling benchmarks.

The paper's evaluation is qualitative (Figure 2, Section 5); these
workloads supply the quantitative side: how the constraint-based
implementation scales with program size, and how much the deferred
(constraint) machinery costs relative to plain Hindley-Milner programs.
"""

from __future__ import annotations

import random

from repro.core.terms import App, Lam, Let, Lit, Term, Var, app
from repro.syntax.parser import parse_term


def application_chain(depth: int) -> Term:
    """``inc (inc (... (inc 0)))`` — a pure instantiation/unification load."""
    term: Term = Lit(0)
    for _ in range(depth):
        term = app(Var("inc"), term)
    return term


def wide_application(width: int) -> Term:
    """``plusN x1 ... xN`` via nested pairs — one n-ary application with
    many arguments, stressing the classification and ω bookkeeping."""
    term: Term = Lit(1)
    for _ in range(width):
        term = app(Var("pair"), Lit(1), term)
    return term


def let_chain(depth: int) -> Term:
    """``let x1 = inc 0 in let x2 = inc x1 in ...`` — environment growth."""
    body: Term = Var(f"x{depth}") if depth else Lit(0)
    term = body
    for index in range(depth, 0, -1):
        previous = Var(f"x{index - 1}") if index > 1 else Lit(0)
        term = Let(f"x{index}", app(Var("inc"), previous), term)
    return term


def lambda_tower(depth: int) -> Term:
    """``λx1 ... xN. x1`` applied to N literals — binder pressure."""
    body: Term = Var("x1")
    term: Term = body
    for index in range(depth, 0, -1):
        term = Lam(f"x{index}", term)
    return app(term, *[Lit(i) for i in range(depth)])


def impredicative_pipeline(depth: int) -> Term:
    """``tail (tail (... ids))`` — every step re-solves a guarded
    impredicative instantiation against ``[∀a. a → a]``."""
    term: Term = Var("ids")
    for _ in range(depth):
        term = app(Var("tail"), term)
    return term


def deep_chain_term(depth: int) -> Term:
    """``λf. f 1 1 ... 1`` — one n-ary application whose result chain
    builds a deeply right-nested arrow type, stressing zonk/fuv depth and
    the occurs check on a single long spine."""
    body: Term = Var("f")
    for _ in range(depth):
        body = app(body, Lit(1))
    return Lam("f", body)


def defaulting_fan(width: int) -> Term:
    """``λh1 ... hM. pair (h1 0) (pair (h2 0) (... ))`` — every ``hi 0``
    defers an instantiation constraint on a distinct guarded variable
    until the enclosing lambda pins it down, producing a steady stream of
    defer/wake cycles (two per binder) without ever getting stuck."""
    body: Term = app(Var(f"h{width}"), Lit(0))
    for index in range(width - 1, 0, -1):
        body = app(Var("pair"), app(Var(f"h{index}"), Lit(0)), body)
    term: Term = body
    for index in range(width, 0, -1):
        term = Lam(f"h{index}", term)
    return term


def gen_chain_constraints(length: int):
    """A dependency chain of ``length`` deferred generalisation
    constraints, for the solver scheduling benchmark.

    The queue is ``[Gen_1, ..., Gen_N, u1 ~ Int]`` where ``Gen_i`` is
    blocked on the unrestricted variable ``u_i`` and releasing it emits
    ``u_{i+1} ~ Int`` — so exactly one deferred constraint becomes
    runnable at a time, in queue order.  A re-scanning solver revisits
    every still-blocked constraint per round (O(N²) pops); the
    variable-indexed wake-up queue pops each constraint O(1) times.

    Returns the constraint list; solve it with a fresh
    :class:`~repro.core.solver.Solver`.
    """
    from repro.core.constraints import Eq, Gen, Scheme
    from repro.core.sorts import Sort
    from repro.core.types import TCon, UVar

    int_ = TCon("Int", ())
    blockers = [UVar(f"gc{index}", Sort.U) for index in range(length + 1)]
    constraints = [
        Gen(
            Scheme((), (Eq(blockers[index + 1], int_),), int_),
            blockers[index],
        )
        for index in range(length)
    ]
    constraints.append(Eq(blockers[0], int_))
    return constraints


def fuzz_corpus(count: int, seed: int = 0) -> list[Term]:
    """``count`` terms from the conformance generator's seeded sweep —
    the same deterministic case list ``repro fuzz`` checks, usable as a
    realistic mixed workload (most terms well-typed, some rejections)."""
    from repro.conformance.generator import TermGenerator
    from repro.evalsuite.figure2 import figure2_env

    generator = TermGenerator(figure2_env())
    return [case.term for case in generator.cases(seed, count)]


def mixed_program(size: int, seed: int = 0) -> Term:
    """A random but deterministic program mixing all constructs."""
    rng = random.Random(seed)
    fragments = [
        "inc 0",
        "single id",
        "head ids",
        "poly (\\x -> x)",
        "runST argST",
        "length (tail ids)",
        "(single id :: [forall a. a -> a])",
    ]
    source = rng.choice(fragments)
    term = parse_term(source)
    for _ in range(size):
        choice = rng.randrange(3)
        if choice == 0:
            term = Let(f"v{rng.randrange(10**6)}", term, parse_term(rng.choice(fragments)))
        elif choice == 1:
            term = app(Var("pair"), term, parse_term(rng.choice(fragments)))
        else:
            term = app(Var("snd"), app(Var("pair"), Lit(0), term))
    return term
