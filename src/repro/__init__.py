"""guarded-impredicativity: a reproduction of *Guarded Impredicative
Polymorphism* (Serrano, Hage, Vytiniotis, Peyton Jones — PLDI 2018).

Public API highlights:

* :func:`repro.infer` / :class:`repro.Inferencer` — GI type inference;
* :mod:`repro.syntax` — parser and pretty printer for the surface language;
* :mod:`repro.systemf` — System F target language and elaboration;
* :mod:`repro.baselines` — Algorithm W and HMF baselines;
* :mod:`repro.evalsuite` — the paper's evaluation (Figure 2, Section 5).
"""

from repro.core import (
    Environment,
    GIError,
    InferenceResult,
    Inferencer,
    InferOptions,
    TypeError_,
    infer,
)

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "GIError",
    "InferOptions",
    "InferenceResult",
    "Inferencer",
    "TypeError_",
    "infer",
    "__version__",
]
