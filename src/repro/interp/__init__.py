"""Call-by-value interpreter for the source language."""

from repro.interp.machine import (
    DataValue,
    Env,
    EvalError,
    evaluate,
    from_python,
    prelude_env,
    run,
    to_python,
)

__all__ = [
    "DataValue",
    "Env",
    "EvalError",
    "evaluate",
    "from_python",
    "prelude_env",
    "run",
    "to_python",
]
