"""A small call-by-value interpreter for the source language.

Types never affect evaluation, so the same machine runs source programs
and (via :mod:`repro.systemf.erase`) elaborated System F programs — tests
use this to confirm elaboration preserves behaviour, and the examples use
it to actually *run* the programs whose types the paper discusses.

Values are Python objects: ints, bools, chars/strings, closures
(:class:`Closure` or any Python callable), tuples, and
:class:`DataValue` for constructor applications (lists are ``Cons``/
``Nil`` data values; :func:`from_python` / :func:`to_python` convert).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.errors import GIError
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)


class EvalError(GIError):
    """A runtime error (unbound variable, bad application, match failure)."""


@dataclass
class Closure:
    """A lambda paired with its defining environment."""

    var: str
    body: Term
    env: "Env"

    def __call__(self, argument: object) -> object:
        return evaluate(self.body, self.env.extended(self.var, argument))


@dataclass(frozen=True)
class DataValue:
    """A saturated data-constructor application."""

    constructor: str
    fields: tuple = ()

    def __str__(self) -> str:
        if self.constructor in ("Cons", "Nil"):
            try:
                return str([_show(value) for value in to_python(self)]).replace("'", "")
            except EvalError:
                pass
        if not self.fields:
            return self.constructor
        inner = " ".join(_show(field) for field in self.fields)
        return f"({self.constructor} {inner})"


class Env:
    """A persistent evaluation environment."""

    def __init__(self, bindings: Mapping[str, object] | None = None) -> None:
        self._bindings = dict(bindings or {})

    def lookup(self, name: str) -> object:
        try:
            return self._bindings[name]
        except KeyError:
            raise EvalError(f"unbound variable at runtime: `{name}`") from None

    def extended(self, name: str, value: object) -> "Env":
        child = Env(self._bindings)
        child._bindings[name] = value
        return child


def evaluate(term: Term, env: Env) -> object:
    """Evaluate a term to a value."""
    if isinstance(term, Var):
        return env.lookup(term.name)
    if isinstance(term, Lit):
        return term.value
    if isinstance(term, (Lam, AnnLam)):
        return Closure(term.var, term.body, env)
    if isinstance(term, Ann):
        return evaluate(term.expr, env)
    if isinstance(term, App):
        value = evaluate(term.head, env)
        for argument in term.args:
            arg_value = evaluate(argument, env)
            if not callable(value):
                raise EvalError(f"applying a non-function value: {_show(value)}")
            value = value(arg_value)
        return value
    if isinstance(term, Let):
        bound = evaluate(term.bound, env)
        return evaluate(term.body, env.extended(term.var, bound))
    if isinstance(term, Case):
        scrutinee = evaluate(term.scrutinee, env)
        data = _as_data(scrutinee)
        for alt in term.alts:
            if alt.constructor == data.constructor:
                branch_env = env
                for name, field in zip(alt.binders, data.fields):
                    branch_env = branch_env.extended(name, field)
                return evaluate(alt.rhs, branch_env)
        raise EvalError(f"non-exhaustive patterns: no case for {data.constructor}")
    raise TypeError(f"unknown term node: {term!r}")


def _as_data(value: object) -> DataValue:
    if isinstance(value, DataValue):
        return value
    raise EvalError(f"case on a non-data value: {_show(value)}")


# ----------------------------------------------------------------------
# Lists and tuples
# ----------------------------------------------------------------------

NIL = DataValue("Nil")


def cons(head: object, tail: object) -> DataValue:
    return DataValue("Cons", (head, tail))


def from_python(values) -> DataValue:
    """A Python iterable as a ``Cons``/``Nil`` list value."""
    result = NIL
    for value in reversed(list(values)):
        result = cons(value, result)
    return result


def to_python(value: object) -> list:
    """A ``Cons``/``Nil`` list value as a Python list."""
    result = []
    while isinstance(value, DataValue) and value.constructor == "Cons":
        result.append(value.fields[0])
        value = value.fields[1]
    if not (isinstance(value, DataValue) and value.constructor == "Nil"):
        raise EvalError("improper list")
    return result


def _show(value: object) -> str:
    if isinstance(value, Closure) or callable(value):
        return "<function>"
    if isinstance(value, DataValue) and value.constructor in ("Cons", "Nil"):
        try:
            return str(to_python(value))
        except EvalError:
            pass
    return str(value)


# ----------------------------------------------------------------------
# The prelude's runtime semantics (matching Figure 1's signatures)
# ----------------------------------------------------------------------


def _curry2(function: Callable) -> Callable:
    return lambda first: lambda second: function(first, second)


def _curry3(function: Callable) -> Callable:
    return lambda first: lambda second: lambda third: function(first, second, third)


def prelude_env() -> Env:
    """Runtime definitions for every Figure 1 binding.

    ``ST s a`` is modelled as a thunk (a nullary callable); ``runST``
    forces it — enough to observe the types *and* the behaviour of the
    celebrated ``runST $ argST`` example.
    """
    identity = lambda value: value
    bindings: dict[str, object] = {
        "id": identity,
        "inc": lambda value: value + 1,
        "not": lambda value: not value,
        "even": lambda value: value % 2 == 0,
        "plus": _curry2(lambda a, b: a + b),
        "choose": _curry2(lambda a, _b: a),
        "poly": lambda f: (f(0) + 1, f(True) and True),
        "auto": identity,
        "auto'": _curry2(lambda f, y: f(y)),
        "head": lambda xs: to_python(xs)[0],
        "tail": lambda xs: from_python(to_python(xs)[1:]),
        "nil": NIL,
        "cons": _curry2(cons),
        "single": lambda value: from_python([value]),
        "append": _curry2(lambda xs, ys: from_python(to_python(xs) + to_python(ys))),
        "length": lambda xs: len(to_python(xs)),
        "ids": from_python([identity, identity]),
        "map": _curry2(lambda f, xs: from_python([f(x) for x in to_python(xs)])),
        "app": _curry2(lambda f, x: f(x)),
        "$": _curry2(lambda f, x: f(x)),
        "revapp": _curry2(lambda x, f: f(x)),
        "flip": _curry3(lambda f, b, a: f(a)(b)),
        # ST s a ≈ a thunk; runST forces it.
        "runST": lambda action: action(),
        "argST": lambda: 42,
        "pair": _curry2(lambda a, b: (a, b)),
        "fst": lambda pair: pair[0],
        "snd": lambda pair: pair[1],
        "const": _curry2(lambda a, _b: a),
        "undefined": _Undefined(),
        "k": _curry2(lambda x, _xs: x),
        "h": lambda _n: identity,
        "lst": from_python([_curry2(lambda _n, x: x)]),
        "f": _curry2(lambda g, xs: g(to_python(xs)[0]) if to_python(xs) else g),
        "g": _curry2(lambda xs, _ys: to_python(xs)[0]),
        "g23": lambda f: len(str(f(identity))),
        "r": lambda f: 0,
        "Nothing": DataValue("Nothing"),
        "Just": lambda value: DataValue("Just", (value,)),
    }
    return Env(bindings)


class _Undefined:
    """``undefined :: ∀a. a`` — explodes when forced or applied."""

    def __call__(self, *_args: object) -> object:
        raise EvalError("undefined")

    def __str__(self) -> str:  # pragma: no cover
        return "undefined"


def run(term: Term, env: Env | None = None) -> object:
    """Evaluate a term in the prelude environment."""
    return evaluate(term, env or prelude_env())
