"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro infer "head ids"          # infer a type
    python -m repro check "single id" "[Int -> Int]"
    python -m repro run "runST $ argST"       # evaluate
    python -m repro elaborate "id : ids"      # show the System F witness
    python -m repro batch exprs.txt --json    # check many expressions
    python -m repro batch tests/corpus        # replay a counterexample corpus
    python -m repro module lib.gi --stats     # check a module file
    python -m repro fuzz --seed 42 --count 500   # conformance sweep
    python -m repro figure2                   # regenerate the table
    python -m repro trace run.jsonl           # replay a recorded trace
    python -m repro repl                      # interactive loop
    python -m repro serve --socket /tmp/gi.sock --jobs 4   # daemon
    python -m repro loadgen --socket /tmp/gi.sock          # drive it

``infer``, ``batch``, ``module`` and ``fuzz`` accept the observability flags:
``--trace`` prints the span tree of the run, ``--trace FILE`` streams
JSONL trace events to ``FILE`` (replayable with ``repro trace``),
``--metrics`` prints the counter/gauge/histogram summary and
``--profile`` a per-span calls/total/self table.  ``infer --explain``
narrates the solver derivation step by step.

All commands use the Figure 1 prelude environment.  No command ever
prints a raw Python traceback: type errors are reported as one-line
``type error:`` diagnostics, and internal failures (e.g. blowing the
recursion limit on pathological input) as one-line ``internal error:``
diagnostics.
"""

from __future__ import annotations

import argparse
import json as json_module
import sys

from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.infer import InferOptions
from repro.core.terms import Ann
from repro.interp import run as interp_run
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import figure2_env


def _inferencer() -> Inferencer:
    return Inferencer(figure2_env())


def _internal_diagnostic(error: BaseException) -> str:
    """One line for a contained crash; never a traceback."""
    detail = str(error) or "(no message)"
    if len(detail) > 200:
        detail = detail[:200] + "…"
    return f"internal error ({type(error).__name__}): {detail}"


class _Obs:
    """One command's observability session, built from the CLI flags.

    Owns the tracer (and the JSONL sink when ``--trace FILE`` was given)
    and renders whatever surfaces were requested when the command
    finishes — on the error paths too, since a failing run is exactly
    the one whose trace is wanted.
    """

    def __init__(self, trace, metrics: bool, profile: bool, explain: bool) -> None:
        from repro.observability import JsonlWriter, Tracer

        self.trace = trace
        self.show_metrics = metrics
        self.show_profile = profile
        self.show_explain = explain
        self.writer = None
        if trace is not None and trace != "-":
            self.writer = JsonlWriter(open(trace, "w", encoding="utf-8"))
        self.tracer = Tracer(sink=self.writer)

    @classmethod
    def from_args(cls, arguments) -> "_Obs | None":
        trace = getattr(arguments, "trace", None)
        metrics = getattr(arguments, "metrics", False)
        profile = getattr(arguments, "profile", False)
        explain = getattr(arguments, "explain", False)
        if trace is None and not metrics and not profile and not explain:
            return None
        return cls(trace, metrics, profile, explain)

    def finish(self) -> None:
        from repro.observability import (
            explain_tracer,
            render_metrics,
            render_profile,
            render_span_tree,
        )

        sections: list[str] = []
        if self.writer is not None:
            self.tracer.emit_metrics_event()
            self.writer.close()
            print(
                f"trace: {self.writer.lines} events written to {self.trace}",
                file=sys.stderr,
            )
        elif self.trace == "-":
            sections.append(render_span_tree(self.tracer.roots))
        if self.show_explain:
            sections.append(explain_tracer(self.tracer))
        if self.show_metrics:
            sections.append(render_metrics(self.tracer.metrics))
        if self.show_profile:
            sections.append(render_profile(self.tracer.roots))
        for section in sections:
            print()
            print(section)


def _resolve_policy(name: str):
    """Parse a ``--policy`` value; print the hint and return ``None`` on
    an unknown name (callers exit 2, mirroring the `--systems` path)."""
    from repro.core.policy import POLICY_NAMES, parse_policy

    try:
        return parse_policy(name)
    except ValueError:
        print(
            f"error: unknown policy {name!r} "
            f"(available: {', '.join(POLICY_NAMES)})",
            file=sys.stderr,
        )
        return None


def _add_policy_flag(parser) -> None:
    parser.add_argument(
        "--policy",
        default=None,
        metavar="NAME",
        help="instantiation policy: eager|lazy crossed with deep|shallow "
        "(eager-shallow, eager-deep, lazy-shallow, lazy-deep; "
        "default: eager-shallow, the paper's discipline)",
    )


def cmd_infer(source: str, policy=None, obs: _Obs | None = None) -> int:
    tracer = obs.tracer if obs is not None else None
    options = InferOptions(policy=policy) if policy is not None else None
    code = 0
    try:
        try:
            result = Inferencer(
                figure2_env(), options=options, tracer=tracer
            ).infer(parse_term(source))
            print(result.type_)
        except GIError as error:
            print(f"type error: {error}", file=sys.stderr)
            code = 1
        except Exception as error:  # noqa: BLE001 — CLI containment
            print(_internal_diagnostic(error), file=sys.stderr)
            code = 1
    finally:
        if obs is not None:
            obs.finish()
    return code


def cmd_check(source: str, signature: str) -> int:
    try:
        term = Ann(parse_term(source), parse_type(signature))
        _inferencer().infer(term)
    except GIError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print("ok")
    return 0


def cmd_run(source: str) -> int:
    try:
        term = parse_term(source)
        _inferencer().infer(term)  # type before running
        value = interp_run(term)
    except GIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print(value)
    return 0


def cmd_elaborate(source: str) -> int:
    from repro.systemf import elaborate_result, pretty_fterm, typecheck

    try:
        result = _inferencer().infer(parse_term(source))
        fterm = elaborate_result(result)
        ftype = typecheck(fterm, figure2_env())
    except GIError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print(f"term : {pretty_fterm(fterm)}")
    print(f"type : {ftype}")
    return 0


def cmd_batch(
    path: str,
    max_steps: int | None,
    max_depth: int | None,
    timeout: float | None,
    as_json: bool,
    jobs: int,
    seed: int | None = None,
    policy=None,
    obs: _Obs | None = None,
) -> int:
    import signal as signal_module
    import threading

    from repro.robustness import Budget, check_batch, read_batch_file, render_text

    try:
        sources = read_batch_file(path)
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:  # a bad `-- policy:` header in an input file
        print(f"error: {error}", file=sys.stderr)
        return 2
    budget = Budget(
        max_solver_steps=max_steps,
        max_unify_depth=max_depth,
        wall_clock=timeout,
    )
    # SIGINT/SIGTERM request a *cooperative* stop: in-flight items finish,
    # the rest are skipped, and the partial results are still emitted
    # (JSON carries `"interrupted": true`; exit code is 130).
    cancel = threading.Event()
    previous_handlers: dict = {}
    try:
        for signum in (signal_module.SIGINT, signal_module.SIGTERM):
            previous_handlers[signum] = signal_module.signal(
                signum, lambda *_args: cancel.set()
            )
    except ValueError:
        previous_handlers = {}  # not the main thread (tests) — no handlers
    try:
        result = check_batch(
            sources,
            figure2_env(),
            budget=budget,
            jobs=jobs,
            seed=seed,
            options=InferOptions(policy=policy) if policy is not None else None,
            tracer=obs.tracer if obs is not None else None,
            cancel=cancel,
        )
        if as_json:
            print(json_module.dumps(result.to_dict(), indent=2))
        else:
            print(render_text(result))
        if result.interrupted:
            return 130
        return 0 if result.ok else 1
    finally:
        for signum, handler in previous_handlers.items():
            signal_module.signal(signum, handler)
        if obs is not None:
            obs.finish()


def cmd_module(
    path: str,
    max_steps: int | None,
    max_depth: int | None,
    timeout: float | None,
    as_json: bool,
    jobs: int,
    stats: bool,
    no_cache: bool = False,
    obs: _Obs | None = None,
) -> int:
    from repro.modules import ModuleCache, ModuleEngine, render_module_text
    from repro.robustness import Budget

    budget = Budget(
        max_solver_steps=max_steps,
        max_unify_depth=max_depth,
        wall_clock=timeout,
    )
    # The result cache persists next to the module (``lib.gi`` keeps its
    # checked types in ``lib.gi.cache.json``), so re-running the command
    # on an unchanged file starts warm — visible as cache hits in
    # ``--stats`` / ``--metrics``.  ``--no-cache`` opts out.
    cache_path = path + ".cache.json"
    cache = ModuleCache() if no_cache else ModuleCache.load(cache_path)
    engine = ModuleEngine(
        figure2_env(),
        budget=budget,
        jobs=jobs,
        cache=cache,
        tracer=obs.tracer if obs is not None else None,
    )
    try:
        try:
            result = engine.check_file(path)
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        except GIError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except Exception as error:  # noqa: BLE001 — CLI containment
            print(_internal_diagnostic(error), file=sys.stderr)
            return 1
        if not no_cache:
            try:
                cache.save(cache_path)
            except OSError:
                pass  # a read-only location degrades to no persistence
        if as_json:
            print(json_module.dumps(result.to_dict(include_stats=stats), indent=2))
        else:
            print(render_module_text(result, stats=stats))
        return 0 if result.ok else 1
    finally:
        if obs is not None:
            obs.finish()


def cmd_fuzz(arguments, obs: _Obs | None = None) -> int:
    from pathlib import Path

    from repro.conformance import (
        DEFAULT_ORACLES,
        ORACLES,
        FuzzConfig,
        render_fuzz_text,
        run_fuzz,
    )

    from repro.baselines import SYSTEMS

    oracles = tuple(arguments.oracle) if arguments.oracle else DEFAULT_ORACLES
    unknown = [name for name in oracles if name not in ORACLES]
    if unknown:
        print(
            f"error: unknown oracle(s) {', '.join(unknown)} "
            f"(available: {', '.join(ORACLES)})",
            file=sys.stderr,
        )
        return 2
    systems = tuple(arguments.system) if arguments.system else None
    if systems is not None:
        unknown_systems = [name for name in systems if name not in SYSTEMS]
        if unknown_systems:
            print(
                f"error: unknown system(s) {', '.join(unknown_systems)} "
                f"(available: {', '.join(SYSTEMS)}; see `repro systems`)",
                file=sys.stderr,
            )
            return 2
    policy = None
    if arguments.policy is not None:
        policy = _resolve_policy(arguments.policy)
        if policy is None:
            return 2
    config = FuzzConfig(
        seed=arguments.seed,
        count=arguments.count,
        oracles=oracles,
        systems=systems,
        **({"policy": policy.name} if policy is not None else {}),
        jobs=arguments.jobs,
        corpus_dir=Path(arguments.corpus) if arguments.corpus else None,
        fault_step=arguments.fault_step,
        fault_depth=arguments.fault_depth,
    )
    try:
        report = run_fuzz(config, tracer=obs.tracer if obs is not None else None)
        if arguments.json:
            print(json_module.dumps(report.to_dict(), indent=2))
        else:
            print(render_fuzz_text(report))
        return 0 if report.ok else 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 2
    finally:
        if obs is not None:
            obs.finish()


def cmd_systems(arguments) -> int:
    """List the registered backends (the differential-fuzz matrix)."""
    from repro.baselines import SYSTEMS
    from repro.conformance import PAIRWISE_IMPLICATIONS

    if arguments.json:
        payload = {
            "systems": [
                {"name": system.name, "description": system.description}
                for system in SYSTEMS.values()
            ],
            "implications": [
                {"premise": premise, "conclusion": conclusion, "level": level}
                for premise, conclusion, level in PAIRWISE_IMPLICATIONS
            ],
        }
        print(json_module.dumps(payload, indent=2))
        return 0
    width = max(len(name) for name in SYSTEMS)
    print("Registered type systems (use with `repro fuzz --systems NAME`):")
    for system in SYSTEMS.values():
        print(f"  {system.name:<{width}}  {system.description}")
    print("\nDifferential-oracle implications (premise accepts ⇒ conclusion):")
    for premise, conclusion, level in PAIRWISE_IMPLICATIONS:
        suffix = " (α-equivalent types)" if level == "type" else ""
        print(f"  {premise} ⇒ {conclusion}{suffix}")
    return 0


def cmd_serve(arguments) -> int:
    import asyncio

    from repro.robustness.server import GIServer, ServeConfig

    if (arguments.socket is None) == (arguments.port is None):
        print("error: exactly one of --socket / --port is required", file=sys.stderr)
        return 2
    config = ServeConfig(
        socket_path=arguments.socket,
        host=arguments.host,
        port=arguments.port,
        jobs=arguments.jobs,
        queue_limit=arguments.queue_limit,
        default_timeout_ms=arguments.default_timeout_ms,
        max_timeout_ms=arguments.max_timeout_ms,
        max_solver_steps=arguments.max_steps,
        max_unify_depth=arguments.max_depth,
        allow_faults=arguments.allow_faults,
        drain_grace_s=arguments.drain_grace,
        trace_path=arguments.trace,
    )
    server = GIServer(config)

    def announce(started: GIServer) -> None:
        print(
            f"repro serve: listening on {started.address} "
            f"(jobs={config.jobs}, queue={config.queue_limit})",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(server.run(ready=announce))
    except KeyboardInterrupt:
        # Only reachable where the loop could not own SIGINT; the drain
        # already ran via the signal handler on mainstream platforms.
        return 130
    except OSError as error:
        print(f"error: cannot listen: {error}", file=sys.stderr)
        return 2
    counts = server.counts
    print(
        f"repro serve: drained ({server.exit_reason}) — "
        f"{counts['total']} requests, {counts['internal']} contained crashes, "
        f"{counts['shed']} shed",
        file=sys.stderr,
    )
    return 0


def cmd_loadgen(arguments) -> int:
    from repro.robustness.loadgen import LoadConfig, render_load_text, run_load

    if (arguments.socket is None) == (arguments.port is None):
        print("error: exactly one of --socket / --port is required", file=sys.stderr)
        return 2
    config = LoadConfig(
        socket_path=arguments.socket,
        host=arguments.host,
        port=arguments.port,
        clients=arguments.clients,
        requests=arguments.requests,
        seed=arguments.seed,
        timeout_ms=arguments.timeout_ms,
        fault_rate=arguments.fault_rate,
        oversize_rate=arguments.oversize_rate,
        disconnect_rate=arguments.disconnect_rate,
    )
    try:
        report = run_load(config)
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach server: {error}", file=sys.stderr)
        return 2
    if arguments.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(render_load_text(report))
    return 1 if report.violations else 0


def cmd_trace(path: str, explain: bool, validate: bool) -> int:
    """Replay, narrate or schema-check a recorded JSONL trace file."""
    from repro.observability import (
        explain_events,
        read_trace,
        render_span_tree,
        spans_from_events,
        validate_line,
    )

    if validate:
        problems: list[str] = []
        total = 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    total += 1
                    problems.extend(
                        f"line {lineno}: {problem}" for problem in validate_line(line)
                    )
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        if problems:
            for problem in problems[:20]:
                print(problem, file=sys.stderr)
            print(
                f"invalid: {len(problems)} schema error(s) across {total} event(s)",
                file=sys.stderr,
            )
            return 1
        print(f"ok: {total} events valid (schema v1)")
        return 0
    try:
        events = read_trace(path)
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: not a JSONL trace: {error}", file=sys.stderr)
        return 1
    if explain:
        print(explain_events(events))
    else:
        print(render_span_tree(spans_from_events(events)))
    return 0


_REPL_HELP = (
    "commands: :t <e> show a type · :r <e> run · :load <file> check a module "
    "and bring its bindings into scope · :browse list bindings · "
    ":set policy <name> switch the instantiation policy "
    "(:set policy shows the current one) · "
    ":trace on/off span trees per expression · :stats session metrics · :q quit"
)


def _repl_load(gi: Inferencer, path: str, loaded: dict[str, str]) -> Inferencer:
    """Check a module file and extend the REPL environment.

    Returns the (possibly new) inferencer; prints a summary.  Bindings of
    a partially failing module are still loaded when they checked.
    """
    from repro.modules import ModuleEngine, render_module_text

    engine = ModuleEngine(gi.env)
    result = engine.check_file(path)
    if not result.ok:
        print(render_module_text(result))
    checked = result.types
    loaded.update(checked)
    print(f"loaded {len(checked)}/{len(result.reports)} bindings from {path}")
    return Inferencer(result.env)


def cmd_repl() -> int:
    from repro.observability import Metrics, Tracer, render_metrics, render_span_tree

    gi = _inferencer()
    loaded: dict[str, str] = {}
    session_metrics = Metrics()
    """One metrics registry for the whole session: every traced
    expression accumulates into it, and ``:stats`` reads it back."""
    trace_on = False

    def infer_traced(term):
        """Infer, printing the run's span tree when ``:trace on``."""
        if not trace_on:
            return gi.infer(term)
        tracer = Tracer(metrics=session_metrics)
        try:
            return Inferencer(
                gi.env, gi.instances, gi.options, tracer=tracer
            ).infer(term)
        finally:
            print(render_span_tree(tracer.roots))

    print("guarded-impredicativity repl — :q to quit, :h for help")
    while True:
        try:
            line = input("gi> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (":q", ":quit"):
            return 0
        try:
            if line in (":h", ":help", ":?"):
                print(_REPL_HELP)
            elif line == ":browse":
                names = sorted(gi.env.names())
                for name in names:
                    origin = " (loaded)" if name in loaded else ""
                    print(f"{name} :: {gi.env.lookup(name)}{origin}")
            elif line == ":set policy" or line.startswith(":set policy "):
                from dataclasses import replace as dc_replace

                from repro.core.policy import POLICY_NAMES, parse_policy

                name = line[len(":set policy") :].strip()
                if not name:
                    print(f"policy: {gi.options.policy}")
                else:
                    try:
                        new_policy = parse_policy(name)
                    except ValueError:
                        print(
                            f"unknown policy `{name}` "
                            f"(available: {', '.join(POLICY_NAMES)})"
                        )
                    else:
                        gi = Inferencer(
                            gi.env,
                            gi.instances,
                            dc_replace(gi.options, policy=new_policy),
                        )
                        print(f"policy: {new_policy}")
            elif line in (":trace on", ":trace off", ":trace"):
                trace_on = not trace_on if line == ":trace" else line == ":trace on"
                print(f"tracing {'on' if trace_on else 'off'}")
            elif line == ":stats":
                print(render_metrics(session_metrics))
            elif line.startswith(":load "):
                gi = _repl_load(gi, line[6:].strip(), loaded)
            elif line.startswith(":t "):
                print(infer_traced(parse_term(line[3:])).type_)
            elif line.startswith(":r "):
                term = parse_term(line[3:])
                infer_traced(term)
                print(interp_run(term))
            elif line.startswith(":"):
                command = line.split()[0]
                print(f"unknown command `{command}` — {_REPL_HELP}")
            else:
                print(infer_traced(parse_term(line)).type_)
        except OSError as error:
            print(f"error: {error}")
        except GIError as error:
            print(f"error: {error}")
        except Exception as error:  # noqa: BLE001 — the repl must survive
            print(_internal_diagnostic(error))


def _add_observability_flags(parser, explain: bool = False) -> None:
    parser.add_argument(
        "--trace",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="print the span tree of the run; with FILE, stream JSONL "
        "trace events there instead (replayable via `repro trace`)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the counter/gauge/histogram summary after the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-span calls/total/self-time table",
    )
    if explain:
        parser.add_argument(
            "--explain",
            action="store_true",
            help="narrate the solver derivation (rules, classifications, bindings)",
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer", help="infer the principal type")
    p_infer.add_argument("expr")
    _add_policy_flag(p_infer)
    _add_observability_flags(p_infer, explain=True)
    p_check = sub.add_parser("check", help="check against a signature")
    p_check.add_argument("expr")
    p_check.add_argument("signature")
    p_run = sub.add_parser("run", help="type-check then evaluate")
    p_run.add_argument("expr")
    p_elab = sub.add_parser("elaborate", help="show the System F witness")
    p_elab.add_argument("expr")
    p_batch = sub.add_parser(
        "batch",
        help="check a file of expressions (one per line), one budget each",
    )
    p_batch.add_argument("file")
    p_batch.add_argument(
        "--max-steps", type=int, default=None, help="solver step budget per item"
    )
    p_batch.add_argument(
        "--max-depth", type=int, default=None, help="unification depth budget per item"
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None, help="wall-clock seconds per item"
    )
    p_batch.add_argument(
        "--json", action="store_true", help="emit structured JSON diagnostics"
    )
    p_batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="check expressions concurrently with N workers (order preserved)",
    )
    p_batch.add_argument(
        "--seed",
        type=int,
        default=None,
        help="arm a deterministic per-item fault plan derived from this seed "
        "(reproducible fault-injection sweep; forces --jobs 1; the seed is "
        "recorded in every diagnostic)",
    )
    _add_policy_flag(p_batch)
    _add_observability_flags(p_batch)
    p_module = sub.add_parser(
        "module",
        help="check a module file: SCC binding groups, incremental cache",
    )
    p_module.add_argument("file")
    p_module.add_argument(
        "--max-steps", type=int, default=None, help="solver step budget per group"
    )
    p_module.add_argument(
        "--max-depth", type=int, default=None, help="unification depth budget per group"
    )
    p_module.add_argument(
        "--timeout", type=float, default=None, help="wall-clock seconds per group"
    )
    p_module.add_argument(
        "--json", action="store_true", help="emit structured JSON results"
    )
    p_module.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="check independent binding groups concurrently with N workers",
    )
    p_module.add_argument(
        "--stats",
        action="store_true",
        help="report cache hits/misses and per-group timings",
    )
    p_module.add_argument(
        "--no-cache",
        action="store_true",
        help="do not load/save the on-disk result cache (<file>.cache.json)",
    )
    _add_observability_flags(p_module)
    p_fuzz = sub.add_parser(
        "fuzz",
        help="conformance sweep: seeded term generation + oracle battery",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="sweep seed (same seed ⇒ same cases)"
    )
    p_fuzz.add_argument(
        "--count", type=int, default=100, help="number of cases to generate"
    )
    p_fuzz.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this oracle (repeatable; default: the full battery)",
    )
    p_fuzz.add_argument(
        "--systems",
        dest="system",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the differential oracle to this backend "
        "(repeatable; default: every registered system — see `repro systems`)",
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="check cases concurrently with N workers (order preserved)",
    )
    p_fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write minimized counterexamples as replayable .gi files here",
    )
    p_fuzz.add_argument(
        "--json", action="store_true", help="emit the structured sweep report"
    )
    p_fuzz.add_argument(
        "--fault-step",
        type=int,
        default=None,
        help="arm an injected solver fault at step N for every case "
        "(self-test: the crash oracle must catch it; forces --jobs 1)",
    )
    p_fuzz.add_argument(
        "--fault-depth",
        type=int,
        default=None,
        help="arm an injected unifier fault at depth D for every case",
    )
    _add_policy_flag(p_fuzz)
    _add_observability_flags(p_fuzz)
    p_trace = sub.add_parser(
        "trace",
        help="replay a recorded JSONL trace: span tree, narrative, or schema check",
    )
    p_trace.add_argument("file")
    p_trace.add_argument(
        "--explain",
        action="store_true",
        help="narrate the solver derivation recorded in the trace",
    )
    p_trace.add_argument(
        "--validate",
        action="store_true",
        help="check every line against the trace event schema; exit 1 on errors",
    )
    p_serve = sub.add_parser(
        "serve",
        help="long-running JSONL type-checking daemon (sessions, "
        "backpressure, graceful drain)",
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH", help="Unix socket")
    p_serve.add_argument("--port", type=int, default=None, help="TCP port (0=ephemeral)")
    p_serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    p_serve.add_argument("--jobs", type=int, default=2, help="inference worker threads")
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admitted-but-unfinished request bound; beyond it load is shed",
    )
    p_serve.add_argument(
        "--default-timeout-ms",
        type=int,
        default=10_000,
        help="per-request deadline when the client sends none",
    )
    p_serve.add_argument(
        "--max-timeout-ms",
        type=int,
        default=30_000,
        help="ceiling clamping any client-supplied timeout_ms",
    )
    p_serve.add_argument(
        "--max-steps", type=int, default=1_000_000, help="solver step ceiling per request"
    )
    p_serve.add_argument(
        "--max-depth",
        type=int,
        default=100_000,
        help="unification depth ceiling per request",
    )
    p_serve.add_argument(
        "--allow-faults",
        action="store_true",
        help="accept fault_step/fault_depth request fields (soak harness)",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds a drain waits for in-flight work before cancelling",
    )
    p_serve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream JSONL trace events here (flushed on drain)",
    )
    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a serve daemon with a seeded mixed workload",
    )
    p_loadgen.add_argument("--socket", default=None, metavar="PATH", help="Unix socket")
    p_loadgen.add_argument("--port", type=int, default=None, help="TCP port")
    p_loadgen.add_argument("--host", default="127.0.0.1", help="TCP host")
    p_loadgen.add_argument("--clients", type=int, default=8)
    p_loadgen.add_argument(
        "--requests", type=int, default=50, help="requests per client"
    )
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--timeout-ms", type=int, default=10_000)
    p_loadgen.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="fraction of requests arming an injected fault "
        "(server must run with --allow-faults)",
    )
    p_loadgen.add_argument(
        "--oversize-rate",
        type=float,
        default=0.0,
        help="fraction of requests exceeding the line ceiling",
    )
    p_loadgen.add_argument(
        "--disconnect-rate",
        type=float,
        default=0.0,
        help="fraction of requests abandoned mid-flight",
    )
    p_loadgen.add_argument(
        "--json", action="store_true", help="emit the structured report"
    )
    p_systems = sub.add_parser(
        "systems",
        help="list the registered type-system backends and oracle implications",
    )
    p_systems.add_argument(
        "--json", action="store_true", help="emit the structured listing"
    )
    sub.add_parser("figure2", help="regenerate Figure 2")
    sub.add_parser("repl", help="interactive loop")

    arguments = parser.parse_args(argv)
    policy = None
    if getattr(arguments, "policy", None) is not None:
        policy = _resolve_policy(arguments.policy)
        if policy is None:
            return 2
    if arguments.command == "infer":
        return cmd_infer(arguments.expr, policy=policy, obs=_Obs.from_args(arguments))
    if arguments.command == "check":
        return cmd_check(arguments.expr, arguments.signature)
    if arguments.command == "run":
        return cmd_run(arguments.expr)
    if arguments.command == "elaborate":
        return cmd_elaborate(arguments.expr)
    if arguments.command == "batch":
        return cmd_batch(
            arguments.file,
            arguments.max_steps,
            arguments.max_depth,
            arguments.timeout,
            arguments.json,
            arguments.jobs,
            seed=arguments.seed,
            policy=policy,
            obs=_Obs.from_args(arguments),
        )
    if arguments.command == "module":
        return cmd_module(
            arguments.file,
            arguments.max_steps,
            arguments.max_depth,
            arguments.timeout,
            arguments.json,
            arguments.jobs,
            arguments.stats,
            no_cache=arguments.no_cache,
            obs=_Obs.from_args(arguments),
        )
    if arguments.command == "fuzz":
        return cmd_fuzz(arguments, obs=_Obs.from_args(arguments))
    if arguments.command == "systems":
        return cmd_systems(arguments)
    if arguments.command == "serve":
        return cmd_serve(arguments)
    if arguments.command == "loadgen":
        return cmd_loadgen(arguments)
    if arguments.command == "trace":
        return cmd_trace(arguments.file, arguments.explain, arguments.validate)
    if arguments.command == "figure2":
        import runpy
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "examples" / "figure2_table.py"
        runpy.run_path(str(script), run_name="__main__")
        return 0
    if arguments.command == "repl":
        return cmd_repl()
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
