"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro infer "head ids"          # infer a type
    python -m repro check "single id" "[Int -> Int]"
    python -m repro run "runST $ argST"       # evaluate
    python -m repro elaborate "id : ids"      # show the System F witness
    python -m repro batch exprs.txt --json    # check many expressions
    python -m repro module lib.gi --stats     # check a module file
    python -m repro figure2                   # regenerate the table
    python -m repro repl                      # interactive loop

All commands use the Figure 1 prelude environment.  No command ever
prints a raw Python traceback: type errors are reported as one-line
``type error:`` diagnostics, and internal failures (e.g. blowing the
recursion limit on pathological input) as one-line ``internal error:``
diagnostics.
"""

from __future__ import annotations

import argparse
import json as json_module
import sys

from repro.core import Inferencer
from repro.core.errors import GIError
from repro.core.terms import Ann
from repro.interp import run as interp_run
from repro.syntax import parse_term, parse_type
from repro.evalsuite.figure2 import figure2_env


def _inferencer() -> Inferencer:
    return Inferencer(figure2_env())


def _internal_diagnostic(error: BaseException) -> str:
    """One line for a contained crash; never a traceback."""
    detail = str(error) or "(no message)"
    if len(detail) > 200:
        detail = detail[:200] + "…"
    return f"internal error ({type(error).__name__}): {detail}"


def cmd_infer(source: str) -> int:
    try:
        result = _inferencer().infer(parse_term(source))
    except GIError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print(result.type_)
    return 0


def cmd_check(source: str, signature: str) -> int:
    try:
        term = Ann(parse_term(source), parse_type(signature))
        _inferencer().infer(term)
    except GIError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print("ok")
    return 0


def cmd_run(source: str) -> int:
    try:
        term = parse_term(source)
        _inferencer().infer(term)  # type before running
        value = interp_run(term)
    except GIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print(value)
    return 0


def cmd_elaborate(source: str) -> int:
    from repro.systemf import elaborate_result, pretty_fterm, typecheck

    try:
        result = _inferencer().infer(parse_term(source))
        fterm = elaborate_result(result)
        ftype = typecheck(fterm, figure2_env())
    except GIError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    print(f"term : {pretty_fterm(fterm)}")
    print(f"type : {ftype}")
    return 0


def cmd_batch(
    path: str,
    max_steps: int | None,
    max_depth: int | None,
    timeout: float | None,
    as_json: bool,
    jobs: int,
) -> int:
    from repro.robustness import Budget, check_batch, read_batch_file, render_text

    try:
        sources = read_batch_file(path)
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    budget = Budget(
        max_solver_steps=max_steps,
        max_unify_depth=max_depth,
        wall_clock=timeout,
    )
    result = check_batch(sources, figure2_env(), budget=budget, jobs=jobs)
    if as_json:
        print(json_module.dumps(result.to_dict(), indent=2))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def cmd_module(
    path: str,
    max_steps: int | None,
    max_depth: int | None,
    timeout: float | None,
    as_json: bool,
    jobs: int,
    stats: bool,
) -> int:
    from repro.modules import ModuleEngine, render_module_text
    from repro.robustness import Budget

    budget = Budget(
        max_solver_steps=max_steps,
        max_unify_depth=max_depth,
        wall_clock=timeout,
    )
    engine = ModuleEngine(figure2_env(), budget=budget, jobs=jobs)
    try:
        result = engine.check_file(path)
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    except GIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — CLI containment
        print(_internal_diagnostic(error), file=sys.stderr)
        return 1
    if as_json:
        print(json_module.dumps(result.to_dict(include_stats=stats), indent=2))
    else:
        print(render_module_text(result, stats=stats))
    return 0 if result.ok else 1


_REPL_HELP = (
    "commands: :t <e> show a type · :r <e> run · :load <file> check a module "
    "and bring its bindings into scope · :browse list bindings · :q quit"
)


def _repl_load(gi: Inferencer, path: str, loaded: dict[str, str]) -> Inferencer:
    """Check a module file and extend the REPL environment.

    Returns the (possibly new) inferencer; prints a summary.  Bindings of
    a partially failing module are still loaded when they checked.
    """
    from repro.modules import ModuleEngine, render_module_text

    engine = ModuleEngine(gi.env)
    result = engine.check_file(path)
    if not result.ok:
        print(render_module_text(result))
    checked = result.types
    loaded.update(checked)
    print(f"loaded {len(checked)}/{len(result.reports)} bindings from {path}")
    return Inferencer(result.env)


def cmd_repl() -> int:
    gi = _inferencer()
    loaded: dict[str, str] = {}
    print("guarded-impredicativity repl — :q to quit, :h for help")
    while True:
        try:
            line = input("gi> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (":q", ":quit"):
            return 0
        try:
            if line in (":h", ":help", ":?"):
                print(_REPL_HELP)
            elif line == ":browse":
                names = sorted(gi.env.names())
                for name in names:
                    origin = " (loaded)" if name in loaded else ""
                    print(f"{name} :: {gi.env.lookup(name)}{origin}")
            elif line.startswith(":load "):
                gi = _repl_load(gi, line[6:].strip(), loaded)
            elif line.startswith(":t "):
                print(gi.infer(parse_term(line[3:])).type_)
            elif line.startswith(":r "):
                term = parse_term(line[3:])
                gi.infer(term)
                print(interp_run(term))
            elif line.startswith(":"):
                command = line.split()[0]
                print(f"unknown command `{command}` — {_REPL_HELP}")
            else:
                print(gi.infer(parse_term(line)).type_)
        except OSError as error:
            print(f"error: {error}")
        except GIError as error:
            print(f"error: {error}")
        except Exception as error:  # noqa: BLE001 — the repl must survive
            print(_internal_diagnostic(error))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer", help="infer the principal type")
    p_infer.add_argument("expr")
    p_check = sub.add_parser("check", help="check against a signature")
    p_check.add_argument("expr")
    p_check.add_argument("signature")
    p_run = sub.add_parser("run", help="type-check then evaluate")
    p_run.add_argument("expr")
    p_elab = sub.add_parser("elaborate", help="show the System F witness")
    p_elab.add_argument("expr")
    p_batch = sub.add_parser(
        "batch",
        help="check a file of expressions (one per line), one budget each",
    )
    p_batch.add_argument("file")
    p_batch.add_argument(
        "--max-steps", type=int, default=None, help="solver step budget per item"
    )
    p_batch.add_argument(
        "--max-depth", type=int, default=None, help="unification depth budget per item"
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None, help="wall-clock seconds per item"
    )
    p_batch.add_argument(
        "--json", action="store_true", help="emit structured JSON diagnostics"
    )
    p_batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="check expressions concurrently with N workers (order preserved)",
    )
    p_module = sub.add_parser(
        "module",
        help="check a module file: SCC binding groups, incremental cache",
    )
    p_module.add_argument("file")
    p_module.add_argument(
        "--max-steps", type=int, default=None, help="solver step budget per group"
    )
    p_module.add_argument(
        "--max-depth", type=int, default=None, help="unification depth budget per group"
    )
    p_module.add_argument(
        "--timeout", type=float, default=None, help="wall-clock seconds per group"
    )
    p_module.add_argument(
        "--json", action="store_true", help="emit structured JSON results"
    )
    p_module.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="check independent binding groups concurrently with N workers",
    )
    p_module.add_argument(
        "--stats",
        action="store_true",
        help="report cache hits/misses and per-group timings",
    )
    sub.add_parser("figure2", help="regenerate Figure 2")
    sub.add_parser("repl", help="interactive loop")

    arguments = parser.parse_args(argv)
    if arguments.command == "infer":
        return cmd_infer(arguments.expr)
    if arguments.command == "check":
        return cmd_check(arguments.expr, arguments.signature)
    if arguments.command == "run":
        return cmd_run(arguments.expr)
    if arguments.command == "elaborate":
        return cmd_elaborate(arguments.expr)
    if arguments.command == "batch":
        return cmd_batch(
            arguments.file,
            arguments.max_steps,
            arguments.max_depth,
            arguments.timeout,
            arguments.json,
            arguments.jobs,
        )
    if arguments.command == "module":
        return cmd_module(
            arguments.file,
            arguments.max_steps,
            arguments.max_depth,
            arguments.timeout,
            arguments.json,
            arguments.jobs,
            arguments.stats,
        )
    if arguments.command == "figure2":
        import runpy
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "examples" / "figure2_table.py"
        runpy.run_path(str(script), run_name="__main__")
        return 0
    if arguments.command == "repl":
        return cmd_repl()
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
