"""Recursive-descent parser for the surface language.

Types::

    forall a b. Eq a => (a -> b) -> [a] -> (a, b)

Terms::

    \\x -> e            \\(x :: forall a. a -> a) -> e
    let x = e1 in e2    case e of { Just x -> e1 ; Nothing -> e2 }
    (e :: t)            [e1, e2]    (e1, e2)    e1 : e2    e1 ++ e2    f $ x

The infix operators ``:``, ``++`` and ``$`` desugar to *ordinary
applications* of the prelude functions ``cons``, ``append`` and ``$``;
``$`` in particular is not special-cased the way GHC treats it — the whole
point of the paper is that ``runST $ argST`` typechecks through the
operator's ordinary type.  Lists and tuples desugar to ``nil``/``cons``
and ``pair``.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.core.terms import Ann, AnnLam, App, Case, CaseAlt, Lam, Let, Lit, Term, Var, app
from repro.core.types import Pred, TCon, TVar, Type, forall, fun, list_of, tuple_of
from repro.syntax.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def at_symbol(self, text: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind == "symbol" and token.text == text

    def at_keyword(self, text: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.text == text

    def expect_symbol(self, text: str) -> Token:
        token = self.next()
        if token.kind != "symbol" or token.text != text:
            raise ParseError(f"expected `{text}`, found `{token}`", token.line, token.column)
        return token

    def expect_kind(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found `{token}`", token.line, token.column)
        return token

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(f"unexpected trailing input `{token}`", token.line, token.column)

    # -- types -----------------------------------------------------------

    def type_(self) -> Type:
        if self.at_keyword("forall") or self.at_symbol("∀"):
            self.next()
            binders: list[str] = []
            while self.peek().kind == "ident":
                binders.append(self.next().text)
            if not binders:
                token = self.peek()
                raise ParseError("forall needs at least one binder", token.line, token.column)
            self.expect_symbol(".")
            context, body = self.context_and_type()
            return forall(binders, body, context)
        context, body = self.context_and_type()
        return forall([], body, context)

    def context_and_type(self) -> tuple[list[Pred], Type]:
        checkpoint = self.position
        try:
            context = self.context()
        except ParseError:
            self.position = checkpoint
            return [], self.arrow_type()
        if context is None:
            self.position = checkpoint
            return [], self.arrow_type()
        return context, self.arrow_type()

    def context(self) -> list[Pred] | None:
        """Parse ``C => `` or ``(C1, C2) => ``; None when not a context."""
        predicates: list[Pred] = []
        if self.at_symbol("("):
            checkpoint = self.position
            self.next()
            try:
                predicates.append(self.predicate())
                while self.at_symbol(","):
                    self.next()
                    predicates.append(self.predicate())
                self.expect_symbol(")")
            except ParseError:
                self.position = checkpoint
                return None
        elif self.peek().kind == "conid":
            checkpoint = self.position
            try:
                predicates.append(self.predicate())
            except ParseError:
                self.position = checkpoint
                return None
        else:
            return None
        if not self.at_symbol("=>"):
            return None
        self.next()
        return predicates

    def predicate(self) -> Pred:
        name = self.expect_kind("conid").text
        arguments: list[Type] = []
        while self._at_atomic_type():
            arguments.append(self.atomic_type())
        if not arguments:
            token = self.peek()
            raise ParseError("class predicate needs arguments", token.line, token.column)
        return Pred(name, tuple(arguments))

    def arrow_type(self) -> Type:
        left = self.app_type()
        if self.at_symbol("->") or self.at_symbol("→"):
            self.next()
            right = self.type_()
            return fun(left, right)
        return left

    def app_type(self) -> Type:
        if self.peek().kind == "conid":
            name = self.next().text
            arguments: list[Type] = []
            while self._at_atomic_type():
                arguments.append(self.atomic_type())
            return TCon(name, tuple(arguments))
        return self.atomic_type()

    def _at_atomic_type(self) -> bool:
        token = self.peek()
        if token.kind in ("ident", "conid"):
            return True
        return token.kind == "symbol" and token.text in ("(", "[")

    def atomic_type(self) -> Type:
        token = self.peek()
        if token.kind == "ident":
            self.next()
            return TVar(token.text)
        if token.kind == "conid":
            self.next()
            return TCon(token.text)
        if self.at_symbol("["):
            self.next()
            element = self.type_()
            self.expect_symbol("]")
            return list_of(element)
        if self.at_symbol("("):
            self.next()
            if self.at_symbol(")"):
                self.next()
                return TCon("()")
            first = self.type_()
            elements = [first]
            while self.at_symbol(","):
                self.next()
                elements.append(self.type_())
            self.expect_symbol(")")
            if len(elements) == 1:
                return first
            return tuple_of(*elements)
        raise ParseError(f"expected a type, found `{token}`", token.line, token.column)

    # -- terms -----------------------------------------------------------

    def term(self) -> Term:
        if self.at_symbol("\\"):
            return self.lambda_()
        if self.at_keyword("let"):
            return self.let_()
        if self.at_keyword("case"):
            return self.case_()
        return self.operator_term()

    def lambda_(self) -> Term:
        self.expect_symbol("\\")
        binders: list[tuple[str, Type | None]] = []
        while True:
            token = self.peek()
            if token.kind == "ident":
                self.next()
                binders.append((token.text, None))
            elif self.at_symbol("(") and self.peek(1).kind == "ident":
                self.next()
                name = self.expect_kind("ident").text
                self.expect_symbol("::")
                annotation = self.type_()
                self.expect_symbol(")")
                binders.append((name, annotation))
            else:
                break
        if not binders:
            token = self.peek()
            raise ParseError("lambda needs at least one binder", token.line, token.column)
        if self.at_symbol("."):
            self.next()
        elif self.at_symbol("->") or self.at_symbol("→"):
            self.next()
        else:
            token = self.peek()
            raise ParseError(
                f"expected `.` or `->` after lambda binders, found `{token}`",
                token.line,
                token.column,
            )
        body = self.term()
        for name, annotation in reversed(binders):
            if annotation is None:
                body = Lam(name, body)
            else:
                body = AnnLam(name, annotation, body)
        return body

    def let_(self) -> Term:
        self.next()  # 'let'
        name = self.expect_kind("ident").text
        self.expect_symbol("=")
        bound = self.term()
        token = self.next()
        if token.kind != "keyword" or token.text != "in":
            raise ParseError(f"expected `in`, found `{token}`", token.line, token.column)
        body = self.term()
        return Let(name, bound, body)

    def case_(self) -> Term:
        self.next()  # 'case'
        scrutinee = self.term()
        token = self.next()
        if token.kind != "keyword" or token.text != "of":
            raise ParseError(f"expected `of`, found `{token}`", token.line, token.column)
        self.expect_symbol("{")
        alts = [self.alt()]
        while self.at_symbol(";"):
            self.next()
            alts.append(self.alt())
        self.expect_symbol("}")
        return Case(scrutinee, tuple(alts))

    def alt(self) -> CaseAlt:
        constructor = self.expect_kind("conid").text
        binders: list[str] = []
        while self.peek().kind == "ident":
            binders.append(self.next().text)
        self.expect_symbol("->")
        return CaseAlt(constructor, tuple(binders), self.term())

    def operator_term(self) -> Term:
        """Right-associative infix ``:``, ``++``, ``$`` as prelude calls."""
        left = self.application()
        for symbol, function in ((":", "cons"), ("++", "append"), ("$", "$")):
            if self.at_symbol(symbol):
                self.next()
                right = self.operator_term()
                return app(Var(function), left, right)
        return left

    def application(self) -> Term:
        head = self.atom()
        arguments: list[Term] = []
        while self._at_atom():
            arguments.append(self.atom())
        return app(head, *arguments)

    def _at_atom(self) -> bool:
        token = self.peek()
        if token.kind in ("ident", "conid", "int", "bool", "char", "string"):
            return True
        return token.kind == "symbol" and token.text in ("(", "[")

    def atom(self) -> Term:
        token = self.peek()
        if token.kind == "ident" or token.kind == "conid":
            self.next()
            return Var(token.text)
        if token.kind == "int":
            self.next()
            return Lit(int(token.text))
        if token.kind == "bool":
            self.next()
            return Lit(token.text == "True")
        if token.kind == "char":
            self.next()
            return Lit(token.text)
        if token.kind == "string":
            self.next()
            return Lit(token.text)
        if self.at_symbol("["):
            self.next()
            if self.at_symbol("]"):
                self.next()
                return Var("nil")
            elements = [self.term()]
            while self.at_symbol(","):
                self.next()
                elements.append(self.term())
            self.expect_symbol("]")
            result: Term = Var("nil")
            for element in reversed(elements):
                result = app(Var("cons"), element, result)
            return result
        if self.at_symbol("("):
            self.next()
            if self.at_symbol(")"):
                self.next()
                return Var("unit")
            first = self.term()
            if self.at_symbol("::"):
                self.next()
                annotation = self.type_()
                self.expect_symbol(")")
                return Ann(first, annotation)
            if self.at_symbol(","):
                elements = [first]
                while self.at_symbol(","):
                    self.next()
                    elements.append(self.term())
                self.expect_symbol(")")
                result = app(Var("pair"), *elements)
                return result
            self.expect_symbol(")")
            return first
        raise ParseError(f"expected a term, found `{token}`", token.line, token.column)


def parse_term(source: str) -> Term:
    """Parse a complete term."""
    parser = _Parser(tokenize(source))
    term = parser.term()
    parser.expect_eof()
    return term


def parse_type(source: str) -> Type:
    """Parse a complete type."""
    parser = _Parser(tokenize(source))
    type_ = parser.type_()
    parser.expect_eof()
    return type_
