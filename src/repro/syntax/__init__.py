"""Surface syntax: lexer, parser and pretty printer."""

from repro.syntax.lexer import Token, tokenize
from repro.syntax.parser import parse_term, parse_type
from repro.syntax.pretty import pretty_term, pretty_type

__all__ = ["Token", "tokenize", "parse_term", "parse_type", "pretty_term", "pretty_type"]
