"""Lexer for the Haskell-like surface syntax of terms and types."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ParseError

KEYWORDS = {"forall", "let", "in", "case", "of", "True", "False"}

# Multi-character symbols first so maximal munch works.
SYMBOLS = [
    "::",
    "->",
    "=>",
    "++",
    "∀",  # ∀
    "→",  # →
    "\\",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    "=",
    ":",
    "$",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # 'ident', 'conid', 'int', 'char', 'string', 'symbol', 'eof'
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text if self.kind != "eof" else "<end of input>"


def tokenize(source: str) -> list[Token]:
    """Convert source text into a token list (ending with an ``eof``)."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("--", index):
            while index < length and source[index] != "\n":
                advance(1)
            continue
        if char.isdigit():
            start = index
            start_line, start_column = line, column
            while index < length and source[index].isdigit():
                advance(1)
            tokens.append(Token("int", source[start:index], start_line, start_column))
            continue
        if char == "'":
            if index + 2 < length and source[index + 2] == "'":
                tokens.append(Token("char", source[index + 1], line, column))
                advance(3)
                continue
            # A prime after an identifier is handled below; a lone quote
            # here is an error.
            raise ParseError("unterminated character literal", line, column)
        if char == '"':
            start = index + 1
            end = source.find('"', start)
            if end == -1:
                raise ParseError("unterminated string literal", line, column)
            tokens.append(Token("string", source[start:end], line, column))
            advance(end + 1 - index)
            continue
        if char.isalpha() or char == "_":
            start = index
            start_line, start_column = line, column
            while index < length and (source[index].isalnum() or source[index] in "_'"):
                advance(1)
            text = source[start:index]
            if text in ("True", "False"):
                tokens.append(Token("bool", text, start_line, start_column))
            elif text in KEYWORDS:
                tokens.append(Token("keyword", text, start_line, start_column))
            elif text[0].isupper():
                tokens.append(Token("conid", text, start_line, start_column))
            else:
                tokens.append(Token("ident", text, start_line, start_column))
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, line, column))
                advance(len(symbol))
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
