"""Pretty printer for terms and types (inverse of the parser)."""

from __future__ import annotations

from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.types import Type, render_type

_ATOM, _APP, _TOP = 2, 1, 0

# Applications of these prelude functions print back as the operators the
# parser desugars them from.
_INFIX = {"cons": ":", "append": "++", "$": "$"}


def pretty_type(type_: Type) -> str:
    """Render a type in surface syntax."""
    return render_type(type_)


def pretty_term(term: Term, precedence: int = _TOP) -> str:
    """Render a term in surface syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Lit):
        if isinstance(term.value, bool):
            return "True" if term.value else "False"
        if isinstance(term.value, str) and len(term.value) == 1:
            return f"'{term.value}'"
        if isinstance(term.value, str):
            return f'"{term.value}"'
        return str(term.value)
    if isinstance(term, App):
        if (
            isinstance(term.head, Var)
            and term.head.name in _INFIX
            and len(term.args) == 2
        ):
            symbol = _INFIX[term.head.name]
            rendered = (
                f"{pretty_term(term.args[0], _ATOM)} {symbol} "
                f"{pretty_term(term.args[1], _APP)}"
            )
            return f"({rendered})" if precedence >= _APP else rendered
        pieces = [pretty_term(term.head, _ATOM)]
        pieces += [pretty_term(argument, _ATOM) for argument in term.args]
        rendered = " ".join(pieces)
        return f"({rendered})" if precedence >= _ATOM else rendered
    if isinstance(term, (Lam, AnnLam)):
        binders: list[str] = []
        body: Term = term
        while isinstance(body, (Lam, AnnLam)):
            if isinstance(body, Lam):
                binders.append(body.var)
            else:
                binders.append(f"({body.var} :: {pretty_type(body.annotation)})")
            body = body.body
        rendered = f"\\{' '.join(binders)} -> {pretty_term(body, _TOP)}"
        return f"({rendered})" if precedence > _TOP else rendered
    if isinstance(term, Ann):
        return f"({pretty_term(term.expr, _TOP)} :: {pretty_type(term.annotation)})"
    if isinstance(term, Let):
        rendered = (
            f"let {term.var} = {pretty_term(term.bound, _TOP)} "
            f"in {pretty_term(term.body, _TOP)}"
        )
        return f"({rendered})" if precedence > _TOP else rendered
    if isinstance(term, Case):
        alts = " ; ".join(
            f"{alt.constructor}"
            + ("" if not alt.binders else " " + " ".join(alt.binders))
            + f" -> {pretty_term(alt.rhs, _TOP)}"
            for alt in term.alts
        )
        rendered = f"case {pretty_term(term.scrutinee, _TOP)} of {{ {alts} }}"
        return f"({rendered})" if precedence > _TOP else rendered
    raise TypeError(f"unknown term node: {term!r}")
