"""Seeded, size-bounded generation of closed GI terms.

Two generation modes feed the conformance fuzzer:

* **arbitrary** — random closed terms over the Figure-2 prelude names.
  Most are ill-typed; they exercise the rejection paths and the
  never-crash guarantee.
* **well-typed-by-construction** — terms grown *backward* from a goal
  type: to inhabit ``σ1 → σ2`` introduce a lambda, to inhabit ``T σ̄``
  pick a prelude function whose (rank-1) scheme instantiates to the goal
  and recurse on the instantiated argument types.  Instantiation images
  are fully monomorphic unless the production wraps the application in a
  type annotation, mirroring the paper's guardedness discipline — so the
  overwhelming majority of generated terms are GI-accepted and drive the
  declarative/System-F/HM oracles, without *guaranteeing* acceptance
  (the oracles are implications, not tautologies).

A third mode replays the Figure 2 corpus itself, seeding the metamorphic
transforms with the exact programs the paper discusses.

Everything is driven by :class:`random.Random` instances derived from
``f"{seed}:{index}"``, so the same seed reproduces the same case list
regardless of count, ordering or process (no ``hypothesis`` dependency —
the property-based strategies live in
:mod:`repro.conformance.strategies`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.env import Environment
from repro.core.terms import (
    Ann,
    AnnLam,
    Case,
    CaseAlt,
    Lam,
    Let,
    Lit,
    Term,
    Var,
    app,
    term_size,
)
from repro.core.types import (
    BOOL,
    CHAR,
    INT,
    Forall,
    TCon,
    TVar,
    Type,
    alpha_equal,
    forall,
    fun,
    is_fully_monomorphic,
    list_of,
    split_arrows,
    strip_forall,
    subst_tvars,
    tuple_of,
)

MODE_WELL_TYPED = "well-typed"
MODE_ARBITRARY = "arbitrary"
MODE_FIGURE2 = "figure2"

_A = TVar("a")
ID_TYPE = forall(["a"], fun(_A, _A))

#: Goal types the well-typed generator grows terms for; a mix of ground
#: monotypes and the polymorphic shapes the paper's examples revolve
#: around (annotated productions make the poly goals reachable).
GOAL_POOL: tuple[Type, ...] = (
    INT,
    BOOL,
    fun(INT, INT),
    fun(INT, BOOL),
    list_of(INT),
    list_of(BOOL),
    list_of(fun(INT, INT)),
    tuple_of(INT, BOOL),
    fun(fun(INT, INT), INT),
    fun(INT, INT, INT),
    ID_TYPE,
    list_of(ID_TYPE),
    fun(ID_TYPE, ID_TYPE),
    forall(["a"], fun(list_of(_A), INT)),
    forall(["a", "b"], fun(_A, TVar("b"), TVar("b"))),
)

#: Annotation types the arbitrary generator sprinkles onto subterms.
ANNOTATION_POOL: tuple[Type, ...] = (
    INT,
    fun(INT, INT),
    list_of(INT),
    ID_TYPE,
    list_of(ID_TYPE),
    forall(["a", "b"], fun(_A, TVar("b"), TVar("b"))),
)

#: Prelude names excluded from the generator pools: ``$`` only
#: pretty-prints as a binary operator, and ``undefined`` turns every
#: evaluation comparison into an exception comparison.
EXCLUDED_NAMES = frozenset({"$", "undefined"})


@dataclass(frozen=True)
class FuzzCase:
    """One generated conformance case, reproducible from ``seed:index``."""

    index: int
    seed: int
    mode: str
    term: Term
    goal: Type | None = None

    @property
    def source(self) -> str:
        return str(self.term)

    @property
    def size(self) -> int:
        return term_size(self.term)


class _Dead(Exception):
    """Internal: no production applies for the current goal."""


class TermGenerator:
    """Deterministic term generation against one environment."""

    def __init__(self, env: Environment, max_depth: int = 4) -> None:
        self.env = env
        self.max_depth = max_depth
        self.pool: list[tuple[str, Type]] = [
            (name, env.lookup(name))
            for name in sorted(env.names())
            if name not in EXCLUDED_NAMES
        ]

    # -- public entry points -------------------------------------------

    def case(self, seed: int, index: int) -> FuzzCase:
        """The conformance case for position ``index`` of sweep ``seed``."""
        rng = random.Random(f"{seed}:{index}")
        roll = rng.random()
        if roll < 0.55:
            goal = self._pick_goal(rng)
            term = self.well_typed(rng, goal)
            return FuzzCase(index, seed, MODE_WELL_TYPED, term, goal)
        if roll < 0.85:
            return FuzzCase(index, seed, MODE_ARBITRARY, self.arbitrary(rng))
        return FuzzCase(index, seed, MODE_FIGURE2, self._figure2(rng))

    def cases(self, seed: int, count: int) -> list[FuzzCase]:
        return [self.case(seed, index) for index in range(count)]

    def well_typed(self, rng: random.Random, goal: Type) -> Term:
        """Grow a term backward from ``goal`` (biased toward acceptance)."""
        fuel = rng.randint(2, self.max_depth)
        return self._for_type(rng, goal, {}, fuel)

    def arbitrary(self, rng: random.Random) -> Term:
        """A random closed term; typeability is the luck of the draw."""
        fuel = rng.randint(1, self.max_depth)
        return self._arbitrary(rng, fuel, ())

    # -- well-typed productions ----------------------------------------

    def _pick_goal(self, rng: random.Random) -> Type:
        if rng.random() < 0.7:
            return rng.choice(GOAL_POOL)
        return self._random_mono(rng, rng.randint(0, 2))

    def _random_mono(self, rng: random.Random, depth: int) -> Type:
        if depth <= 0:
            return rng.choice((INT, BOOL, CHAR))
        roll = rng.random()
        if roll < 0.4:
            return fun(
                self._random_mono(rng, depth - 1), self._random_mono(rng, depth - 1)
            )
        if roll < 0.7:
            return list_of(self._random_mono(rng, depth - 1))
        return tuple_of(
            self._random_mono(rng, depth - 1), self._random_mono(rng, depth - 1)
        )

    def _for_type(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        if isinstance(goal, Forall) and not goal.context:
            # Quantified goals: an exact-type variable, or a term grown for
            # the body (binders rigid) wrapped in a guarding annotation —
            # the annotation pins the quantifier structure exactly, which
            # matters in argument positions (arrows are invariant).
            exact = self._alpha_vars(goal, local)
            if exact and rng.random() < 0.5:
                return Var(rng.choice(exact))
            return Ann(self._for_type(rng, goal.body, local, fuel), goal)
        productions = []
        if fuel > 0:
            if _is_arrow(goal):
                productions.append(self._intro_lambda)
                productions.append(self._intro_lambda)  # weight lambdas up
            productions.append(self._intro_app)
            productions.append(self._intro_let)
            if rng.random() < 0.15:
                productions.append(self._intro_case)
            if rng.random() < 0.2:
                productions.append(self._intro_ann)
        rng.shuffle(productions)
        productions.append(self._base)
        for production in productions:
            try:
                return production(rng, goal, local, fuel)
            except _Dead:
                continue
        return self._last_resort(rng, goal, local)

    def _intro_lambda(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        if not _is_arrow(goal):
            raise _Dead
        domain, codomain = _arrow_parts(goal)
        name = self._fresh_var(local)
        inner = dict(local)
        inner[name] = domain
        body = self._for_type(rng, codomain, inner, fuel - 1)
        if is_fully_monomorphic(domain):
            return Lam(name, body)
        return AnnLam(name, domain, body)

    def _intro_app(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        candidates = self._app_candidates(goal, local, mono_only=True, min_args=1)
        if not candidates:
            raise _Dead
        name, arg_types = rng.choice(candidates)
        args = [self._for_type(rng, t, local, fuel - 1) for t in arg_types]
        return app(Var(name), *args)

    def _intro_ann(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        """An annotated application whose annotation *guards* impredicative
        instantiation (rule AnnApp): poly images are allowed exactly for
        binders determined by the goal."""
        candidates = self._app_candidates(goal, local, mono_only=False, min_args=0)
        if not candidates:
            raise _Dead
        name, arg_types = rng.choice(candidates)
        args = [self._for_type(rng, t, local, max(fuel - 2, 0)) for t in arg_types]
        return Ann(app(Var(name), *args), goal)

    def _intro_let(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        bound_type = self._random_mono(rng, rng.randint(0, 1))
        name = self._fresh_var(local)
        bound = self._for_type(rng, bound_type, local, fuel - 1)
        inner = dict(local)
        inner[name] = bound_type
        body = self._for_type(rng, goal, inner, fuel - 1)
        return Let(name, bound, body)

    def _intro_case(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        element = self._random_mono(rng, 0)
        if rng.random() < 0.5:
            scrutinee = self._for_type(rng, list_of(element), local, fuel - 1)
            head_name = self._fresh_var(local)
            tail_name = self._fresh_var({**local, head_name: element})
            inner = dict(local)
            inner[head_name] = element
            inner[tail_name] = list_of(element)
            return Case(
                scrutinee,
                (
                    CaseAlt(
                        "Cons",
                        (head_name, tail_name),
                        self._for_type(rng, goal, inner, fuel - 1),
                    ),
                    CaseAlt("Nil", (), self._for_type(rng, goal, local, fuel - 1)),
                ),
            )
        scrutinee = self._for_type(rng, TCon("Maybe", (element,)), local, fuel - 1)
        name = self._fresh_var(local)
        inner = dict(local)
        inner[name] = element
        return Case(
            scrutinee,
            (
                CaseAlt("Just", (name,), self._for_type(rng, goal, inner, fuel - 1)),
                CaseAlt("Nothing", (), self._for_type(rng, goal, local, fuel - 1)),
            ),
        )

    def _base(
        self, rng: random.Random, goal: Type, local: dict[str, Type], fuel: int
    ) -> Term:
        options: list[Term] = []
        if goal == INT:
            options.append(Lit(rng.randint(0, 9)))
        elif goal == BOOL:
            options.append(Lit(rng.random() < 0.5))
        elif goal == CHAR:
            options.append(Lit(rng.choice("abc")))
        options.extend(Var(name) for name in self._alpha_vars(goal, local))
        for name, arg_types in self._app_candidates(
            goal, local, mono_only=True, min_args=0, max_args=0
        ):
            options.append(Var(name))
        if not options:
            raise _Dead
        return rng.choice(options)

    def _alpha_vars(self, goal: Type, local: dict[str, Type]) -> list[str]:
        """Variables that inhabit ``goal`` verbatim (rule VarGen
        re-generalises rank-1 schemes; other types pass through)."""
        return [
            name
            for name, type_ in sorted(local.items()) + self.pool
            if alpha_equal(type_, goal)
        ]

    def _last_resort(
        self, rng: random.Random, goal: Type, local: dict[str, Type]
    ) -> Term:
        """When no production applied: an annotated nullary match (poly
        images guarded by the annotation), a zero-fuel lambda, or — truly
        out of options — a literal that is probably ill-typed."""
        for name, type_ in sorted(local.items()) + self.pool:
            if alpha_equal(type_, goal):
                return Var(name)
        candidates = self._app_candidates(goal, local, mono_only=False, min_args=0)
        for name, arg_types in candidates:
            if not arg_types:
                return Ann(Var(name), goal)
        if _is_arrow(goal):
            return self._intro_lambda(rng, goal, local, 1)
        if isinstance(goal, TCon) and goal.name == "(,)" and len(goal.args) == 2:
            return app(
                Var("pair"),
                self._last_resort(rng, goal.args[0], local),
                self._last_resort(rng, goal.args[1], local),
            )
        if isinstance(goal, TCon) and goal.name == "[]" and len(goal.args) == 1:
            return Ann(Var("nil"), goal)
        return Lit(0)

    # -- scheme matching -----------------------------------------------

    def _app_candidates(
        self,
        goal: Type,
        local: dict[str, Type],
        mono_only: bool,
        min_args: int,
        max_args: int = 3,
    ) -> list[tuple[str, list[Type]]]:
        """Head variables whose scheme reaches ``goal`` after consuming
        ``k`` arguments (``min_args ≤ k ≤ max_args``), paired with the
        instantiated argument types to generate."""
        found: list[tuple[str, list[Type]]] = []
        pools = list(self.pool) + sorted(local.items())
        for name, scheme in pools:
            binders, body = strip_forall(scheme)
            if isinstance(scheme, Forall) and scheme.context:
                continue
            arg_types, _ = split_arrows(body)
            for k in range(min_args, min(len(arg_types), max_args) + 1):
                remainder = _drop_arrows(body, k)
                mapping = _match(remainder, goal, frozenset(binders), mono_only)
                if mapping is None:
                    continue
                for binder in binders:
                    # Binders the goal does not determine are filled with
                    # a plain monotype.
                    mapping.setdefault(binder, INT)
                instantiated = [
                    subst_tvars(mapping, argument) for argument in arg_types[:k]
                ]
                if mono_only and any(
                    not is_fully_monomorphic(image) for image in mapping.values()
                ):
                    continue
                if not all(
                    self._inhabitable(argument, local) for argument in instantiated
                ):
                    # e.g. ``runST`` at goal ``[Char]`` would demand an
                    # argument of type ``∀s. ST s [Char]`` — nothing in the
                    # prelude can produce one, so skip the head entirely.
                    continue
                found.append((name, instantiated))
                break  # one arity per head keeps the search cheap
        return found

    def _inhabitable(
        self, goal: Type, local: dict[str, Type], depth: int = 4
    ) -> bool:
        """A cheap sufficient check that the generator can build a term of
        ``goal`` — used to prune application candidates whose argument
        types would dead-end (conservative: ``False`` means "don't know
        how", not "uninhabited")."""
        if depth <= 0:
            return False
        if self._alpha_vars(goal, local):
            return True
        if isinstance(goal, Forall):
            return not goal.context and self._inhabitable(
                goal.body, local, depth - 1
            )
        if _is_arrow(goal):
            domain, codomain = _arrow_parts(goal)
            binder = f"_inhab{depth}"
            return self._inhabitable(codomain, {**local, binder: domain}, depth - 1)
        if isinstance(goal, TCon):
            if goal.name in ("Int", "Bool", "Char", "String", "[]"):
                return True
            if goal.name == "Maybe":
                return True
            if goal.name.startswith("(,"):
                return all(
                    self._inhabitable(argument, local, depth - 1)
                    for argument in goal.args
                )
        return bool(
            self._app_candidates(goal, local, mono_only=False, min_args=0, max_args=0)
        )

    # -- arbitrary terms -----------------------------------------------

    def _arbitrary(
        self, rng: random.Random, fuel: int, bound: tuple[str, ...]
    ) -> Term:
        if fuel <= 0 or rng.random() < 0.25:
            roll = rng.random()
            if roll < 0.45 or (not bound and not self.pool):
                return Lit(
                    rng.choice((0, 1, 5, True, False, "a"))
                )
            if bound and roll < 0.7:
                return Var(rng.choice(bound))
            return Var(rng.choice(self.pool)[0])
        roll = rng.random()
        if roll < 0.35:
            head = self._arbitrary(rng, fuel - 1, bound)
            args = [
                self._arbitrary(rng, fuel - 1, bound)
                for _ in range(rng.randint(1, 2))
            ]
            return app(head, *args)
        if roll < 0.6:
            name = f"x{len(bound) + 1}"
            return Lam(name, self._arbitrary(rng, fuel - 1, bound + (name,)))
        if roll < 0.75:
            name = f"x{len(bound) + 1}"
            return Let(
                name,
                self._arbitrary(rng, fuel - 1, bound),
                self._arbitrary(rng, fuel - 1, bound + (name,)),
            )
        if roll < 0.9:
            return Ann(
                self._arbitrary(rng, fuel - 1, bound), rng.choice(ANNOTATION_POOL)
            )
        name = f"x{len(bound) + 1}"
        return AnnLam(
            name,
            rng.choice(ANNOTATION_POOL),
            self._arbitrary(rng, fuel - 1, bound + (name,)),
        )

    def _figure2(self, rng: random.Random) -> Term:
        from repro.evalsuite.figure2 import FIGURE2

        example = rng.choice(FIGURE2)
        return example.term

    @staticmethod
    def _fresh_var(local: dict[str, Type]) -> str:
        index = len(local) + 1
        while f"v{index}" in local:
            index += 1
        return f"v{index}"


# ---------------------------------------------------------------------
# First-order matching of a rank-1 scheme body against a goal type.
# ---------------------------------------------------------------------


def _is_arrow(type_: Type) -> bool:
    return isinstance(type_, TCon) and type_.name == "->" and len(type_.args) == 2


def _arrow_parts(type_: Type) -> tuple[Type, Type]:
    assert isinstance(type_, TCon)
    return type_.args[0], type_.args[1]


def _drop_arrows(type_: Type, count: int) -> Type:
    for _ in range(count):
        _, type_ = _arrow_parts(type_)
    return type_


def _match(
    pattern: Type, goal: Type, binders: frozenset[str], allow_poly: bool
) -> dict[str, Type] | None:
    """Find ``mapping`` over ``binders`` with ``pattern[mapping] = goal``.

    With ``allow_poly=False`` every image must be fully monomorphic (the
    un-annotated instantiation discipline); otherwise any image goes —
    the caller is responsible for guarding the instantiation with an
    annotation.
    """
    mapping: dict[str, Type] = {}
    if _match_into(pattern, goal, binders, mapping, allow_poly):
        return mapping
    return None


def _match_into(
    pattern: Type,
    goal: Type,
    binders: frozenset[str],
    mapping: dict[str, Type],
    allow_poly: bool,
) -> bool:
    if isinstance(pattern, TVar) and pattern.name in binders:
        if not allow_poly and not is_fully_monomorphic(goal):
            return False
        bound = mapping.get(pattern.name)
        if bound is not None:
            return alpha_equal(bound, goal)
        mapping[pattern.name] = goal
        return True
    if isinstance(pattern, TVar):
        return isinstance(goal, TVar) and goal.name == pattern.name
    if isinstance(pattern, TCon):
        if (
            not isinstance(goal, TCon)
            or goal.name != pattern.name
            or len(goal.args) != len(pattern.args)
        ):
            return False
        return all(
            _match_into(p, g, binders, mapping, allow_poly)
            for p, g in zip(pattern.args, goal.args)
        )
    if isinstance(pattern, Forall):
        # Quantified sub-patterns are matched rigidly: substitute what is
        # already decided and require alpha-equality.
        free = {name for name in binders if name not in pattern.binders}
        undecided = [name for name in free if name not in mapping]
        if undecided:
            return False
        return alpha_equal(subst_tvars(mapping, pattern), goal)
    return False
