"""The conformance oracle battery.

Each oracle checks one slice of the paper's metatheory on one term and
returns a :class:`Violation` (or ``None``).  All oracles are
*implications* conditioned on what GI itself says about the term, so
they hold for arbitrary input — ill-typed terms simply exercise fewer of
them:

==============  =====================================================
``crash``        GI only ever raises the :class:`GIError` taxonomy; a
                 contained :class:`InternalError` (or anything escaping
                 containment) is a bug (Section 4 / the robustness
                 layer's no-crash guarantee).
``roundtrip``    ``parse(pretty(t)) == t`` — the printer and parser are
                 inverses on every generated shape.
``declarative``  GI accepts ⇒ the declarative replay verifier accepts
                 every instantiation the solver chose (Theorem 4.2,
                 soundness direction, via :func:`verify_inference`).
``systemf``      GI accepts ⇒ the elaborated System F term type-checks
                 at an α-equivalent of the inferred type (Theorem C.1)
                 and its erasure evaluates to the same value as the
                 source term (elaboration preserves behaviour).
``hm``           the HM baseline accepts ⇒ GI accepts with an
                 α-equivalent principal type (Theorem 3.1).
``metamorphic``  the applicable type-preserving transforms of
                 :mod:`repro.conformance.metamorphic` preserve
                 typeability and the inferred type.
``differential`` cross-backend agreement over the whole system matrix,
                 phrased as the pairwise implications in
                 :data:`PAIRWISE_IMPLICATIONS` (HM accepts ⇒ every
                 generalising backend accepts at the same type; RankN
                 accepts ⇒ Quick Look accepts at the same type; GI
                 accepts ⇒ Quick Look accepts), plus crash containment
                 for every backend.  Unavailable outcomes (budget,
                 recursion depth) are vacuous, never disagreements.
==============  =====================================================

One inference run is shared by all oracles through
:class:`OracleContext` (results are cached per term), so the battery
costs roughly one ``infer`` plus the cheap replays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hm import HMInferencer
from repro.baselines.registry import SYSTEMS, Outcome, SystemOutcome
from repro.core.declarative import verify_inference
from repro.core.env import Environment
from repro.core.errors import BudgetExceededError, GIError, InternalError
from repro.core.infer import InferenceResult, Inferencer, InferOptions
from repro.core.policy import DEFAULT_POLICY, InstantiationPolicy, has_nested_forall
from repro.core.terms import Term
from repro.core.types import alpha_equal, rename_canonical
from repro.interp import evaluate, prelude_env
from repro.syntax.parser import parse_term
from repro.systemf import elaborate_result, erase, typecheck


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one term."""

    oracle: str
    message: str
    error_class: str | None = None

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


class OracleContext:
    """Shared state for one oracle battery run: the environment, one
    (budgeted, optionally fault-armed) inferencer, and a per-term cache
    of inference outcomes so each term is inferred exactly once."""

    def __init__(
        self,
        env: Environment,
        budget=None,
        faults=None,
        options: InferOptions | None = None,
        systems: tuple[str, ...] | None = None,
    ) -> None:
        self.env = env
        self.budget = budget
        self.faults = faults
        self.options = options
        self.systems = tuple(systems) if systems is not None else tuple(SYSTEMS)
        self.policy: InstantiationPolicy = (
            options.policy if options is not None else DEFAULT_POLICY
        )
        # Backends receive an explicit policy only when a non-reference
        # one was requested; under the default each system runs in its
        # own published configuration (eager-deep for the bidirectional
        # baselines), which is what the differential claims are about.
        self._backend_policy = None if self.policy == DEFAULT_POLICY else self.policy
        self._outcomes: dict[Term, tuple[InferenceResult | None, GIError | None]] = {}
        self._system_outcomes: dict[tuple[str, Term], SystemOutcome] = {}

    def outcome(self, term: Term) -> tuple[InferenceResult | None, GIError | None]:
        """``(result, None)`` on acceptance, ``(None, error)`` on any
        :class:`GIError` rejection (contained internal errors included)."""
        cached = self._outcomes.get(term)
        if cached is not None:
            return cached
        inferencer = Inferencer(
            self.env, options=self.options, budget=self.budget, faults=self.faults
        )
        try:
            outcome = (inferencer.infer(term), None)
        except GIError as error:
            outcome = (None, error)
        self._outcomes[term] = outcome
        return outcome

    def system_outcome(self, name: str, term: Term) -> SystemOutcome:
        """The three-valued outcome of one registered system on one term
        (cached).  ``GI`` reuses :meth:`outcome`, so the fault-armed,
        option-carrying inference run is shared with the other oracles
        rather than repeated through the registry."""
        cached = self._system_outcomes.get((name, term))
        if cached is not None:
            return cached
        if name == "GI":
            result, error = self.outcome(term)
            if result is not None:
                outcome = SystemOutcome(Outcome.ACCEPT, type_=result.type_)
            elif isinstance(error, InternalError):
                outcome = SystemOutcome(
                    Outcome.UNAVAILABLE,
                    error=type(error).__name__,
                    detail=str(error),
                    crashed=True,
                )
            elif isinstance(error, BudgetExceededError):
                outcome = SystemOutcome(
                    Outcome.UNAVAILABLE,
                    error=type(error).__name__,
                    detail=str(error),
                )
            else:
                outcome = SystemOutcome(
                    Outcome.REJECT,
                    error=type(error).__name__,
                    detail=str(error),
                )
        else:
            outcome = SYSTEMS[name].run(
                term, self.env, budget=self.budget, policy=self._backend_policy
            )
        self._system_outcomes[(name, term)] = outcome
        return outcome


# ---------------------------------------------------------------------
# The oracles.
# ---------------------------------------------------------------------


def oracle_crash(ctx: OracleContext, term: Term) -> Violation | None:
    try:
        result, error = ctx.outcome(term)
    except BaseException as escaped:  # noqa: BLE001 — escaping = the bug
        return Violation(
            "crash",
            f"non-GIError escaped the containment boundary: {escaped}",
            type(escaped).__name__,
        )
    if isinstance(error, InternalError):
        return Violation(
            "crash",
            f"contained internal failure ({error.original_class} during "
            f"{error.phase}): {error}",
            error.original_class,
        )
    return None


def oracle_roundtrip(ctx: OracleContext, term: Term) -> Violation | None:
    source = str(term)
    try:
        reparsed = parse_term(source)
    except GIError as error:
        return Violation(
            "roundtrip",
            f"pretty-printed term does not parse back: {error}",
            type(error).__name__,
        )
    if reparsed != term:
        return Violation(
            "roundtrip",
            f"parse(pretty(t)) differs from t: `{source}` reparses as "
            f"`{reparsed}`",
        )
    return None


def oracle_declarative(ctx: OracleContext, term: Term) -> Violation | None:
    if ctx.policy != DEFAULT_POLICY:
        # Theorem 4.2 is stated for the paper's eager-shallow discipline;
        # the replay verifier implements those instantiation rules, so
        # under an experimental policy it would report honest policy
        # differences as soundness failures.
        return None
    result, _error = ctx.outcome(term)
    if result is None:
        return None
    try:
        report = verify_inference(result)
    except Exception as error:  # noqa: BLE001 — a crashing verifier is a finding
        return Violation(
            "declarative",
            f"declarative replay crashed: {error}",
            type(error).__name__,
        )
    if not report.ok:
        failure = report.failures[0]
        return Violation(
            "declarative",
            f"solver instantiation not derivable declaratively "
            f"({len(report.failures)}/{report.checked} failed): {failure.reason}",
        )
    return None


def oracle_systemf(ctx: OracleContext, term: Term) -> Violation | None:
    if ctx.policy.deep:
        # The elaborator consumes the instantiation traces of the
        # shallow rules; deep prenexing inserts hoists the evidence does
        # not record, so Theorem C.1 is out of scope for deep policies.
        return None
    result, _error = ctx.outcome(term)
    if result is None:
        return None
    try:
        fterm = elaborate_result(result)
        ftype = typecheck(fterm, ctx.env)
    except GIError as error:
        return Violation(
            "systemf",
            f"elaboration/F-checking of an accepted term failed: {error}",
            type(error).__name__,
        )
    except Exception as error:  # noqa: BLE001 — elaborator crash is a finding
        return Violation(
            "systemf",
            f"elaborator crashed on an accepted term: {error}",
            type(error).__name__,
        )
    if not alpha_equal(rename_canonical(ftype), result.type_):
        return Violation(
            "systemf",
            f"System F type `{rename_canonical(ftype)}` differs from the "
            f"inferred `{result.type_}`",
        )
    source_outcome = _evaluate_contained(term)
    erased_outcome = _evaluate_contained(erase(fterm))
    if not _outcomes_agree(source_outcome, erased_outcome):
        return Violation(
            "systemf",
            f"erasure changes behaviour: source evaluates to "
            f"{_render_outcome(source_outcome)}, erased elaboration to "
            f"{_render_outcome(erased_outcome)}",
        )
    return None


def oracle_hm(ctx: OracleContext, term: Term) -> Violation | None:
    if not _annotation_free(term):
        # Theorem 3.1 quantifies over the unannotated λ→ fragment; on
        # annotated terms HM instantiates the annotation where GI keeps
        # (and scopes) its σ, so the types legitimately diverge.
        return None
    try:
        hm_type = HMInferencer(ctx.env).infer(term)
    except GIError:
        return None  # outside the λ→/HM fragment, or HM-untypeable
    except RecursionError:
        return None  # the baseline has no budget; deep terms are its limit
    result, error = ctx.outcome(term)
    if result is None:
        if isinstance(error, (BudgetExceededError, InternalError)):
            # GI established nothing about the term (the crash oracle
            # already reports internal errors); a budget blowup is not
            # a rejection and must not read as a disagreement.
            return None
        return Violation(
            "hm",
            f"HM accepts with `{hm_type}` but GI rejects: {error} "
            f"(Theorem 3.1 violated)",
            type(error).__name__ if error is not None else None,
        )
    if not alpha_equal(rename_canonical(hm_type), result.type_):
        return Violation(
            "hm",
            f"HM infers `{rename_canonical(hm_type)}` but GI infers "
            f"`{result.type_}` (Theorem 3.1 violated)",
        )
    return None


def oracle_metamorphic(ctx: OracleContext, term: Term) -> Violation | None:
    from repro.conformance.metamorphic import TRANSFORMS

    result, _error = ctx.outcome(term)
    if result is None:
        return None
    # Under deep policies a nested-forall signature is rewritten by deep
    # instantiation at the check site, so re-annotation is genuinely not
    # type-preserving there (the deep-subsumption instability); the
    # stability oracle owns that story — skip the legacy transform.
    skip_annotate = ctx.policy.deep and has_nested_forall(result.type_)
    for name, transform in TRANSFORMS:
        if name == "annotate" and skip_annotate:
            continue
        transformed = transform(term, result)
        if transformed is None:
            continue
        new_result, new_error = ctx.outcome(transformed)
        if new_result is None:
            return Violation(
                f"metamorphic:{name}",
                f"transform `{name}` loses typeability: `{transformed}` "
                f"rejected with: {new_error}",
                type(new_error).__name__ if new_error is not None else None,
            )
        if not alpha_equal(new_result.type_, result.type_):
            return Violation(
                f"metamorphic:{name}",
                f"transform `{name}` changes the type: `{result.type_}` "
                f"becomes `{new_result.type_}` on `{transformed}`",
            )
    return None


def oracle_stability(ctx: OracleContext, term: Term) -> Violation | None:
    """The stability-paper claims, as metamorphic checks conditioned on
    the active instantiation policy: let-inlining/extraction of a
    variable is type-preserving under lazy policies, redundant-signature
    insertion under every policy, and eta-expansion under the guard each
    depth admits (see :mod:`repro.conformance.metamorphic`)."""
    from repro.conformance.metamorphic import stability_transforms

    result, _error = ctx.outcome(term)
    if result is None:
        return None
    for name, transform in stability_transforms(ctx.policy, ctx.env):
        transformed = transform(term, result)
        if transformed is None:
            continue
        new_result, new_error = ctx.outcome(transformed)
        if new_result is None:
            if isinstance(new_error, (BudgetExceededError, InternalError)):
                # Nothing established (crash is the crash oracle's job).
                continue
            return Violation(
                f"stability:{name}",
                f"under policy `{ctx.policy}` transform `{name}` loses "
                f"typeability: `{transformed}` rejected with: {new_error}",
                type(new_error).__name__ if new_error is not None else None,
            )
        if not alpha_equal(new_result.type_, result.type_):
            return Violation(
                f"stability:{name}",
                f"under policy `{ctx.policy}` transform `{name}` changes "
                f"the type: `{result.type_}` becomes `{new_result.type_}` "
                f"on `{transformed}`",
            )
    return None


#: Cross-backend implications the differential oracle enforces:
#: ``(premise, conclusion, level)`` — when the premise system accepts a
#: term, the conclusion system must accept it too; at ``"type"`` level
#: the inferred σ-types must additionally be α-equivalent.
#:
#: * HM ⇒ everything that generalises ``let``: a rank-1 HM-typeable term
#:   sits in the common conservative fragment of HMF (both argument
#:   orders), predicative RankN, FreezeML, and Quick Look, and each of
#:   them infers the HM principal type.  HM ⇒ GI is deliberately *not*
#:   here: GI's ``let`` does not generalise (§3.5), so let-polymorphic
#:   HM terms are honest counterexamples — the legacy ``hm`` oracle
#:   keeps the annotated Theorem 3.1 role for that pair.
#: * RankN ⇒ QuickLook: Quick Look is RankN plus extra quick-look
#:   commits, so every RankN derivation survives verbatim.  Acceptance
#:   holds on all terms; the α-equivalence half quantifies over the
#:   annotation-free language only — an annotation is exactly where a
#:   σ-argument reaches a spine, and Quick Look commits it
#:   impredicatively (``single (id :: ∀a. a → a)`` is ``[∀a. a → a]``)
#:   where RankN instantiates (``∀a. [a → a]``).
#: * GI ⇒ QuickLook: on the *guarded* (annotation-free) fragment, every
#:   guarded instantiation GI performs is a quick-look-committable one
#:   (acceptance only — the systems pick different but equally valid
#:   σ-types on some terms).
#:
#: HMF ⇄ HMF-N appears in neither direction: the measured Figure-2
#: deviation sets show the argument orders are incomparable.
PAIRWISE_IMPLICATIONS: tuple[tuple[str, str, str], ...] = (
    ("HM", "HMF", "type"),
    ("HM", "HMF-N", "type"),
    ("HM", "RankN", "type"),
    ("HM", "FreezeML", "type"),
    ("HM", "QuickLook", "type"),
    ("RankN", "QuickLook", "type"),
    ("GI", "QuickLook", "accepts"),
)


def oracle_differential(ctx: OracleContext, term: Term) -> Violation | None:
    """Cross-backend crash containment plus the pairwise implications,
    restricted to ``ctx.systems``.  Unavailable outcomes are vacuous."""
    for name in ctx.systems:
        outcome = ctx.system_outcome(name, term)
        if outcome.crashed:
            return Violation(
                f"differential:{name}",
                f"backend `{name}` crashed instead of deciding the term: "
                f"{outcome.detail}",
                outcome.error,
            )
    if ctx.policy != DEFAULT_POLICY:
        # The pairwise implications relate the *published* systems; under
        # an experimental policy every backend with a policy axis runs a
        # variant configuration, so only crash containment is asserted.
        return None
    for premise, conclusion, level in PAIRWISE_IMPLICATIONS:
        if premise not in ctx.systems or conclusion not in ctx.systems:
            continue
        if premise in ("HM", "GI") and not _annotation_free(term):
            # The theorems behind the HM and GI implications quantify
            # over the *unannotated* language: each backend gives `::`
            # its own checking semantics (HMF skolemises where HM
            # instantiates; GI scopes annotation variables and keeps
            # the annotated σ where RankN-style systems instantiate),
            # so annotated terms are outside the implications' scope.
            continue
        premise_outcome = ctx.system_outcome(premise, term)
        if not premise_outcome.accepted:
            continue
        conclusion_outcome = ctx.system_outcome(conclusion, term)
        if not conclusion_outcome.available:
            continue
        if conclusion_outcome.rejected:
            return Violation(
                f"differential:{premise}=>{conclusion}",
                f"`{premise}` accepts with `{premise_outcome.type_}` but "
                f"`{conclusion}` rejects: {conclusion_outcome.detail}",
                conclusion_outcome.error,
            )
        if level == "type" and not _annotation_free(term):
            # Acceptance is settled above; the type-equality half only
            # quantifies over the annotation-free language (Quick Look
            # commits annotated σ-arguments impredicatively where the
            # predicative systems instantiate them).
            continue
        if level == "type" and not alpha_equal(
            rename_canonical(premise_outcome.type_),
            rename_canonical(conclusion_outcome.type_),
        ):
            return Violation(
                f"differential:{premise}=>{conclusion}",
                f"`{premise}` infers `{rename_canonical(premise_outcome.type_)}` "
                f"but `{conclusion}` infers "
                f"`{rename_canonical(conclusion_outcome.type_)}`",
            )
    return None


def _annotation_free(term: Term) -> bool:
    """Whether the term is in the shared unannotated language the
    HM-conservativity implications quantify over."""
    from repro.core.terms import Ann, AnnLam, App, Case, Lam, Let

    if isinstance(term, (Ann, AnnLam)):
        return False
    if isinstance(term, App):
        return _annotation_free(term.head) and all(
            _annotation_free(argument) for argument in term.args
        )
    if isinstance(term, Lam):
        return _annotation_free(term.body)
    if isinstance(term, Let):
        return _annotation_free(term.bound) and _annotation_free(term.body)
    if isinstance(term, Case):
        return _annotation_free(term.scrutinee) and all(
            _annotation_free(alt.rhs) for alt in term.alts
        )
    return True


#: Registry, in battery order — cheap structural checks first, then the
#: implication oracles that need an inference result.
ORACLES: dict[str, object] = {
    "crash": oracle_crash,
    "roundtrip": oracle_roundtrip,
    "declarative": oracle_declarative,
    "systemf": oracle_systemf,
    "hm": oracle_hm,
    "metamorphic": oracle_metamorphic,
    "stability": oracle_stability,
    "differential": oracle_differential,
}

DEFAULT_ORACLES: tuple[str, ...] = tuple(ORACLES)


def run_battery(
    ctx: OracleContext, term: Term, oracles: tuple[str, ...] = DEFAULT_ORACLES
) -> Violation | None:
    """Run the selected oracles in order; the first violation wins."""
    for name in oracles:
        oracle = ORACLES.get(name)
        if oracle is None:
            raise ValueError(
                f"unknown oracle {name!r} (available: {', '.join(ORACLES)})"
            )
        violation = oracle(ctx, term)
        if violation is not None:
            return violation
    return None


# ---------------------------------------------------------------------
# Evaluation comparison for the erasure half of the systemf oracle.
# ---------------------------------------------------------------------


def _evaluate_contained(term: Term):
    """``("value", v)`` or ``("error", exception_class_name)``.

    GI-accepted terms are strongly normalising (they elaborate to System
    F), but evaluation can still fail honestly — ``head nil`` — and the
    comparison only requires the *same* failure on both sides.
    """
    try:
        return ("value", evaluate(term, prelude_env()))
    except Exception as error:  # noqa: BLE001 — runtime errors are data here
        return ("error", type(error).__name__)


def _outcomes_agree(left, right) -> bool:
    if left[0] != right[0]:
        return False
    if left[0] == "error":
        return left[1] == right[1]
    return _values_agree(left[1], right[1], depth=6)


def _values_agree(left, right, depth: int) -> bool:
    """Structural agreement up to unobservable function values."""
    if depth <= 0:
        return True
    if callable(left) or callable(right):
        return callable(left) and callable(right)
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            _values_agree(l, r, depth - 1) for l, r in zip(left, right)
        )
    from repro.interp import DataValue

    if isinstance(left, DataValue) and isinstance(right, DataValue):
        return left.constructor == right.constructor and all(
            _values_agree(l, r, depth - 1)
            for l, r in zip(left.fields, right.fields)
        )
    return type(left) is type(right) and left == right


def _render_outcome(outcome) -> str:
    if outcome[0] == "error":
        return f"a runtime error ({outcome[1]})"
    value = outcome[1]
    return "a function value" if callable(value) else repr(value)
