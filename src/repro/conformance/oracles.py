"""The conformance oracle battery.

Each oracle checks one slice of the paper's metatheory on one term and
returns a :class:`Violation` (or ``None``).  All oracles are
*implications* conditioned on what GI itself says about the term, so
they hold for arbitrary input — ill-typed terms simply exercise fewer of
them:

==============  =====================================================
``crash``        GI only ever raises the :class:`GIError` taxonomy; a
                 contained :class:`InternalError` (or anything escaping
                 containment) is a bug (Section 4 / the robustness
                 layer's no-crash guarantee).
``roundtrip``    ``parse(pretty(t)) == t`` — the printer and parser are
                 inverses on every generated shape.
``declarative``  GI accepts ⇒ the declarative replay verifier accepts
                 every instantiation the solver chose (Theorem 4.2,
                 soundness direction, via :func:`verify_inference`).
``systemf``      GI accepts ⇒ the elaborated System F term type-checks
                 at an α-equivalent of the inferred type (Theorem C.1)
                 and its erasure evaluates to the same value as the
                 source term (elaboration preserves behaviour).
``hm``           the HM baseline accepts ⇒ GI accepts with an
                 α-equivalent principal type (Theorem 3.1).
``metamorphic``  the applicable type-preserving transforms of
                 :mod:`repro.conformance.metamorphic` preserve
                 typeability and the inferred type.
==============  =====================================================

One inference run is shared by all oracles through
:class:`OracleContext` (results are cached per term), so the battery
costs roughly one ``infer`` plus the cheap replays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hm import HMInferencer
from repro.core.declarative import verify_inference
from repro.core.env import Environment
from repro.core.errors import GIError, InternalError
from repro.core.infer import InferenceResult, Inferencer, InferOptions
from repro.core.terms import Term
from repro.core.types import alpha_equal, rename_canonical
from repro.interp import evaluate, prelude_env
from repro.syntax.parser import parse_term
from repro.systemf import elaborate_result, erase, typecheck


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one term."""

    oracle: str
    message: str
    error_class: str | None = None

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


class OracleContext:
    """Shared state for one oracle battery run: the environment, one
    (budgeted, optionally fault-armed) inferencer, and a per-term cache
    of inference outcomes so each term is inferred exactly once."""

    def __init__(
        self,
        env: Environment,
        budget=None,
        faults=None,
        options: InferOptions | None = None,
    ) -> None:
        self.env = env
        self.budget = budget
        self.faults = faults
        self.options = options
        self._outcomes: dict[Term, tuple[InferenceResult | None, GIError | None]] = {}

    def outcome(self, term: Term) -> tuple[InferenceResult | None, GIError | None]:
        """``(result, None)`` on acceptance, ``(None, error)`` on any
        :class:`GIError` rejection (contained internal errors included)."""
        cached = self._outcomes.get(term)
        if cached is not None:
            return cached
        inferencer = Inferencer(
            self.env, options=self.options, budget=self.budget, faults=self.faults
        )
        try:
            outcome = (inferencer.infer(term), None)
        except GIError as error:
            outcome = (None, error)
        self._outcomes[term] = outcome
        return outcome


# ---------------------------------------------------------------------
# The oracles.
# ---------------------------------------------------------------------


def oracle_crash(ctx: OracleContext, term: Term) -> Violation | None:
    try:
        result, error = ctx.outcome(term)
    except BaseException as escaped:  # noqa: BLE001 — escaping = the bug
        return Violation(
            "crash",
            f"non-GIError escaped the containment boundary: {escaped}",
            type(escaped).__name__,
        )
    if isinstance(error, InternalError):
        return Violation(
            "crash",
            f"contained internal failure ({error.original_class} during "
            f"{error.phase}): {error}",
            error.original_class,
        )
    return None


def oracle_roundtrip(ctx: OracleContext, term: Term) -> Violation | None:
    source = str(term)
    try:
        reparsed = parse_term(source)
    except GIError as error:
        return Violation(
            "roundtrip",
            f"pretty-printed term does not parse back: {error}",
            type(error).__name__,
        )
    if reparsed != term:
        return Violation(
            "roundtrip",
            f"parse(pretty(t)) differs from t: `{source}` reparses as "
            f"`{reparsed}`",
        )
    return None


def oracle_declarative(ctx: OracleContext, term: Term) -> Violation | None:
    result, _error = ctx.outcome(term)
    if result is None:
        return None
    try:
        report = verify_inference(result)
    except Exception as error:  # noqa: BLE001 — a crashing verifier is a finding
        return Violation(
            "declarative",
            f"declarative replay crashed: {error}",
            type(error).__name__,
        )
    if not report.ok:
        failure = report.failures[0]
        return Violation(
            "declarative",
            f"solver instantiation not derivable declaratively "
            f"({len(report.failures)}/{report.checked} failed): {failure.reason}",
        )
    return None


def oracle_systemf(ctx: OracleContext, term: Term) -> Violation | None:
    result, _error = ctx.outcome(term)
    if result is None:
        return None
    try:
        fterm = elaborate_result(result)
        ftype = typecheck(fterm, ctx.env)
    except GIError as error:
        return Violation(
            "systemf",
            f"elaboration/F-checking of an accepted term failed: {error}",
            type(error).__name__,
        )
    except Exception as error:  # noqa: BLE001 — elaborator crash is a finding
        return Violation(
            "systemf",
            f"elaborator crashed on an accepted term: {error}",
            type(error).__name__,
        )
    if not alpha_equal(rename_canonical(ftype), result.type_):
        return Violation(
            "systemf",
            f"System F type `{rename_canonical(ftype)}` differs from the "
            f"inferred `{result.type_}`",
        )
    source_outcome = _evaluate_contained(term)
    erased_outcome = _evaluate_contained(erase(fterm))
    if not _outcomes_agree(source_outcome, erased_outcome):
        return Violation(
            "systemf",
            f"erasure changes behaviour: source evaluates to "
            f"{_render_outcome(source_outcome)}, erased elaboration to "
            f"{_render_outcome(erased_outcome)}",
        )
    return None


def oracle_hm(ctx: OracleContext, term: Term) -> Violation | None:
    try:
        hm_type = HMInferencer(ctx.env).infer(term)
    except GIError:
        return None  # outside the λ→/HM fragment, or HM-untypeable
    except RecursionError:
        return None  # the baseline has no budget; deep terms are its limit
    result, error = ctx.outcome(term)
    if result is None:
        return Violation(
            "hm",
            f"HM accepts with `{hm_type}` but GI rejects: {error} "
            f"(Theorem 3.1 violated)",
            type(error).__name__ if error is not None else None,
        )
    if not alpha_equal(rename_canonical(hm_type), result.type_):
        return Violation(
            "hm",
            f"HM infers `{rename_canonical(hm_type)}` but GI infers "
            f"`{result.type_}` (Theorem 3.1 violated)",
        )
    return None


def oracle_metamorphic(ctx: OracleContext, term: Term) -> Violation | None:
    from repro.conformance.metamorphic import TRANSFORMS

    result, _error = ctx.outcome(term)
    if result is None:
        return None
    for name, transform in TRANSFORMS:
        transformed = transform(term, result)
        if transformed is None:
            continue
        new_result, new_error = ctx.outcome(transformed)
        if new_result is None:
            return Violation(
                f"metamorphic:{name}",
                f"transform `{name}` loses typeability: `{transformed}` "
                f"rejected with: {new_error}",
                type(new_error).__name__ if new_error is not None else None,
            )
        if not alpha_equal(new_result.type_, result.type_):
            return Violation(
                f"metamorphic:{name}",
                f"transform `{name}` changes the type: `{result.type_}` "
                f"becomes `{new_result.type_}` on `{transformed}`",
            )
    return None


#: Registry, in battery order — cheap structural checks first, then the
#: implication oracles that need an inference result.
ORACLES: dict[str, object] = {
    "crash": oracle_crash,
    "roundtrip": oracle_roundtrip,
    "declarative": oracle_declarative,
    "systemf": oracle_systemf,
    "hm": oracle_hm,
    "metamorphic": oracle_metamorphic,
}

DEFAULT_ORACLES: tuple[str, ...] = tuple(ORACLES)


def run_battery(
    ctx: OracleContext, term: Term, oracles: tuple[str, ...] = DEFAULT_ORACLES
) -> Violation | None:
    """Run the selected oracles in order; the first violation wins."""
    for name in oracles:
        violation = ORACLES[name](ctx, term)
        if violation is not None:
            return violation
    return None


# ---------------------------------------------------------------------
# Evaluation comparison for the erasure half of the systemf oracle.
# ---------------------------------------------------------------------


def _evaluate_contained(term: Term):
    """``("value", v)`` or ``("error", exception_class_name)``.

    GI-accepted terms are strongly normalising (they elaborate to System
    F), but evaluation can still fail honestly — ``head nil`` — and the
    comparison only requires the *same* failure on both sides.
    """
    try:
        return ("value", evaluate(term, prelude_env()))
    except Exception as error:  # noqa: BLE001 — runtime errors are data here
        return ("error", type(error).__name__)


def _outcomes_agree(left, right) -> bool:
    if left[0] != right[0]:
        return False
    if left[0] == "error":
        return left[1] == right[1]
    return _values_agree(left[1], right[1], depth=6)


def _values_agree(left, right, depth: int) -> bool:
    """Structural agreement up to unobservable function values."""
    if depth <= 0:
        return True
    if callable(left) or callable(right):
        return callable(left) and callable(right)
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            _values_agree(l, r, depth - 1) for l, r in zip(left, right)
        )
    from repro.interp import DataValue

    if isinstance(left, DataValue) and isinstance(right, DataValue):
        return left.constructor == right.constructor and all(
            _values_agree(l, r, depth - 1)
            for l, r in zip(left.fields, right.fields)
        )
    return type(left) is type(right) and left == right


def _render_outcome(outcome) -> str:
    if outcome[0] == "error":
        return f"a runtime error ({outcome[1]})"
    value = outcome[1]
    return "a function value" if callable(value) else repr(value)
