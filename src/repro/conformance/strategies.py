"""Hypothesis strategies for types and terms.

Promoted from ``tests/strategies.py`` so the strategies are importable
outside pytest (the conformance CLI and the seeded generator share the
same name pools); the old path re-exports everything from here.
Requires ``hypothesis`` — the seeded CLI generator in
:mod:`repro.conformance.generator` deliberately does not, so this module
is imported lazily by the package.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.sorts import Sort
from repro.core.terms import App, Lam, Lit, Term, Var, app
from repro.core.types import (
    BOOL,
    INT,
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    forall,
    fun,
    list_of,
)

TVAR_NAMES = ("a", "b", "c", "d")
UVAR_NAMES = ("u1", "u2", "u3")
CON_NAMES = ("Int", "Bool", "Char")


def monotypes(max_depth: int = 3) -> st.SearchStrategy[Type]:
    """Fully monomorphic types (sort ``m``)."""
    base = st.one_of(
        st.sampled_from(TVAR_NAMES).map(TVar),
        st.sampled_from(CON_NAMES).map(lambda n: TCon(n)),
        st.sampled_from(UVAR_NAMES).map(lambda n: UVar(n, Sort.M)),
    )
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda pair: fun(*pair)),
            inner.map(list_of),
        ),
        max_leaves=2 ** max_depth,
    )


def polytypes(max_depth: int = 3) -> st.SearchStrategy[Type]:
    """Arbitrary polymorphic types built with the smart constructor."""
    base = st.one_of(
        st.sampled_from(TVAR_NAMES).map(TVar),
        st.sampled_from(CON_NAMES).map(lambda n: TCon(n)),
    )

    def extend(inner: st.SearchStrategy[Type]) -> st.SearchStrategy[Type]:
        return st.one_of(
            st.tuples(inner, inner).map(lambda pair: fun(*pair)),
            inner.map(list_of),
            st.tuples(
                st.lists(st.sampled_from(TVAR_NAMES), min_size=1, max_size=2, unique=True),
                inner,
            ).map(lambda pair: forall(pair[0], pair[1])),
        )

    return st.recursive(base, extend, max_leaves=2 ** max_depth)


def closed_polytypes(max_depth: int = 3) -> st.SearchStrategy[Type]:
    """Polytypes without free type variables (quantify what is free)."""
    return polytypes(max_depth).map(_close)


def _close(type_: Type) -> Type:
    from repro.core.types import ftv

    return forall(sorted(ftv(type_)), type_)


VAR_POOL = ("x", "y", "z", "f", "g")


def hm_terms(depth: int = 3) -> st.SearchStrategy[Term]:
    """Terms in the rank-1 λ-calculus fragment over a tiny prelude.

    Variables may be free (resolved against the shared prelude) or bound.
    Used by the Theorem 3.1 compatibility tests.
    """
    base = st.one_of(
        st.sampled_from(("inc", "plus", "choose", "single", "length") + VAR_POOL).map(Var),
        st.integers(min_value=0, max_value=9).map(Lit),
        st.booleans().map(Lit),
    )

    def extend(inner: st.SearchStrategy[Term]) -> st.SearchStrategy[Term]:
        return st.one_of(
            st.tuples(st.sampled_from(VAR_POOL), inner).map(lambda p: Lam(p[0], p[1])),
            st.tuples(inner, st.lists(inner, min_size=1, max_size=2)).map(
                lambda p: app(p[0], *p[1])
            ),
        )

    return st.recursive(base, extend, max_leaves=2 ** depth)
