"""Conformance fuzzing: seeded generation, oracle battery, shrinking.

The correctness backstop for the whole reproduction.  One sweep
(:func:`run_fuzz` / ``python -m repro fuzz``) generates seeded closed
terms — most of them well-typed by construction, grown backward from a
goal type against the Figure-2 prelude — and checks every one against
the oracle battery (:mod:`repro.conformance.oracles`): never-crash,
printer/parser round-trip, declarative-replay soundness, System F
elaboration + erasure behaviour, HM agreement on the λ→ fragment,
metamorphic stability under small program transformations, the
instantiation-policy stability claims (let-inlining/extraction,
redundant signatures and guarded eta-expansion are type-preserving
exactly where "Seeking Stability by being Lazy and Shallow" promises —
``--policy`` selects the grid point), and cross-backend differential
agreement over the registered system matrix (``--systems`` restricts
which backends take part).  Violations
are greedily shrunk (:mod:`repro.conformance.shrink`) and persisted as
replayable ``.gi`` corpus files (:mod:`repro.conformance.corpus`) that
``repro batch`` and the regression suite both consume.

:mod:`repro.conformance.strategies` (the hypothesis strategies promoted
from ``tests/strategies.py``) is exported lazily: ``hypothesis`` is a
test-only dependency, and the seeded CLI generator must work without it.
"""

from repro.conformance.corpus import (
    CorpusEntry,
    counterexample_name,
    load_corpus,
    write_counterexample,
)
from repro.conformance.generator import (
    MODE_ARBITRARY,
    MODE_FIGURE2,
    MODE_WELL_TYPED,
    FuzzCase,
    TermGenerator,
)
from repro.conformance.metamorphic import TRANSFORMS, applicable_transforms
from repro.conformance.oracles import (
    DEFAULT_ORACLES,
    ORACLES,
    PAIRWISE_IMPLICATIONS,
    OracleContext,
    Violation,
    run_battery,
)
from repro.conformance.runner import (
    Counterexample,
    FuzzConfig,
    FuzzReport,
    render_fuzz_text,
    run_fuzz,
)
from repro.conformance.shrink import ShrinkResult, candidates, shrink

_STRATEGY_EXPORTS = (
    "closed_polytypes",
    "hm_terms",
    "monotypes",
    "polytypes",
)

__all__ = [
    "CorpusEntry",
    "Counterexample",
    "DEFAULT_ORACLES",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "MODE_ARBITRARY",
    "MODE_FIGURE2",
    "MODE_WELL_TYPED",
    "ORACLES",
    "OracleContext",
    "PAIRWISE_IMPLICATIONS",
    "ShrinkResult",
    "TRANSFORMS",
    "TermGenerator",
    "Violation",
    "applicable_transforms",
    "candidates",
    "counterexample_name",
    "load_corpus",
    "render_fuzz_text",
    "run_battery",
    "run_fuzz",
    "shrink",
    "write_counterexample",
    *_STRATEGY_EXPORTS,
]


def __getattr__(name: str):
    if name in _STRATEGY_EXPORTS:
        from repro.conformance import strategies

        return getattr(strategies, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
