"""Metamorphic transforms: small, meaning-preserving program edits that
must not change what GI infers.

This is the property class "Seeking Stability by being Lazy and Shallow"
argues for testing mechanically: inference should be *stable* under
eta-expansion of an application head, adding the inferred type as a
redundant annotation, let-floating an argument, and swapping independent
let bindings.  Each transform takes the original term plus its
:class:`~repro.core.infer.InferenceResult` and returns the transformed
term, or ``None`` when its applicability guard fails (the guards encode
exactly where the paper promises stability — e.g. eta-expansion is only
type-preserving when the function's domain is fully monomorphic, because
an unannotated lambda binder is monomorphic by the Lambda Rule).

The fuzzer's ``metamorphic`` oracle asserts that every applicable
transform preserves typeability and the inferred type up to
alpha-equivalence.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.env import Environment
from repro.core.infer import InferenceResult
from repro.core.policy import InstantiationPolicy, has_nested_forall
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    CaseAlt,
    Lam,
    Let,
    Lit,
    Term,
    Var,
    app,
    free_vars,
)
from repro.core.types import Forall, is_fully_monomorphic, split_arrows

Transform = Callable[[Term, InferenceResult], Optional[Term]]


def eta_expand(term: Term, result: InferenceResult) -> Term | None:
    """``e`` at ``τ1 → τ2``  ⇒  ``\\v. e v``  (fresh ``v``).

    Guard: the principal type must be an unquantified arrow with a fully
    monomorphic domain (the fresh binder is a plain ``Lam``, and the
    Lambda Rule makes unannotated binders monomorphic), the result
    context must be empty so the type is the whole story, and no
    quantifier may hide to the right of an arrow — under *shallow*
    instantiation ``e : Int → ∀a. a → a`` keeps its nested quantifier
    where ``\\v. e v`` instantiates it and re-generalises to the prenex
    ``∀a. Int → a → a`` (the stability paper's motivating instability;
    the deep policies restore eta through ``stability:eta``).
    """
    type_ = result.type_
    if isinstance(type_, Forall) or getattr(result, "context", ()):
        return None
    if has_nested_forall(type_):
        return None
    domains, _ = split_arrows(type_)
    if not domains or not is_fully_monomorphic(domains[0]):
        return None
    fresh = _fresh_name(term)
    return Lam(fresh, app(term, Var(fresh)))


def annotate_inferred(term: Term, result: InferenceResult) -> Term | None:
    """``e`` at ``σ``  ⇒  ``(e :: σ)``.

    Checking a term against its own principal type must succeed — this is
    the inferred type being *realisable* as an annotation (and exercises
    the checking direction of every syntax node the term contains).
    Guard: empty residual context, and skip terms already annotated at
    the top (the transform would be the identity).
    """
    if getattr(result, "context", ()):
        return None
    if isinstance(term, Ann) and term.annotation == result.type_:
        return None
    return Ann(term, result.type_)


def let_float_argument(term: Term, result: InferenceResult) -> Term | None:
    """``f e1 … en``  ⇒  ``let v = ei in f e1 … v … en``.

    Floating an argument into a ``let`` must preserve the result because
    GI's ``let`` does **not** generalise (§3.5): the binding gets exactly
    the argument's inferred type, so the application sees the same type
    through the variable.  Guard: the argument must be in *inference*
    mode — lambdas are excluded because their binder types come from the
    expected type at the application site (``poly (\\x -> x)`` checks the
    lambda against ``∀a. a → a``; floated out, the Lambda Rule gives it a
    monomorphic binder and the skolem escapes).  Variables and literals
    are skipped as no-ops.  Arguments the run *checked against a σ* are
    excluded too — the solver's evidence records skolems at the
    argument's path exactly when rule ArgGen generalised it (e.g.
    ``head ids`` checked against ``∀a. a → a`` in ``cons (head ids)
    (tail ids)``); floated out, the binding is typed in inference mode,
    eager instantiation gives it a monotype, and the σ is lost — the
    let-extraction instability the stability paper opens with, faithful
    GI behaviour rather than a bug.  The first eligible argument is
    chosen so the oracle is deterministic.
    """
    if not isinstance(term, App) or not term.args:
        return None
    for position, argument in enumerate(term.args):
        if argument.__class__.__name__ in ("Var", "Lit", "Lam", "AnnLam"):
            continue
        gen_info = result.evidence.gen_infos.get((position + 1,))
        if gen_info is not None and gen_info.skolems:
            continue
        fresh = _fresh_name(term)
        new_args = list(term.args)
        new_args[position] = Var(fresh)
        return Let(fresh, argument, App(term.head, tuple(new_args)))
    return None


def let_swap(term: Term, result: InferenceResult) -> Term | None:
    """``let x = e1 in let y = e2 in e``  ⇒  swap the two bindings.

    Guard: the bindings must be independent — ``x`` not free in ``e2``,
    ``y`` not free in ``e1`` (vacuously true since ``y`` is bound later),
    and distinct names so the swap does not change shadowing.
    """
    if not isinstance(term, Let) or not isinstance(term.body, Let):
        return None
    outer, inner = term, term.body
    if outer.var == inner.var:
        return None
    if outer.var in free_vars(inner.bound):
        return None
    if inner.var in free_vars(outer.bound):
        return None
    return Let(inner.var, inner.bound, Let(outer.var, outer.bound, inner.body))


#: Battery order is deterministic; the fuzzer applies every transform
#: whose guard passes.
TRANSFORMS: tuple[tuple[str, Transform], ...] = (
    ("eta", eta_expand),
    ("annotate", annotate_inferred),
    ("let-float", let_float_argument),
    ("let-swap", let_swap),
)


def applicable_transforms(
    term: Term, result: InferenceResult
) -> list[tuple[str, Term]]:
    """Every (name, transformed term) pair whose guard passes — the unit
    the ``metamorphic`` oracle and its tests iterate over."""
    out = []
    for name, transform in TRANSFORMS:
        transformed = transform(term, result)
        if transformed is not None:
            out.append((name, transformed))
    return out


def _fresh_name(term: Term, prefix: str = "mv") -> str:
    used = free_vars(term) | _bound_names(term)
    index = 1
    while f"{prefix}{index}" in used:
        index += 1
    return f"{prefix}{index}"


# ---------------------------------------------------------------------
# Stability transforms — the policy-conditional claims of "Seeking
# Stability by being Lazy and Shallow" (Bottu & Eisenberg, Haskell
# 2021).  Unlike :data:`TRANSFORMS`, whose guards encode where *this
# paper's* system (eager-shallow) promises stability, these encode where
# each point of the eager/lazy × deep/shallow grid does, so the battery
# depends on the active :class:`~repro.core.policy.InstantiationPolicy`.
# ---------------------------------------------------------------------


def _bound_names(term: Term) -> set[str]:
    """Every name bound anywhere inside the term."""
    out: set[str] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, App):
            stack.append(node.head)
            stack.extend(node.args)
        elif isinstance(node, (Lam, AnnLam)):
            out.add(node.var)
            stack.append(node.body)
        elif isinstance(node, Ann):
            stack.append(node.expr)
        elif isinstance(node, Let):
            out.add(node.var)
            stack.append(node.bound)
            stack.append(node.body)
        elif isinstance(node, Case):
            stack.append(node.scrutinee)
            for alt in node.alts:
                out.update(alt.binders)
                stack.append(alt.rhs)
    return out


def _rename_free(term: Term, old: str, new: str) -> Term:
    """Replace free occurrences of variable ``old`` with ``new``.

    Callers guarantee ``new`` is not bound anywhere inside ``term``, so
    the rewrite cannot capture.
    """
    if isinstance(term, Var):
        return Var(new) if term.name == old else term
    if isinstance(term, Lit):
        return term
    if isinstance(term, App):
        return App(
            _rename_free(term.head, old, new),
            tuple(_rename_free(argument, old, new) for argument in term.args),
        )
    if isinstance(term, Lam):
        if term.var == old:
            return term
        return Lam(term.var, _rename_free(term.body, old, new))
    if isinstance(term, AnnLam):
        if term.var == old:
            return term
        return AnnLam(term.var, term.annotation, _rename_free(term.body, old, new))
    if isinstance(term, Ann):
        return Ann(_rename_free(term.expr, old, new), term.annotation)
    if isinstance(term, Let):
        bound = _rename_free(term.bound, old, new)
        body = term.body if term.var == old else _rename_free(term.body, old, new)
        return Let(term.var, bound, body)
    if isinstance(term, Case):
        return Case(
            _rename_free(term.scrutinee, old, new),
            tuple(
                alt
                if old in alt.binders
                else CaseAlt(alt.constructor, alt.binders, _rename_free(alt.rhs, old, new))
                for alt in term.alts
            ),
        )
    raise TypeError(f"unknown term node: {term!r}")


def stability_let_inline(
    term: Term, result: InferenceResult, policy: InstantiationPolicy, env: Environment
) -> Term | None:
    """``let x = y in e``  ⇒  ``e[x := y]`` — the stability paper's
    let-inlining of a *variable*.

    Only a **lazy** claim: under lazy instantiation the binding aliases
    ``y``'s polytype, so inlining is the identity on typing.  Under eager
    instantiation the binding holds an instantiated (monomorphised) copy
    and inlining can *gain* typeability (``let f = id in (f :: ∀a. a→a)``
    is the canonical flip), so no claim is made.  Guards: the bound term
    is a bare environment variable, distinct from the binder, and not
    rebound inside the body (the inlined occurrence must keep referring
    to the same binding).
    """
    if not policy.lazy:
        return None
    if not isinstance(term, Let) or not isinstance(term.bound, Var):
        return None
    alias = term.bound.name
    if alias == term.var or alias not in env:
        return None
    if alias in _bound_names(term.body):
        return None
    return _rename_free(term.body, term.var, alias)


def stability_let_extract(
    term: Term, result: InferenceResult, policy: InstantiationPolicy, env: Environment
) -> Term | None:
    """``e``  ⇒  ``let v = y in e[y := v]`` for an environment variable
    ``y`` free in ``e`` — let-extraction, the inverse of inlining.

    The same lazy-only claim as :func:`stability_let_inline`, applied in
    the direction that fires on almost every generated term (any free
    environment variable will do), which is what gives the oracle its
    fuzz coverage.  The first free variable in sorted order keeps the
    transform deterministic.
    """
    if not policy.lazy:
        return None
    candidates = sorted(name for name in free_vars(term) if name in env)
    if not candidates:
        return None
    alias = candidates[0]
    fresh = _fresh_name(term, prefix="sv")
    return Let(fresh, Var(alias), _rename_free(term, alias, fresh))


def stability_signature(
    term: Term, result: InferenceResult, policy: InstantiationPolicy, env: Environment
) -> Term | None:
    """``e`` at ``σ``  ⇒  ``(e :: σ)`` — redundant-signature insertion.

    The stability paper's §4.4 claim: a program must keep its type when
    its inferred signature is written down.  Under shallow policies the
    claim holds across the grid (the annotation is checked under the
    same policy that inferred it).  Under *deep* policies a signature
    containing a nested ``forall`` is rewritten by deep instantiation at
    the check site (the GHC ≤8.10 deep-subsumption instability the paper
    opens with), so those signatures are excluded rather than asserted.
    """
    if policy.deep and has_nested_forall(result.type_):
        return None
    return annotate_inferred(term, result)


def stability_eta(
    term: Term, result: InferenceResult, policy: InstantiationPolicy, env: Environment
) -> Term | None:
    """``e`` at ``σ1 → σ2``  ⇒  ``\\v. e v`` — eta-expansion, with the
    policy-dependent guard the stability paper derives.

    Under a **deep** policy nested quantifiers are hoisted to a prenex on
    both sides, so eta is type-preserving whenever the domain is
    monomorphic.  Under a **shallow** policy the claim additionally
    requires the codomain to be ∀-free: ``e : Int → ∀a. a → a`` is
    stable but ``\\v. e v`` re-generalises to ``∀a. Int → a → a``.
    """
    type_ = result.type_
    if isinstance(type_, Forall) or getattr(result, "context", ()):
        return None
    if not policy.deep and has_nested_forall(type_):
        return None
    domains, _ = split_arrows(type_)
    if not domains or not is_fully_monomorphic(domains[0]):
        return None
    fresh = _fresh_name(term)
    return Lam(fresh, app(term, Var(fresh)))


#: The stability battery, in deterministic order.
STABILITY_TRANSFORMS: tuple[tuple[str, Callable], ...] = (
    ("let-inline", stability_let_inline),
    ("let-extract", stability_let_extract),
    ("signature", stability_signature),
    ("eta", stability_eta),
)


def stability_transforms(
    policy: InstantiationPolicy, env: Environment
) -> tuple[tuple[str, Transform], ...]:
    """The stability transforms specialised to one policy and
    environment, in the plain ``(term, result) -> term | None`` shape
    the oracles iterate over."""
    return tuple(
        (
            name,
            lambda term, result, _t=transform: _t(term, result, policy, env),
        )
        for name, transform in STABILITY_TRANSFORMS
    )
