"""Metamorphic transforms: small, meaning-preserving program edits that
must not change what GI infers.

This is the property class "Seeking Stability by being Lazy and Shallow"
argues for testing mechanically: inference should be *stable* under
eta-expansion of an application head, adding the inferred type as a
redundant annotation, let-floating an argument, and swapping independent
let bindings.  Each transform takes the original term plus its
:class:`~repro.core.infer.InferenceResult` and returns the transformed
term, or ``None`` when its applicability guard fails (the guards encode
exactly where the paper promises stability — e.g. eta-expansion is only
type-preserving when the function's domain is fully monomorphic, because
an unannotated lambda binder is monomorphic by the Lambda Rule).

The fuzzer's ``metamorphic`` oracle asserts that every applicable
transform preserves typeability and the inferred type up to
alpha-equivalence.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.infer import InferenceResult
from repro.core.terms import (
    Ann,
    App,
    Lam,
    Let,
    Term,
    Var,
    app,
    free_vars,
)
from repro.core.types import Forall, is_fully_monomorphic, split_arrows

Transform = Callable[[Term, InferenceResult], Optional[Term]]


def eta_expand(term: Term, result: InferenceResult) -> Term | None:
    """``e`` at ``τ1 → τ2``  ⇒  ``\\v. e v``  (fresh ``v``).

    Guard: the principal type must be an unquantified arrow with a fully
    monomorphic domain (the fresh binder is a plain ``Lam``, and the
    Lambda Rule makes unannotated binders monomorphic), and the result
    context must be empty so the type is the whole story.
    """
    type_ = result.type_
    if isinstance(type_, Forall) or getattr(result, "context", ()):
        return None
    domains, _ = split_arrows(type_)
    if not domains or not is_fully_monomorphic(domains[0]):
        return None
    fresh = _fresh_name(term)
    return Lam(fresh, app(term, Var(fresh)))


def annotate_inferred(term: Term, result: InferenceResult) -> Term | None:
    """``e`` at ``σ``  ⇒  ``(e :: σ)``.

    Checking a term against its own principal type must succeed — this is
    the inferred type being *realisable* as an annotation (and exercises
    the checking direction of every syntax node the term contains).
    Guard: empty residual context, and skip terms already annotated at
    the top (the transform would be the identity).
    """
    if getattr(result, "context", ()):
        return None
    if isinstance(term, Ann) and term.annotation == result.type_:
        return None
    return Ann(term, result.type_)


def let_float_argument(term: Term, result: InferenceResult) -> Term | None:
    """``f e1 … en``  ⇒  ``let v = ei in f e1 … v … en``.

    Floating an argument into a ``let`` must preserve the result because
    GI's ``let`` does **not** generalise (§3.5): the binding gets exactly
    the argument's inferred type, so the application sees the same type
    through the variable.  Guard: the argument must be in *inference*
    mode — lambdas are excluded because their binder types come from the
    expected type at the application site (``poly (\\x -> x)`` checks the
    lambda against ``∀a. a → a``; floated out, the Lambda Rule gives it a
    monomorphic binder and the skolem escapes).  Variables and literals
    are skipped as no-ops.  The first eligible argument is chosen so the
    oracle is deterministic.
    """
    if not isinstance(term, App) or not term.args:
        return None
    for position, argument in enumerate(term.args):
        if argument.__class__.__name__ in ("Var", "Lit", "Lam", "AnnLam"):
            continue
        fresh = _fresh_name(term)
        new_args = list(term.args)
        new_args[position] = Var(fresh)
        return Let(fresh, argument, App(term.head, tuple(new_args)))
    return None


def let_swap(term: Term, result: InferenceResult) -> Term | None:
    """``let x = e1 in let y = e2 in e``  ⇒  swap the two bindings.

    Guard: the bindings must be independent — ``x`` not free in ``e2``,
    ``y`` not free in ``e1`` (vacuously true since ``y`` is bound later),
    and distinct names so the swap does not change shadowing.
    """
    if not isinstance(term, Let) or not isinstance(term.body, Let):
        return None
    outer, inner = term, term.body
    if outer.var == inner.var:
        return None
    if outer.var in free_vars(inner.bound):
        return None
    if inner.var in free_vars(outer.bound):
        return None
    return Let(inner.var, inner.bound, Let(outer.var, outer.bound, inner.body))


#: Battery order is deterministic; the fuzzer applies every transform
#: whose guard passes.
TRANSFORMS: tuple[tuple[str, Transform], ...] = (
    ("eta", eta_expand),
    ("annotate", annotate_inferred),
    ("let-float", let_float_argument),
    ("let-swap", let_swap),
)


def applicable_transforms(
    term: Term, result: InferenceResult
) -> list[tuple[str, Term]]:
    """Every (name, transformed term) pair whose guard passes — the unit
    the ``metamorphic`` oracle and its tests iterate over."""
    out = []
    for name, transform in TRANSFORMS:
        transformed = transform(term, result)
        if transformed is not None:
            out.append((name, transformed))
    return out


def _fresh_name(term: Term) -> str:
    used = free_vars(term)
    index = 1
    while f"mv{index}" in used:
        index += 1
    return f"mv{index}"
