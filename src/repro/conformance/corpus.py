"""Persisting minimized counterexamples as replayable ``.gi`` files.

A corpus file is deliberately compatible with the ``repro batch`` input
format (:func:`repro.robustness.batch.read_batch_file` skips blank lines
and ``--`` comments): a comment header recording provenance, then the
minimized term's source on a single line.  That makes every
counterexample triple-purpose —

* the fuzzer re-reads it to avoid filing duplicates,
* ``python -m repro batch tests/corpus`` replays it through the
  diagnostics/JSON pipeline,
* ``tests/test_corpus.py`` re-runs every file's oracle battery forever
  after, so a fixed divergence can never silently come back.

A ``-- policy: NAME`` header (the one comment ``read_batch_file``
interprets) pins the instantiation policy a policy-flip entry was filed
against, so the batch replay checks it under that policy rather than
the default.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.terms import Term
from repro.syntax.parser import parse_term

CORPUS_SUFFIX = ".gi"


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable counterexample loaded from disk."""

    path: Path
    source: str
    term: Term
    metadata: dict[str, str]


def counterexample_name(oracle: str, term: Term) -> str:
    """Stable filename: the failing oracle plus a digest of the term."""
    slug = oracle.replace(":", "-")
    digest = hashlib.sha1(str(term).encode("utf-8")).hexdigest()[:12]
    return f"{slug}-{digest}{CORPUS_SUFFIX}"


def write_counterexample(
    directory: Path,
    term: Term,
    oracle: str,
    message: str,
    metadata: dict[str, object] | None = None,
) -> Path:
    """Persist one minimized counterexample; returns the file path.

    Idempotent: the digest-based name means re-finding the same shrunk
    term overwrites the same file rather than piling up duplicates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / counterexample_name(oracle, term)
    lines = [f"-- oracle: {oracle}"]
    for key, value in (metadata or {}).items():
        lines.append(f"-- {key}: {value}")
    for part in message.splitlines():
        lines.append(f"-- detail: {part}")
    lines.append(str(term))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_corpus(directory: Path) -> list[CorpusEntry]:
    """Every ``.gi`` counterexample under ``directory`` (sorted, parsed)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob(f"*{CORPUS_SUFFIX}")):
        entry = _load_file(path)
        if entry is not None:
            entries.append(entry)
    return entries


def _load_file(path: Path) -> CorpusEntry | None:
    metadata: dict[str, str] = {}
    source = None
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("--"):
            body = line[2:].strip()
            if ":" in body:
                key, _, value = body.partition(":")
                metadata.setdefault(key.strip(), value.strip())
            continue
        source = line
        break
    if source is None:
        return None
    return CorpusEntry(
        path=path, source=source, term=parse_term(source), metadata=metadata
    )
