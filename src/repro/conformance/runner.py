"""The conformance fuzzer: generate → oracle battery → shrink → persist.

One :func:`run_fuzz` call is one reproducible sweep: the seed fixes the
case list (``random.Random(f"{seed}:{index}")`` per case), every case
gets its own :class:`~repro.robustness.budget.Budget` via the shared
:class:`~repro.robustness.pool.WorkerPool`, and any violation is
greedily shrunk and written to the corpus directory as a replayable
``.gi`` file.

Observability: with a tracer attached the sweep emits one ``fuzz.case``
event per case, ``fuzz.shrink`` per accepted shrink step and
``fuzz.counterexample`` per persisted violation, plus ``fuzz.*``
counters — all through the existing JSONL schema.

Fault injection (``fault_step`` / ``fault_depth``) arms a
:class:`~repro.robustness.faultinject.FaultPlan` for every case; the
injected non-GI crash must surface as a ``crash``-oracle violation, so
arming a fault is the built-in self-test that the battery actually
catches, shrinks and persists what it is pointed at.  Fault plans count
engine events, so they force serial execution like ``batch --seed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.conformance.corpus import write_counterexample
from repro.conformance.generator import FuzzCase, TermGenerator
from repro.conformance.oracles import (
    DEFAULT_ORACLES,
    ORACLES,
    OracleContext,
    Violation,
)
from repro.conformance.shrink import DEFAULT_MAX_CHECKS, shrink
from repro.core.env import Environment
from repro.core.infer import InferOptions
from repro.core.policy import DEFAULT_POLICY, parse_policy
from repro.core.terms import Term, term_size
from repro.robustness.budget import Budget
from repro.robustness.faultinject import FaultPlan
from repro.robustness.pool import WorkerPool, clone_budget

#: Default per-case budget: generous for honest cases, finite for the
#: pathological ones the arbitrary mode occasionally produces.
DEFAULT_MAX_STEPS = 50_000
DEFAULT_MAX_DEPTH = 400
DEFAULT_TIMEOUT = 5.0


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one sweep depends on (all of it serialisable)."""

    seed: int = 0
    count: int = 100
    oracles: tuple[str, ...] = DEFAULT_ORACLES
    systems: tuple[str, ...] | None = None
    policy: str = DEFAULT_POLICY.name
    jobs: int = 1
    corpus_dir: Path | None = None
    max_steps: int | None = DEFAULT_MAX_STEPS
    max_depth: int | None = DEFAULT_MAX_DEPTH
    timeout: float | None = DEFAULT_TIMEOUT
    fault_step: int | None = None
    fault_depth: int | None = None
    max_shrink_checks: int = DEFAULT_MAX_CHECKS

    @property
    def faulty(self) -> bool:
        return self.fault_step is not None or self.fault_depth is not None

    def infer_options(self) -> InferOptions:
        """The per-case inference options (currently: the policy)."""
        return InferOptions(policy=parse_policy(self.policy))

    def fault_plan(self) -> FaultPlan | None:
        if not self.faulty:
            return None
        return FaultPlan(
            fail_at_solver_step=self.fault_step,
            fail_at_unify_depth=self.fault_depth,
        )


@dataclass(frozen=True)
class Counterexample:
    """One violation, after shrinking and (optionally) persistence."""

    case: FuzzCase
    violation: Violation
    shrunk: Term
    shrink_steps: int
    corpus_path: Path | None

    def to_dict(self) -> dict:
        return {
            "index": self.case.index,
            "mode": self.case.mode,
            "oracle": self.violation.oracle,
            "message": self.violation.message,
            "source": self.case.source,
            "shrunk": str(self.shrunk),
            "shrink_steps": self.shrink_steps,
            "original_size": self.case.size,
            "shrunk_size": term_size(self.shrunk),
            "corpus_path": str(self.corpus_path) if self.corpus_path else None,
        }


@dataclass
class FuzzReport:
    """The sweep's outcome; ``ok`` iff every oracle held on every case."""

    seed: int
    count: int
    oracles: tuple[str, ...]
    accepted: int = 0
    rejected: int = 0
    by_mode: dict[str, int] = field(default_factory=dict)
    counterexamples: list[Counterexample] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "oracles": list(self.oracles),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "by_mode": dict(sorted(self.by_mode.items())),
            "violations": [ce.to_dict() for ce in self.counterexamples],
            "ok": self.ok,
            "elapsed_seconds": round(self.elapsed, 3),
        }


def run_fuzz(
    config: FuzzConfig,
    env: Environment | None = None,
    tracer=None,
) -> FuzzReport:
    """Run one conformance sweep; see the module docstring."""
    if env is None:
        from repro.evalsuite.figure2 import figure2_env

        env = figure2_env()
    unknown = [name for name in config.oracles if name not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {', '.join(unknown)} "
            f"(available: {', '.join(ORACLES)})"
        )
    parse_policy(config.policy)  # fail fast on a bad policy name
    started = time.monotonic()
    generator = TermGenerator(env)
    cases = generator.cases(config.seed, config.count)
    base_budget = Budget(
        max_solver_steps=config.max_steps,
        max_unify_depth=config.max_depth,
        wall_clock=config.timeout,
    )

    def check_case(case: FuzzCase, budget: Budget | None):
        ctx = OracleContext(
            env,
            budget=budget,
            faults=config.fault_plan(),
            options=config.infer_options(),
            systems=config.systems,
        )
        violation = None
        for name in config.oracles:
            violation = ORACLES[name](ctx, case.term)
            if violation is not None:
                break
        result, _error = ctx.outcome(case.term)
        return violation, result is not None

    jobs = 1 if config.faulty else config.jobs  # fault plans count events
    pool = WorkerPool(jobs=jobs, budget_factory=lambda: clone_budget(base_budget))
    outcomes = pool.map(check_case, cases)

    report = FuzzReport(seed=config.seed, count=config.count, oracles=config.oracles)
    emit = tracer is not None and tracer.enabled
    for case, (violation, accepted) in zip(cases, outcomes):
        report.by_mode[case.mode] = report.by_mode.get(case.mode, 0) + 1
        if accepted:
            report.accepted += 1
        else:
            report.rejected += 1
        if emit:
            tracer.inc("fuzz.cases")
            tracer.event(
                "fuzz.case",
                index=case.index,
                mode=case.mode,
                size=case.size,
                status="violation"
                if violation is not None
                else ("accepted" if accepted else "rejected"),
            )
        if violation is None:
            continue
        report.counterexamples.append(
            _handle_violation(config, env, case, violation, tracer)
        )
    report.elapsed = time.monotonic() - started
    if emit:
        tracer.inc("fuzz.accepted", report.accepted)
        tracer.inc("fuzz.rejected", report.rejected)
        tracer.inc("fuzz.counterexamples", len(report.counterexamples))
    return report


def _handle_violation(
    config: FuzzConfig,
    env: Environment,
    case: FuzzCase,
    violation: Violation,
    tracer,
) -> Counterexample:
    """Shrink a fresh counterexample and persist the minimum."""
    oracle_name = violation.oracle.split(":", 1)[0]
    oracle = ORACLES[oracle_name]
    emit = tracer is not None and tracer.enabled

    def still_fails(candidate: Term) -> bool:
        ctx = OracleContext(
            env,
            budget=clone_budget(_shrink_budget(config)),
            faults=config.fault_plan(),
            options=config.infer_options(),
            systems=config.systems,
        )
        return oracle(ctx, candidate) is not None

    def on_step(candidate: Term) -> None:
        if emit:
            tracer.inc("fuzz.shrink_steps")
            tracer.event(
                "fuzz.shrink",
                index=case.index,
                oracle=violation.oracle,
                size=term_size(candidate),
            )

    shrunk = shrink(
        case.term, still_fails, max_checks=config.max_shrink_checks, on_step=on_step
    )
    corpus_path = None
    if config.corpus_dir is not None:
        corpus_path = write_counterexample(
            config.corpus_dir,
            shrunk.term,
            violation.oracle,
            violation.message,
            metadata={
                "seed": case.seed,
                "case": case.index,
                "mode": case.mode,
                "shrunk-from": f"{shrunk.original_size} -> {shrunk.final_size} nodes",
                **(
                    {"policy": config.policy}
                    if config.policy != DEFAULT_POLICY.name
                    else {}
                ),
                **(
                    {"fault": f"step={config.fault_step} depth={config.fault_depth}"}
                    if config.faulty
                    else {}
                ),
            },
        )
    if emit:
        tracer.inc("fuzz.counterexamples_persisted", 1 if corpus_path else 0)
        tracer.event(
            "fuzz.counterexample",
            index=case.index,
            oracle=violation.oracle,
            source=str(shrunk.term),
            corpus=str(corpus_path) if corpus_path else "",
        )
    return Counterexample(
        case=case,
        violation=violation,
        shrunk=shrunk.term,
        shrink_steps=shrunk.steps,
        corpus_path=corpus_path,
    )


def _shrink_budget(config: FuzzConfig) -> Budget:
    """Shrink checks get a tighter wall clock: candidates that hang are
    treated as not-failing rather than stalling the minimisation."""
    timeout = min(config.timeout, 1.0) if config.timeout else 1.0
    return Budget(
        max_solver_steps=config.max_steps,
        max_unify_depth=config.max_depth,
        wall_clock=timeout,
    )


def render_fuzz_text(report: FuzzReport) -> str:
    """The human-readable sweep summary for the CLI."""
    modes = ", ".join(f"{mode}: {n}" for mode, n in sorted(report.by_mode.items()))
    lines = [
        f"fuzz seed={report.seed} count={report.count} "
        f"({modes})",
        f"accepted {report.accepted}, rejected {report.rejected}, "
        f"violations {len(report.counterexamples)} "
        f"[{report.elapsed:.1f}s]",
    ]
    for ce in report.counterexamples:
        lines.append(f"  FAIL [{ce.violation.oracle}] case {ce.case.index}")
        lines.append(f"    original: {ce.case.source}")
        lines.append(f"    shrunk:   {ce.shrunk}")
        lines.append(f"    {ce.violation.message}")
        if ce.corpus_path is not None:
            lines.append(f"    saved: {ce.corpus_path}")
    lines.append("ok" if report.ok else "FAILED")
    return "\n".join(lines)
