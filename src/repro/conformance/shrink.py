"""Greedy structural shrinking of counterexample terms.

Given a term and a predicate "still fails its oracle", repeatedly try
strictly smaller variants and keep the first that still fails, until no
candidate does.  Properties the tests pin down:

* **soundness** — the shrunk term still satisfies the predicate (it is
  only ever replaced by a failing candidate);
* **termination** — every accepted candidate is strictly smaller under
  :func:`~repro.core.terms.term_size`, and a global check budget caps
  pathological predicates;
* **determinism** — candidates are generated in a fixed structural
  order, so the same input shrinks to the same output.

Candidates are (a) proper subterms hoisted to the top and (b) one-node
simplifications (drop an annotation, drop arguments, inline a ``let``,
collapse a ``case`` to an alternative body), each applied at every
position; only strictly smaller variants are offered, which is what
makes the termination argument one line.  Only *closed* candidates are offered —
hoisting a lambda body would leak its binder — so the predicate always
sees a term the fuzzer could have generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    CaseAlt,
    Lam,
    Let,
    Lit,
    Term,
    Var,
    free_vars,
    term_size,
)

#: Hard cap on predicate evaluations per shrink run.
DEFAULT_MAX_CHECKS = 2000


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    term: Term
    original_size: int
    final_size: int
    steps: int
    checks: int

    @property
    def reduced(self) -> bool:
        return self.final_size < self.original_size


def shrink(
    term: Term,
    still_fails: Callable[[Term], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
    on_step: Callable[[Term], None] | None = None,
) -> ShrinkResult:
    """Greedily minimise ``term`` while ``still_fails`` holds.

    ``still_fails`` must be true of ``term`` itself (the caller found the
    counterexample); it is never re-checked on the input.  ``on_step``
    observes each accepted shrink (the runner emits ``fuzz.shrink``
    tracer events from it).
    """
    current = term
    steps = 0
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in candidates(current):
            if checks >= max_checks:
                break
            checks += 1
            try:
                failing = still_fails(candidate)
            except Exception:  # noqa: BLE001 — a crashing predicate ends the walk
                failing = False
            if failing:
                current = candidate
                steps += 1
                if on_step is not None:
                    on_step(candidate)
                progress = True
                break
    return ShrinkResult(
        term=current,
        original_size=term_size(term),
        final_size=term_size(current),
        steps=steps,
        checks=checks,
    )


def candidates(term: Term) -> Iterator[Term]:
    """Strictly smaller closed variants of ``term``, deterministic order.

    Smallest-first within each family, so the greedy loop takes the
    biggest available jump (hoisted deep subterms come out of
    :func:`_subterms` roughly inside-out).
    """
    size = term_size(term)
    seen: set[str] = set()
    hoisted = [
        sub
        for sub in _subterms(term)
        if term_size(sub) < size and not free_vars(sub) - free_vars(term)
    ]
    hoisted.sort(key=term_size)
    for sub in hoisted:
        key = repr(sub)
        if key not in seen:
            seen.add(key)
            yield sub
    for variant in _rewrites(term):
        if term_size(variant) >= size:
            continue
        if free_vars(variant) - free_vars(term):
            continue
        key = repr(variant)
        if key not in seen:
            seen.add(key)
            yield variant


def _subterms(term: Term) -> Iterator[Term]:
    """Proper subterms, depth-first."""
    for child in _children(term):
        yield from _subterms(child)
        yield child


def _children(term: Term) -> tuple[Term, ...]:
    if isinstance(term, App):
        return (term.head, *term.args)
    if isinstance(term, (Lam, AnnLam)):
        return (term.body,)
    if isinstance(term, Ann):
        return (term.expr,)
    if isinstance(term, Let):
        return (term.bound, term.body)
    if isinstance(term, Case):
        return (term.scrutinee, *(alt.rhs for alt in term.alts))
    return ()


def _rewrites(term: Term) -> Iterator[Term]:
    """One-node simplifications applied at every position, outside-in."""
    yield from _local(term)
    if isinstance(term, App):
        for index, argument in enumerate(term.args):
            for replacement in _rewrites(argument):
                args = list(term.args)
                args[index] = replacement
                yield App(term.head, tuple(args))
        for replacement in _rewrites(term.head):
            yield App(replacement, term.args)
    elif isinstance(term, Lam):
        for replacement in _rewrites(term.body):
            yield Lam(term.var, replacement)
    elif isinstance(term, AnnLam):
        for replacement in _rewrites(term.body):
            yield AnnLam(term.var, term.annotation, replacement)
    elif isinstance(term, Ann):
        for replacement in _rewrites(term.expr):
            yield Ann(replacement, term.annotation)
    elif isinstance(term, Let):
        for replacement in _rewrites(term.bound):
            yield Let(term.var, replacement, term.body)
        for replacement in _rewrites(term.body):
            yield Let(term.var, term.bound, replacement)
    elif isinstance(term, Case):
        for replacement in _rewrites(term.scrutinee):
            yield Case(replacement, term.alts)
        for index, alt in enumerate(term.alts):
            for replacement in _rewrites(alt.rhs):
                alts = list(term.alts)
                alts[index] = CaseAlt(alt.constructor, alt.binders, replacement)
                yield Case(term.scrutinee, tuple(alts))


def _local(term: Term) -> Iterator[Term]:
    """Simplifications of the node itself."""
    if isinstance(term, Ann):
        yield term.expr
    elif isinstance(term, AnnLam):
        yield Lam(term.var, term.body)
    elif isinstance(term, App):
        if term.args:
            yield term.head
        for count in range(len(term.args) - 1, 0, -1):
            yield App(term.head, term.args[:count])
        for index in range(len(term.args)):
            args = term.args[:index] + term.args[index + 1 :]
            yield App(term.head, args) if args else term.head
    elif isinstance(term, Let):
        yield term.body
        yield term.bound
    elif isinstance(term, Lam):
        yield term.body
    elif isinstance(term, Case):
        yield term.scrutinee
        for alt in term.alts:
            yield alt.rhs
