"""Human-readable renderings: span trees, metrics tables, profiles.

Everything here is pure formatting over data the tracer (or a replayed
JSONL file) already holds, so the CLI, the REPL and the tests share one
presentation.
"""

from __future__ import annotations

from repro.observability.metrics import Metrics
from repro.observability.tracer import Span


def format_duration(seconds: float) -> str:
    """``532µs`` / ``12.3ms`` / ``1.204s`` — three significant scales."""
    if seconds < 0.001:
        return f"{seconds * 1_000_000:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.3f}s"


def _attr_text(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        text = str(value)
        if len(text) > 48:
            text = text[:48] + "…"
        parts.append(f"{key}={text}")
    return "  [" + " ".join(parts) + "]"


def render_span_tree(roots: list[Span]) -> str:
    """An indented tree, one line per span, with durations and attrs."""
    lines: list[str] = []

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(
            f"{prefix}{connector}{span.name}"
            f"{_attr_text(span.attrs)}  {format_duration(span.duration)}"
        )
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(span.children):
            walk(child, child_prefix, index == len(span.children) - 1, False)

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines)


def render_metrics(metrics: Metrics) -> str:
    """The ``--metrics`` summary table."""
    snapshot = metrics.to_dict()
    rows: list[tuple[str, str]] = []
    for name, value in snapshot["counters"].items():
        rows.append((name, str(value)))
    for name, value in snapshot["gauges"].items():
        rows.append((name, f"{value:g}" if isinstance(value, float) else str(value)))
    for name, summary in snapshot["histograms"].items():
        if summary is None:
            continue
        rows.append(
            (
                name,
                f"n={summary['count']} min={summary['min']:g} "
                f"p50={summary['p50']:g} p95={summary['p95']:g} "
                f"max={summary['max']:g} mean={summary['mean']:g}",
            )
        )
    if not rows:
        return "metrics: (none recorded)"
    width = max(len(name) for name, _ in rows)
    lines = ["metric" + " " * (width - 6 + 2) + "value", "-" * (width + 8)]
    for name, value in rows:
        lines.append(f"{name.ljust(width)}  {value}")
    return "\n".join(lines)


def render_profile(roots: list[Span]) -> str:
    """The ``--profile`` table: per span name, calls / total / self time.

    *Self* time is total minus the time spent in child spans, which is
    what points at the actual hot phase rather than at its ancestors.
    """
    totals: dict[str, float] = {}
    selfs: dict[str, float] = {}
    calls: dict[str, int] = {}
    for root in roots:
        for span in root.walk():
            child_time = sum(child.duration for child in span.children)
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
            selfs[span.name] = selfs.get(span.name, 0.0) + max(
                0.0, span.duration - child_time
            )
            calls[span.name] = calls.get(span.name, 0) + 1
    if not totals:
        return "profile: (no spans recorded)"
    names = sorted(totals, key=lambda name: -selfs[name])
    width = max(len(name) for name in names)
    lines = [
        f"{'span'.ljust(width)}  {'calls':>6}  {'total':>9}  {'self':>9}",
        "-" * (width + 30),
    ]
    for name in names:
        lines.append(
            f"{name.ljust(width)}  {calls[name]:>6}  "
            f"{format_duration(totals[name]):>9}  {format_duration(selfs[name]):>9}"
        )
    return "\n".join(lines)


def spans_from_events(events: list[dict]) -> list[Span]:
    """Rebuild the span tree from (replayed) trace events.

    The inverse of what the tracer emits: ``span_start``/``span_end``
    pairs become :class:`Span` nodes with the same ids, names, attrs and
    parentage, so a trace written to JSONL renders identically to the
    live run.
    """
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for event in events:
        kind = event.get("event")
        if kind == "span_start":
            span = Span(
                event["span"],
                event.get("parent"),
                event["name"],
                dict(event.get("attrs") or {}),
                float(event["ts"]),
                int(event.get("thread") or 0),
            )
            spans[span.span_id] = span
            parent = spans.get(span.parent_id) if span.parent_id is not None else None
            if parent is None:
                roots.append(span)
            else:
                parent.children.append(span)
        elif kind == "span_end":
            span = spans.get(event["span"])
            if span is not None:
                span.end = float(event["ts"])
    return roots
