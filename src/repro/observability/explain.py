"""The trace explainer: a solver trace as a readable derivation narrative.

Debates about what an inference algorithm *did* — which constraint it
picked, which Figure 8/10 rule rewrote it, which guardedness class each
quantified variable received and why — are settled with traces, not with
final types.  This module turns the point events the instrumented solver
emits into prose::

    step 4 (level 0): picked Inst  α1 ⩽m_• [...] ; α2 ~ ...
      rule inst∀l: freshened ∀-binders — a ↦ u (guarded under a type
      constructor in an argument)
      bound α3 := [β4]

It works on live tracer events and on replayed JSONL files alike, which
makes it the paper-fidelity debugging companion the declarative replay
verifier (§4.4) has needed: run the syntax-directed solver once, keep
the trace, and read back the derivation it committed to.
"""

from __future__ import annotations

SORT_REASON = {
    "u": "guarded under a type constructor in an argument",
    "t": "occurs naked in an argument (top-level monomorphic)",
    "m": "occurs only in the result (fully monomorphic)",
}

_RULE_TEXT = {
    "inst∀l": "freshened ∀-binders",
    "inst→": "consumed one expected argument (head must be an arrow)",
    "instϵ": "no arguments left — unified the instantiated head with the result",
    "inst∀r": "skolemised the polymorphic right-hand side one level deeper",
    "inst⨅l": "released the captured generalisation scheme into this scope",
    "quant": "opened a nested implication scope",
    "dupl": "discharged against an identical local given",
    "instance": "discharged against the instance environment",
}


def _sorts_text(sorts: dict) -> str:
    parts = []
    for binder, symbol in sorts.items():
        reason = SORT_REASON.get(symbol, "unclassified")
        parts.append(f"{binder} ↦ {symbol} ({reason})")
    return ", ".join(parts)


def _explain_point(name: str, attrs: dict) -> str | None:
    if name == "solver.step":
        return (
            f"step {attrs.get('step')} (level {attrs.get('level')}): "
            f"picked {attrs.get('kind')}  {attrs.get('constraint')}"
        )
    if name == "solver.rule":
        rule = attrs.get("rule", "?")
        line = f"  rule {rule}: {_RULE_TEXT.get(rule, 'applied')}"
        if attrs.get("sorts"):
            line += f" — {_sorts_text(attrs['sorts'])}"
        if attrs.get("bits"):
            line += f" [ω = {attrs['bits']}]"
        if attrs.get("skolems"):
            line += f" — skolems {', '.join(attrs['skolems'])}"
        if attrs.get("captured") is not None:
            line += f" — {attrs['captured']} captured variable(s) refreshed"
        if attrs.get("class_constraint"):
            line += f" — {attrs['class_constraint']}"
        return line
    if name == "classify.binders":
        return (
            f"  classification ▷{attrs.get('sort', '?')}_{attrs.get('bits', '')} "
            f"of `{attrs.get('type')}`: {_sorts_text(attrs.get('sorts') or {})}"
        )
    if name == "solver.defer":
        return f"  deferred: {attrs.get('reason')}  ({attrs.get('constraint')})"
    if name == "solver.default":
        return (
            f"defaulting: bound blocker {attrs.get('var')} to a fresh fully "
            f"monomorphic variable — impredicativity is never guessed "
            f"(Theorem 3.2)"
        )
    if name == "unify.bind":
        return (
            f"    bound {attrs.get('var')} := {attrs.get('type')} "
            f"(sort {attrs.get('sort')}, level {attrs.get('level')})"
        )
    if name == "solver.residual":
        return f"residual class constraint kept for the context: {attrs.get('constraint')}"
    if name == "fault.injected":
        return f"!! injected fault fired: {attrs.get('trigger')}"
    if name == "budget.exceeded":
        return (
            f"!! budget exceeded in {attrs.get('phase')}: "
            f"{attrs.get('limit_name')} limit of {attrs.get('limit')}"
        )
    if name == "infer.result":
        return f"result: {attrs.get('type')}"
    if name == "infer.error":
        return f"rejected: [{attrs.get('error_class')}] {attrs.get('message')}"
    return None


def explain_events(events: list[dict]) -> str:
    """The derivation narrative for a list of trace events (live or
    replayed from JSONL)."""
    lines: list[str] = []
    for event in events:
        if event.get("event") != "point":
            continue
        rendered = _explain_point(event.get("name", ""), event.get("attrs") or {})
        if rendered is not None:
            lines.append(rendered)
    if not lines:
        return "(no solver events in trace — was tracing enabled?)"
    return "\n".join(lines)


def explain_tracer(tracer) -> str:
    """Narrative for a live tracer's recorded events."""
    return explain_events(tracer.events)
