"""The JSONL trace event schema: one JSON object per line, replayable.

Five event kinds, all sharing ``{"v": 1, "event": <kind>, "ts": <s>}``:

=============  ====================================================
``span_start``  ``span`` id, ``parent`` id or null, ``name``,
                ``attrs`` object, ``thread`` id
``span_end``    ``span`` id, ``name``, ``dur`` seconds
``point``       ``span`` id or null, ``name``, ``attrs`` object
``gauge``       ``name``, ``value``
``metrics``     final summary: ``counters``, ``gauges``,
                ``histograms`` objects
=============  ====================================================

:func:`validate_event` is the single source of truth for the schema —
the test suite, the CI trace-validation step and ``repro trace
--validate`` all call it.  A trace file is *replayable*: feeding its
lines to :func:`repro.observability.render.spans_from_events` rebuilds
the span tree, and to :func:`repro.observability.explain.explain_events`
rebuilds the derivation narrative, without re-running inference.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable

SCHEMA_VERSION = 1

_NUMBER = (int, float)
_COMMON_FIELDS: dict[str, tuple] = {"v": (int,), "event": (str,), "ts": _NUMBER}
_EVENT_FIELDS: dict[str, dict[str, tuple]] = {
    "span_start": {
        "span": (int,),
        "parent": (int, type(None)),
        "name": (str,),
        "attrs": (dict,),
        "thread": (int,),
    },
    "span_end": {"span": (int,), "name": (str,), "dur": _NUMBER},
    "point": {"span": (int, type(None)), "name": (str,), "attrs": (dict,)},
    "gauge": {"name": (str,), "value": _NUMBER},
    "metrics": {"counters": (dict,), "gauges": (dict,), "histograms": (dict,)},
}


def validate_event(obj) -> list[str]:
    """Schema errors for one parsed event; an empty list means valid."""
    if not isinstance(obj, dict):
        return [f"event must be a JSON object, got {type(obj).__name__}"]
    errors: list[str] = []
    for name, types in _COMMON_FIELDS.items():
        if name not in obj:
            errors.append(f"missing required field `{name}`")
        elif not isinstance(obj[name], types) or isinstance(obj[name], bool):
            errors.append(f"field `{name}` has wrong type {type(obj[name]).__name__}")
    if errors:
        return errors
    if obj["v"] != SCHEMA_VERSION:
        errors.append(f"unsupported schema version {obj['v']!r}")
    kind = obj["event"]
    fields = _EVENT_FIELDS.get(kind)
    if fields is None:
        errors.append(f"unknown event kind `{kind}`")
        return errors
    for name, types in fields.items():
        if name not in obj:
            errors.append(f"{kind}: missing required field `{name}`")
        elif not isinstance(obj[name], types) or (
            isinstance(obj[name], bool) and bool not in types
        ):
            errors.append(
                f"{kind}: field `{name}` has wrong type {type(obj[name]).__name__}"
            )
    allowed = set(_COMMON_FIELDS) | set(fields)
    for name in obj:
        if name not in allowed:
            errors.append(f"{kind}: unexpected field `{name}`")
    if "attrs" in obj and isinstance(obj.get("attrs"), dict):
        for key in obj["attrs"]:
            if not isinstance(key, str):  # pragma: no cover — JSON keys are str
                errors.append(f"{kind}: non-string attrs key {key!r}")
    return errors


def validate_line(line: str) -> list[str]:
    """Schema errors for one raw JSONL line (parse errors included)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    return validate_event(obj)


class JsonlWriter:
    """A tracer sink writing one JSON object per line to a file handle."""

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self._lock = threading.Lock()
        self.lines = 0

    def __call__(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=False, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self.lines += 1

    def close(self) -> None:
        with self._lock:
            self._handle.close()


def write_trace(events: Iterable[dict], path: str) -> int:
    """Write events to a JSONL file; returns the number of lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
            count += 1
    return count


def read_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
