"""Observability layer: structured tracing, metrics and trace explanation.

The GI pipeline's behaviour hinges on intermediate state that the final
type never shows — which guardedness class each quantified variable got
(Figures 4–5), which constraint the solver picked and which rule rewrote
it (Figures 6–10), where the budget went, which cache entries saved a
re-check.  This package makes all of that observable without adding any
dependency and without taxing the hot paths when it is off:

* :mod:`repro.observability.tracer` — the core: a thread-safe span tree
  (phase/constraint/binding attributes, monotonic-clock timings) plus
  point events, behind a :class:`Tracer` protocol whose no-op default
  (:data:`NULL_TRACER`) reduces every instrumentation site to a single
  ``enabled`` check;
* :mod:`repro.observability.metrics` — counters, gauges and histograms
  with a plain-text summary table;
* :mod:`repro.observability.events` — the JSONL event schema (one event
  per line, replayable), a validator, and file I/O;
* :mod:`repro.observability.render` — human-readable span trees, the
  metrics table, and a per-span-name profile;
* :mod:`repro.observability.explain` — renders a solver trace as a
  derivation narrative ("picked inst(α ⩽ ∀a. a→a); freshened a at sort
  u because guarded"), the paper-fidelity debugging companion to the
  declarative replay verifier (§4.4).

Instrumented components (``core.infer``/``solver``/``unify``/
``generate``/``classify``, ``modules.engine``, ``robustness``) accept a
``tracer`` that defaults to ``None``; every hot-path hook is guarded by
``tracer is not None and tracer.enabled`` so a build without tracing
pays one short-circuited check per event site.
"""

from repro.observability.events import (
    SCHEMA_VERSION,
    JsonlWriter,
    read_trace,
    validate_event,
    validate_line,
)
from repro.observability.explain import explain_events, explain_tracer
from repro.observability.metrics import Metrics
from repro.observability.render import (
    render_metrics,
    render_profile,
    render_span_tree,
    spans_from_events,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracerLike,
)

__all__ = [
    "JsonlWriter",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "TracerLike",
    "explain_events",
    "explain_tracer",
    "read_trace",
    "render_metrics",
    "render_profile",
    "render_span_tree",
    "spans_from_events",
    "validate_event",
    "validate_line",
]
