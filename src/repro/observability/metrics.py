"""Counters, gauges and histograms for the inference pipeline.

A :class:`Metrics` registry is deliberately tiny: three dictionaries
behind one lock, so worker threads (``--jobs``) can record into the same
registry the main thread reads.  Histograms keep raw observations (runs
are short — thousands of samples, not millions) and summarise on demand
with count/min/max/mean/p50/p95.
"""

from __future__ import annotations

import threading


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class Metrics:
    """A thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest sampled ``value``."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            self._histograms.setdefault(name, []).append(value)

    # ------------------------------------------------------------------

    def histogram_summary(self, name: str) -> dict | None:
        with self._lock:
            values = sorted(self._histograms.get(name, ()))
        if not values:
            return None
        return {
            "count": len(values),
            "min": values[0],
            "max": values[-1],
            "mean": round(sum(values) / len(values), 6),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
        }

    def to_dict(self) -> dict:
        """A JSON-ready snapshot (histograms pre-summarised)."""
        with self._lock:
            counters = dict(sorted(self.counters.items()))
            gauges = dict(sorted(self.gauges.items()))
            names = sorted(self._histograms)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {name: self.histogram_summary(name) for name in names},
        }

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self.counters or self.gauges or self._histograms)
