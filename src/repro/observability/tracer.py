"""The structured tracing core: a thread-safe span tree plus point events.

Two implementations of one protocol:

* :class:`Tracer` — the real thing.  ``span(name, **attrs)`` opens a
  timed span (a context manager) nested under the calling thread's
  current span, or under an explicitly passed ``parent`` — which is how
  worker threads attach their spans to the layer that scheduled them.
  ``event``/``gauge``/``inc``/``observe`` record point events and
  metrics.  Every span start/end, point event and gauge sample is also
  appended to ``events`` (and pushed to an optional ``sink``) in
  emission order, ready for JSONL serialisation.
* :class:`NullTracer` — the no-op default (:data:`NULL_TRACER`).  Its
  class attribute ``enabled = False`` is the *entire* cost model of
  disabled tracing: instrumented hot paths guard every hook with
  ``tracer is not None and tracer.enabled`` and never call further.

Timestamps are monotonic (``time.perf_counter``) relative to tracer
construction, so traces are replayable and diffable across runs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Protocol, runtime_checkable

_SCALARS = (str, int, float, bool, type(None))


def sanitize(value: Any):
    """Coerce an attribute value into something JSON-serialisable."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    if isinstance(value, dict):
        return {str(key): sanitize(item) for key, item in value.items()}
    return str(value)


class Span:
    """One timed node of the span tree."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end", "children", "thread_id")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict,
        start: float,
        thread_id: int = 0,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.children: list["Span"] = []
        self.thread_id = thread_id

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"Span({self.span_id}, {self.name!r}, {self.duration * 1000:.2f}ms)"


@runtime_checkable
class TracerLike(Protocol):
    """What instrumented code needs: the protocol both tracers satisfy."""

    enabled: bool

    def span(self, name: str, parent: "Span | None" = None, **attrs): ...

    def event(self, name: str, span: "Span | None" = None, **attrs) -> None: ...

    def inc(self, name: str, amount: int = 1) -> None: ...

    def gauge(self, name: str, value: float) -> None: ...

    def observe(self, name: str, value: float) -> None: ...


class _SpanHandle:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._tracer.finish(self.span)


class _NullHandle:
    """A reusable no-op context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is a *class* attribute so the guard in instrumented code
    costs one attribute load and one truthiness check — verified to be
    under the 5%-overhead bar by ``benchmarks/test_bench_observability``.
    """

    enabled = False

    def span(self, name: str, parent: Span | None = None, **attrs):
        return _NULL_HANDLE

    def event(self, name: str, span: Span | None = None, **attrs) -> None:
        return None

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


NULL_TRACER = NullTracer()
"""The shared no-op tracer; safe to pass anywhere a tracer is accepted."""


class Tracer:
    """A recording tracer; see the module docstring for the contract.

    ``sink`` is an optional callable invoked with every event dict as it
    is emitted (e.g. :class:`repro.observability.events.JsonlWriter`);
    ``metrics`` lets several per-command tracers (the REPL) share one
    registry.
    """

    enabled = True

    def __init__(
        self,
        sink: Callable[[dict], None] | None = None,
        metrics=None,
        retain_events: bool = True,
    ) -> None:
        from repro.observability.metrics import Metrics

        self._lock = threading.RLock()
        self._local = threading.local()
        self._next_id = 1
        self.roots: list[Span] = []
        self.spans: dict[int, Span] = {}
        self.events: list[dict] = []
        self.sink = sink
        self.metrics = metrics if metrics is not None else Metrics()
        self.retain_events = retain_events
        """When False, events and finished spans are streamed to ``sink``
        but not accumulated in memory — the long-lived serve daemon would
        otherwise grow its trace buffers without bound under traffic."""
        self._clock0 = time.perf_counter()

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._clock0

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **attrs) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("solve", n=3) as s:``.

        The parent is the calling thread's current span unless ``parent``
        is given explicitly (cross-thread attachment).
        """
        timestamp = self._now()
        if parent is None:
            parent = self.current()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                span_id,
                parent.span_id if parent is not None else None,
                name,
                sanitize(attrs),
                timestamp,
                threading.get_ident(),
            )
            if self.retain_events:
                self.spans[span_id] = span
                if parent is None:
                    self.roots.append(span)
            if parent is not None:
                parent.children.append(span)
            self._emit(
                {
                    "event": "span_start",
                    "ts": round(timestamp, 6),
                    "span": span.span_id,
                    "parent": span.parent_id,
                    "name": name,
                    "attrs": span.attrs,
                    "thread": span.thread_id,
                }
            )
        self._stack().append(span)
        return _SpanHandle(self, span)

    def finish(self, span: Span) -> None:
        """Close a span (normally via the context manager)."""
        timestamp = self._now()
        span.end = timestamp
        stack = self._stack()
        if span in stack:
            # Pop through to this span — tolerates a child left open by a
            # contained crash, so the tree stays well-formed.
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            self._emit(
                {
                    "event": "span_end",
                    "ts": round(timestamp, 6),
                    "span": span.span_id,
                    "name": span.name,
                    "dur": round(span.duration, 6),
                }
            )

    def event(self, name: str, span: Span | None = None, **attrs) -> None:
        """Record a point event, attached to the current (or given) span."""
        if span is None:
            span = self.current()
        with self._lock:
            self._emit(
                {
                    "event": "point",
                    "ts": round(self._now(), 6),
                    "span": span.span_id if span is not None else None,
                    "name": name,
                    "attrs": sanitize(attrs),
                }
            )

    # -- metrics bridges ------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.metrics.inc(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge sample: stored in metrics *and* traced."""
        self.metrics.gauge(name, value)
        with self._lock:
            self._emit(
                {
                    "event": "gauge",
                    "ts": round(self._now(), 6),
                    "name": name,
                    "value": value,
                }
            )

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # ------------------------------------------------------------------

    def emit_metrics_event(self) -> None:
        """Append the final metrics-summary event (CLI does this at exit)."""
        with self._lock:
            self._emit({"event": "metrics", "ts": round(self._now(), 6), **self.metrics.to_dict()})

    def _emit(self, payload: dict) -> None:
        payload["v"] = 1
        if self.retain_events:
            self.events.append(payload)
        if self.sink is not None:
            self.sink(payload)
