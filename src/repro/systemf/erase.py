"""Type erasure: System F terms back to untyped source terms.

Erasing an elaborated program and the original source program yields
β-equivalent terms, so the interpreter (:mod:`repro.interp`) can be used
to confirm that elaboration preserves runtime behaviour.
"""

from __future__ import annotations

from repro.core.terms import Case, CaseAlt, Lam, Let, Lit, Term, Var, app
from repro.systemf.ast import (
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTerm,
    FTyApp,
    FTyLam,
    FVar,
)


def erase(term: FTerm) -> Term:
    """Drop all type abstractions, type applications and annotations."""
    if isinstance(term, FVar):
        return Var(term.name)
    if isinstance(term, FLit):
        return Lit(term.value)
    if isinstance(term, FLam):
        return Lam(term.var, erase(term.body))
    if isinstance(term, FTyLam):
        return erase(term.body)
    if isinstance(term, FApp):
        return app(erase(term.fn), erase(term.arg))
    if isinstance(term, FTyApp):
        return erase(term.fn)
    if isinstance(term, FLet):
        return Let(term.var, erase(term.bound), erase(term.body))
    if isinstance(term, FCase):
        return Case(
            erase(term.scrutinee),
            tuple(
                CaseAlt(alt.constructor, alt.binders, erase(alt.rhs))
                for alt in term.alts
            ),
        )
    raise TypeError(f"unknown System F term: {term!r}")
