"""System F: target language of elaboration, checker, erasure, embedding."""

from repro.systemf.ast import (
    FAlt,
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTerm,
    FTyApp,
    FTyLam,
    FVar,
    fapp,
    ftyapp,
    ftylam,
)
from repro.systemf.check import FChecker, typecheck
from repro.systemf.elaborate import Elaborator, elaborate_result
from repro.systemf.embed import Embedder, embed
from repro.systemf.erase import erase
from repro.systemf.pretty import pretty_fterm

__all__ = [
    "FAlt", "FApp", "FCase", "FLam", "FLet", "FLit", "FTerm", "FTyApp",
    "FTyLam", "FVar", "fapp", "ftyapp", "ftylam",
    "FChecker", "typecheck", "Elaborator", "elaborate_result",
    "Embedder", "embed", "erase", "pretty_fterm",
]
