"""System F term syntax (the elaboration target, Figures 15–16).

System F types are the same grammar as GI types (:mod:`repro.core.types`)
restricted to contain no unification variables; the checker enforces this.

Terms::

    eF ::= x | λ(x :: σ). eF | Λ ā. eF | eF eF | eF σ | literal
         | let x :: σ = e1 in e2
         | case eF of { K b̄ (x :: σ) ... -> eF ; ... }
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Type


@dataclass(frozen=True)
class FTerm:
    """Base class of System F term forms."""

    def __str__(self) -> str:
        from repro.systemf.pretty import pretty_fterm

        return pretty_fterm(self)


@dataclass(frozen=True)
class FVar(FTerm):
    name: str


@dataclass(frozen=True)
class FLit(FTerm):
    value: object


@dataclass(frozen=True)
class FLam(FTerm):
    """``λ(x :: σ). e`` — System F lambdas are always annotated."""

    var: str
    annotation: Type
    body: FTerm


@dataclass(frozen=True)
class FTyLam(FTerm):
    """``Λ a1 ... an. e`` — type abstraction."""

    binders: tuple[str, ...]
    body: FTerm

    def __post_init__(self) -> None:
        if not isinstance(self.binders, tuple):
            object.__setattr__(self, "binders", tuple(self.binders))


@dataclass(frozen=True)
class FApp(FTerm):
    """Term application (binary; System F needs no n-ary special casing)."""

    fn: FTerm
    arg: FTerm


@dataclass(frozen=True)
class FTyApp(FTerm):
    """``e σ1 ... σn`` — type application."""

    fn: FTerm
    types: tuple[Type, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.types, tuple):
            object.__setattr__(self, "types", tuple(self.types))


@dataclass(frozen=True)
class FLet(FTerm):
    """``let x :: σ = e1 in e2`` (non-recursive)."""

    var: str
    annotation: Type
    bound: FTerm
    body: FTerm


@dataclass(frozen=True)
class FAlt:
    """One case alternative with explicit existential binders."""

    constructor: str
    type_binders: tuple[str, ...]
    binders: tuple[str, ...]
    rhs: FTerm

    def __post_init__(self) -> None:
        if not isinstance(self.type_binders, tuple):
            object.__setattr__(self, "type_binders", tuple(self.type_binders))
        if not isinstance(self.binders, tuple):
            object.__setattr__(self, "binders", tuple(self.binders))


@dataclass(frozen=True)
class FCase(FTerm):
    """``case e of { alts }`` over a known data type."""

    scrutinee: FTerm
    alts: tuple[FAlt, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.alts, tuple):
            object.__setattr__(self, "alts", tuple(self.alts))


def fapp(fn: FTerm, *arguments: FTerm) -> FTerm:
    """Left-nested term application."""
    result = fn
    for argument in arguments:
        result = FApp(result, argument)
    return result


def ftyapp(fn: FTerm, types) -> FTerm:
    """Type application, collapsing empty lists."""
    types = tuple(types)
    if not types:
        return fn
    if isinstance(fn, FTyApp):
        return FTyApp(fn.fn, fn.types + types)
    return FTyApp(fn, types)


def ftylam(binders, body: FTerm) -> FTerm:
    """Type abstraction, collapsing empty binder lists."""
    binders = tuple(binders)
    if not binders:
        return body
    if isinstance(body, FTyLam):
        return FTyLam(binders + body.binders, body.body)
    return FTyLam(binders, body)
