"""Embedding System F into GI (Figure 15, Theorem C.1).

Every System F program has a GI counterpart with the same type; the
translation inserts annotations wherever guardedness alone would not
justify the instantiations the F term performs:

* type abstractions ``Λā. e`` become annotated expressions ``(e :: ∀ā.σ)``;
* every application spine is annotated with its (checked) result type, so
  variables reaching the result may be instantiated without restriction;
* every argument is annotated with its checked type, pinning polymorphic
  argument types exactly;
* lambdas become annotated lambdas.

Variables that occur only naked in argument positions and not in the
result may end up *less* polymorphically instantiated than in the source
F term (GI's ⊢arg re-instantiates the annotated argument), but such
instantiations cannot influence the final type — which is all Theorem C.1
claims.
"""

from __future__ import annotations

from repro.core.env import Environment
from repro.core.terms import Ann, AnnLam, Case, CaseAlt, Let, Term, Var, app
from repro.core.terms import Lit
from repro.core.types import Type, is_fully_monomorphic, strip_forall
from repro.systemf.ast import (
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTerm,
    FTyApp,
    FTyLam,
    FVar,
)
from repro.systemf.check import FChecker


class Embedder:
    """Translates checked System F terms into annotated GI terms."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.checker = FChecker(env)

    def embed(self, term: FTerm) -> tuple[Term, Type]:
        """The GI translation of a well-typed F term, with its type."""
        type_ = self.checker.typecheck(term)
        return self._go(term, self.env, type_), type_

    # ------------------------------------------------------------------

    def _go(self, term: FTerm, env: Environment, type_: Type) -> Term:
        if isinstance(term, FVar):
            return Var(term.name)
        if isinstance(term, FLit):
            return Lit(term.value)
        if isinstance(term, FLam):
            inner_env = env.extended(term.var, term.annotation)
            inner_type = FChecker(inner_env).typecheck(term.body)
            return AnnLam(
                term.var,
                term.annotation,
                self._result_annotated(term.body, inner_env, inner_type),
            )
        if isinstance(term, FTyLam):
            inner_type = FChecker(env).typecheck(term)  # ∀binders. σ
            body_f_type = FChecker(env).typecheck(term.body)
            inner = self._go(term.body, env, body_f_type)
            return Ann(_strip_ann(inner), inner_type)
        if isinstance(term, (FApp, FTyApp)):
            return self._embed_spine(term, env, type_)
        if isinstance(term, FLet):
            bound = self._go(term.bound, env, term.annotation)
            inner_env = env.extended(term.var, term.annotation)
            body_type = FChecker(inner_env).typecheck(term.body)
            return Let(
                term.var,
                Ann(_strip_ann(bound), term.annotation),
                self._go(term.body, inner_env, body_type),
            )
        if isinstance(term, FCase):
            return self._embed_case(term, env, type_)
        raise TypeError(f"unknown System F term: {term!r}")

    def _embed_spine(self, term: FTerm, env: Environment, type_: Type) -> Term:
        """Translate an application spine, annotating with its result type."""
        head, arguments = _spine(term)
        checker = FChecker(env)
        head_gi = self._head(head, env, checker)
        args_gi = []
        for argument in arguments:
            arg_type = checker.typecheck(argument)
            arg_gi = self._go(argument, env, arg_type)
            args_gi.append(self._pin(arg_gi, arg_type))
        result = app(head_gi, *args_gi) if args_gi else head_gi
        if not args_gi and is_fully_monomorphic(type_):
            # A bare head used monomorphically needs no annotation.
            return result
        if isinstance(result, Ann) and result.annotation == type_:
            return result
        return Ann(_strip_ann(result), type_)

    def _head(self, head: FTerm, env: Environment, checker: FChecker) -> Term:
        if isinstance(head, FVar):
            return Var(head.name)
        head_type = checker.typecheck(head)
        return self._go(head, env, head_type)

    def _pin(self, argument: Term, arg_type: Type) -> Term:
        """Annotate an argument with its exact F type (unless trivial)."""
        if isinstance(argument, Var) and is_fully_monomorphic(arg_type):
            return argument
        if isinstance(argument, Lit):
            return argument
        if isinstance(argument, Ann):
            return argument
        return Ann(argument, arg_type)

    def _result_annotated(self, body: FTerm, env: Environment, type_: Type) -> Term:
        """A lambda body, annotated when its type is polymorphic (GI's
        un-annotated application results are top-level monomorphic)."""
        inner = self._go(body, env, type_)
        binders, _ = strip_forall(type_)
        if binders and not isinstance(inner, Ann):
            return Ann(_strip_ann(inner), type_)
        return inner

    def _embed_case(self, term: FCase, env: Environment, type_: Type) -> Term:
        checker = FChecker(env)
        scrutinee_type = checker.typecheck(term.scrutinee)
        scrutinee = self._go(term.scrutinee, env, scrutinee_type)
        alts = []
        for alt in term.alts:
            datacon = env.lookup_datacon(alt.constructor)
            from repro.core.types import TVar, subst_tvars

            mapping: dict[str, Type] = dict(
                zip(datacon.universals, getattr(scrutinee_type, "args", ()))
            )
            mapping.update(
                {
                    old: TVar(new)
                    for old, new in zip(datacon.existentials, alt.type_binders)
                }
            )
            fields = [subst_tvars(mapping, field) for field in datacon.fields]
            alt_env = env.extended_many(dict(zip(alt.binders, fields)))
            rhs_type = FChecker(alt_env).typecheck(alt.rhs)
            alts.append(
                CaseAlt(alt.constructor, alt.binders, self._go(alt.rhs, alt_env, rhs_type))
            )
        case = Case(scrutinee, tuple(alts))
        return Ann(case, type_)


def _spine(term: FTerm) -> tuple[FTerm, list[FTerm]]:
    """Head and term arguments of an application chain (type applications
    are dropped — GI re-infers instantiations)."""
    arguments: list[FTerm] = []
    while True:
        if isinstance(term, FApp):
            arguments.append(term.arg)
            term = term.fn
        elif isinstance(term, FTyApp):
            term = term.fn
        else:
            break
    arguments.reverse()
    return term, arguments


def _strip_ann(term: Term) -> Term:
    return term.expr if isinstance(term, Ann) else term


def _ann_type(term: Term) -> Type | None:
    return term.annotation if isinstance(term, Ann) else None


def embed(term: FTerm, env: Environment) -> tuple[Term, Type]:
    """Convenience wrapper over :class:`Embedder`."""
    return Embedder(env).embed(term)
