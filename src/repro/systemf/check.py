"""A type checker for System F.

This is the executable form of Theorem 4.2 (soundness): a GI-inferred
program, elaborated by :mod:`repro.systemf.elaborate`, must check here at
(an α-equivalent of) its inferred type.  The checker is completely
independent of the inference machinery — deliberately so, to serve as an
oracle: it performs no unification, only α-equality comparisons.
"""

from __future__ import annotations

from repro.core.env import DataCon, Environment
from repro.core.errors import SystemFTypeError
from repro.core.types import (
    BOOL,
    CHAR,
    INT,
    STRING,
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    arrow_parts,
    forall,
    ftv,
    is_arrow,
    strip_forall,
    subst_tvars,
)
from repro.systemf.ast import (
    FAlt,
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTerm,
    FTyApp,
    FTyLam,
    FVar,
)


class FChecker:
    """Checks System F terms against an environment of (F) types."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._skolem_counter = 0

    def typecheck(self, term: FTerm) -> Type:
        """The type of a System F term; raises :class:`SystemFTypeError`."""
        return self._check(term, self.env, set())

    def _check(self, term: FTerm, env: Environment, in_scope: set[str]) -> Type:
        if isinstance(term, FVar):
            try:
                return env.lookup(term.name)
            except Exception as error:
                raise SystemFTypeError(str(error)) from None
        if isinstance(term, FLit):
            return _literal_type(term.value)
        if isinstance(term, FLam):
            _ensure_closed(term.annotation)
            body_type = self._check(
                term.body, env.extended(term.var, term.annotation), in_scope
            )
            return TCon("->", (term.annotation, body_type))
        if isinstance(term, FTyLam):
            clash = set(term.binders) & in_scope
            if clash:
                raise SystemFTypeError(
                    f"type binder shadows an in-scope type variable: {sorted(clash)}"
                )
            body_type = self._check(term.body, env, in_scope | set(term.binders))
            return forall(term.binders, body_type)
        if isinstance(term, FApp):
            fn_type = self._check(term.fn, env, in_scope)
            arg_type = self._check(term.arg, env, in_scope)
            if not is_arrow(fn_type):
                raise SystemFTypeError(
                    f"application of a non-function: `{term.fn}` has type `{fn_type}`"
                )
            parameter, result = arrow_parts(fn_type)
            if not alpha_equal(parameter, arg_type):
                raise SystemFTypeError(
                    f"argument type mismatch: function `{term.fn}` expects "
                    f"`{parameter}` but argument has type `{arg_type}`"
                )
            return result
        if isinstance(term, FTyApp):
            fn_type = self._check(term.fn, env, in_scope)
            binders, body = strip_forall(fn_type)
            if isinstance(fn_type, Forall) and fn_type.context:
                raise SystemFTypeError(
                    "type application to a qualified type (class contexts are "
                    "erased before System F elaboration)"
                )
            if len(term.types) > len(binders):
                raise SystemFTypeError(
                    f"too many type arguments: `{fn_type}` takes {len(binders)}, "
                    f"got {len(term.types)}"
                )
            for type_argument in term.types:
                _ensure_closed(type_argument)
            used = binders[: len(term.types)]
            rest = binders[len(term.types):]
            mapping = dict(zip(used, term.types))
            return forall(rest, subst_tvars(mapping, body))
        if isinstance(term, FLet):
            bound_type = self._check(term.bound, env, in_scope)
            if not alpha_equal(bound_type, term.annotation):
                raise SystemFTypeError(
                    f"let annotation mismatch: declared `{term.annotation}`, "
                    f"bound expression has `{bound_type}`"
                )
            return self._check(term.body, env.extended(term.var, bound_type), in_scope)
        if isinstance(term, FCase):
            return self._check_case(term, env, in_scope)
        raise TypeError(f"unknown System F term: {term!r}")

    def _check_case(self, term: FCase, env: Environment, in_scope: set[str]) -> Type:
        scrutinee_type = self._check(term.scrutinee, env, in_scope)
        if not isinstance(scrutinee_type, TCon):
            raise SystemFTypeError(
                f"case scrutinee must have a data type, got `{scrutinee_type}`"
            )
        result_type: Type | None = None
        for alt in term.alts:
            datacon = self._datacon(env, alt.constructor)
            if datacon.result_con != scrutinee_type.name:
                raise SystemFTypeError(
                    f"constructor {alt.constructor} does not build `{scrutinee_type}`"
                )
            if len(datacon.universals) != len(scrutinee_type.args):
                raise SystemFTypeError(
                    f"wrong arity for data type `{scrutinee_type.name}`"
                )
            if len(alt.type_binders) != len(datacon.existentials):
                raise SystemFTypeError(
                    f"constructor {alt.constructor} binds "
                    f"{len(datacon.existentials)} existential(s)"
                )
            if len(alt.binders) != datacon.arity:
                raise SystemFTypeError(
                    f"constructor {alt.constructor} has arity {datacon.arity}"
                )
            mapping: dict[str, Type] = dict(
                zip(datacon.universals, scrutinee_type.args)
            )
            mapping.update(
                {
                    old: TVar(new)
                    for old, new in zip(datacon.existentials, alt.type_binders)
                }
            )
            fields = [subst_tvars(mapping, field) for field in datacon.fields]
            alt_env = env.extended_many(dict(zip(alt.binders, fields)))
            alt_type = self._check(alt.rhs, alt_env, in_scope | set(alt.type_binders))
            if set(alt.type_binders) & ftv(alt_type):
                raise SystemFTypeError(
                    f"existential type variable escapes from branch "
                    f"{alt.constructor}: `{alt_type}`"
                )
            if result_type is None:
                result_type = alt_type
            elif not alpha_equal(result_type, alt_type):
                raise SystemFTypeError(
                    f"case branches disagree: `{result_type}` vs `{alt_type}`"
                )
        assert result_type is not None
        return result_type

    @staticmethod
    def _datacon(env: Environment, name: str) -> DataCon:
        try:
            return env.lookup_datacon(name)
        except Exception as error:
            raise SystemFTypeError(str(error)) from None


def _literal_type(value: object) -> Type:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, str) and len(value) == 1:
        return CHAR
    if isinstance(value, str):
        return STRING
    raise SystemFTypeError(f"unsupported literal: {value!r}")


def _ensure_closed(type_: Type) -> None:
    for node in _walk(type_):
        if isinstance(node, UVar):
            raise SystemFTypeError(
                f"unification variable `{node}` leaked into a System F type"
            )


def _walk(type_: Type):
    yield type_
    if isinstance(type_, TCon):
        for argument in type_.args:
            yield from _walk(argument)
    elif isinstance(type_, Forall):
        yield from _walk(type_.body)
        for predicate in type_.context:
            for argument in predicate.args:
                yield from _walk(argument)


def typecheck(term: FTerm, env: Environment) -> Type:
    """Convenience wrapper over :class:`FChecker`."""
    return FChecker(env).typecheck(term)
