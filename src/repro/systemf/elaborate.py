"""Elaboration of inferred GI programs into System F (Figure 16).

Constraint generation tagged every instantiation / generalisation /
annotation site with the path of its term node; the solver recorded which
type arguments each instantiation chose (interleaved with the explicit
arguments, rule by rule) and which skolems each generalisation introduced.
This module replays the source term against that evidence, emitting:

* ``ψ1 e1 ψ2 e2 ... ψr`` type/term application chains for rule App;
* ``Λb̄. eF τ̄`` for rule ArgGen and ``Λb̄. x σ̄`` for rule VarGen;
* ``Λb̄. ...`` around annotated applications (rule AnnApp);
* ``(λ(x :: ϕ). e2F) e1F``-style explicit lets;
* case alternatives with explicit existential binders.

The resulting term type-checks in plain System F
(:mod:`repro.systemf.check`) at an α-equivalent of the inferred type —
the executable content of Theorems 4.2 and C.1.
"""

from __future__ import annotations

from repro.core.errors import ElaborationError
from repro.core.evidence import EvidenceStore, Path, TakeArg, TypeArgs
from repro.core.infer import InferenceResult
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.systemf.ast import (
    FAlt,
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTerm,
    FTyApp,
    FVar,
    ftyapp,
    ftylam,
)


class Elaborator:
    """Replays a type-inferred term into System F."""

    def __init__(self, evidence: EvidenceStore) -> None:
        self.evidence = evidence

    # ------------------------------------------------------------------

    def elaborate(self, term: Term, path: Path = ()) -> FTerm:
        if isinstance(term, Var):
            return self._elaborate_app(term, (), path)
        if isinstance(term, Lit):
            return FLit(term.value)
        if isinstance(term, App):
            return self._elaborate_app(term.head, term.args, path)
        if isinstance(term, Lam):
            binder_type = self.evidence.lam_binders.get(path)
            if binder_type is None:
                raise ElaborationError(f"no binder type recorded for λ at {path}")
            return FLam(term.var, binder_type, self.elaborate(term.body, path + (0,)))
        if isinstance(term, AnnLam):
            return FLam(term.var, term.annotation, self.elaborate(term.body, path + (0,)))
        if isinstance(term, Ann):
            return self._elaborate_ann(term, path)
        if isinstance(term, Let):
            bound_type = self.evidence.let_types.get(path)
            if bound_type is None:
                raise ElaborationError(f"no bound type recorded for let at {path}")
            return FLet(
                term.var,
                bound_type,
                self.elaborate(term.bound, path + (0,)),
                self.elaborate(term.body, path + (1,)),
            )
        if isinstance(term, Case):
            return self._elaborate_case(term, path)
        raise TypeError(f"unknown term node: {term!r}")

    # ------------------------------------------------------------------

    def _elaborate_app(self, head: Term, args: tuple[Term, ...], path: Path) -> FTerm:
        current = self._elaborate_head(head, path + (0,))
        trace = self.evidence.inst_traces.get(path, [])
        next_argument = 0
        for event in trace:
            if isinstance(event, TypeArgs):
                current = ftyapp(current, event.types)
            elif isinstance(event, TakeArg):
                if next_argument >= len(args):
                    raise ElaborationError(
                        f"instantiation trace at {path} consumes more arguments "
                        f"than the application has"
                    )
                current = FApp(
                    current,
                    self._elaborate_arg(args[next_argument], path + (next_argument + 1,)),
                )
                next_argument += 1
            else:
                raise TypeError(f"unknown instantiation event: {event!r}")
        if next_argument != len(args):
            raise ElaborationError(
                f"instantiation trace at {path} consumed {next_argument} of "
                f"{len(args)} arguments"
            )
        return current

    def _elaborate_head(self, head: Term, path: Path) -> FTerm:
        if isinstance(head, Var):
            return FVar(head.name)
        return self.elaborate(head, path)

    def _elaborate_arg(self, argument: Term, path: Path) -> FTerm:
        info = self.evidence.gen_infos.get(path)
        if info is None:
            # The argument produced no generalisation evidence (can happen
            # for arguments whose Gen constraint was fully degenerate).
            return self.elaborate(argument, path)
        if info.star:
            if not isinstance(argument, Var):
                raise ElaborationError("VarGen evidence on a non-variable argument")
            inner: FTerm = ftyapp(FVar(argument.name), info.star_type_args)
        else:
            inner = self.elaborate(argument, path)
            inner = ftyapp(inner, info.release_type_args)
        return ftylam(info.skolems, inner)

    def _elaborate_ann(self, term: Ann, path: Path) -> FTerm:
        if isinstance(term.expr, App):
            head, args = term.expr.head, term.expr.args
        else:
            head, args = term.expr, ()
        info = self.evidence.gen_infos.get(("ann",) + path)
        skolems = info.skolems if info is not None else []
        current = self._elaborate_head(head, path + (0,))
        trace = self.evidence.inst_traces.get(path, [])
        next_argument = 0
        for event in trace:
            if isinstance(event, TypeArgs):
                current = ftyapp(current, event.types)
            elif isinstance(event, TakeArg):
                current = FApp(
                    current,
                    self._elaborate_arg(args[next_argument], path + (next_argument + 1,)),
                )
                next_argument += 1
        if next_argument != len(args):
            raise ElaborationError(
                f"annotated application at {path} consumed {next_argument} of "
                f"{len(args)} arguments"
            )
        return ftylam(skolems, current)

    def _elaborate_case(self, term: Case, path: Path) -> FTerm:
        info = self.evidence.case_infos.get(path)
        if info is None:
            raise ElaborationError(f"no case evidence at {path}")
        scrutinee = self.elaborate(term.scrutinee, path + (0,))
        alts = []
        for index, alt in enumerate(term.alts):
            rhs = self.elaborate(alt.rhs, path + (index + 1,))
            skolems = tuple(info.alt_skolems[index]) if index < len(info.alt_skolems) else ()
            alts.append(FAlt(alt.constructor, skolems, alt.binders, rhs))
        return FCase(scrutinee, tuple(alts))


def elaborate_result(result: InferenceResult) -> FTerm:
    """Elaborate an inference result into System F.

    The result must come from a run with ``generalize=True`` (the default):
    generalisation replaces residual unification variables by quantified
    type variables, which become the top-level ``Λ`` binders here.
    """
    from repro.core.types import fuv

    raw = result.solver.unifier.zonk(result.raw_type)
    if fuv(raw):
        raise ElaborationError(
            "cannot elaborate an under-generalised result (run inference "
            "with generalize=True)"
        )
    body = Elaborator(result.evidence).elaborate(result.term)
    return ftylam(result.generalized_binders, body)
