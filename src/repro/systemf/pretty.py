"""Pretty printer for System F terms."""

from __future__ import annotations

from repro.core.types import render_type
from repro.systemf.ast import (
    FApp,
    FCase,
    FLam,
    FLet,
    FLit,
    FTerm,
    FTyApp,
    FTyLam,
    FVar,
)

_ATOM, _TOP = 1, 0


def pretty_fterm(term: FTerm, precedence: int = _TOP) -> str:
    """Render a System F term with explicit type abstractions/applications."""
    if isinstance(term, FVar):
        return term.name
    if isinstance(term, FLit):
        if isinstance(term.value, bool):
            return "True" if term.value else "False"
        if isinstance(term.value, str) and len(term.value) == 1:
            return f"'{term.value}'"
        return str(term.value)
    if isinstance(term, FLam):
        rendered = (
            f"\\({term.var} :: {render_type(term.annotation)}) -> "
            f"{pretty_fterm(term.body, _TOP)}"
        )
        return f"({rendered})" if precedence > _TOP else rendered
    if isinstance(term, FTyLam):
        rendered = f"/\\{' '.join(term.binders)} -> {pretty_fterm(term.body, _TOP)}"
        return f"({rendered})" if precedence > _TOP else rendered
    if isinstance(term, FApp):
        rendered = f"{pretty_fterm(term.fn, _ATOM)} {pretty_fterm(term.arg, _ATOM)}"
        return f"({rendered})" if precedence >= _ATOM else rendered
    if isinstance(term, FTyApp):
        types = " ".join(f"@({render_type(t)})" for t in term.types)
        rendered = f"{pretty_fterm(term.fn, _ATOM)} {types}"
        return f"({rendered})" if precedence >= _ATOM else rendered
    if isinstance(term, FLet):
        rendered = (
            f"let {term.var} :: {render_type(term.annotation)} = "
            f"{pretty_fterm(term.bound, _TOP)} in {pretty_fterm(term.body, _TOP)}"
        )
        return f"({rendered})" if precedence > _TOP else rendered
    if isinstance(term, FCase):
        alts = " ; ".join(
            alt.constructor
            + "".join(f" @{b}" for b in alt.type_binders)
            + "".join(f" {b}" for b in alt.binders)
            + f" -> {pretty_fterm(alt.rhs, _TOP)}"
            for alt in term.alts
        )
        rendered = f"case {pretty_fterm(term.scrutinee, _TOP)} of {{ {alts} }}"
        return f"({rendered})" if precedence > _TOP else rendered
    raise TypeError(f"unknown System F term: {term!r}")
