"""Content-addressed caching of per-binding inference results.

Every binding's checked type is stored under a *key* that captures
exactly the inputs its inference depends on:

* the pretty-printed definition (so whitespace/comment edits miss
  nothing and change nothing),
* the pretty-printed declared signature (or its absence),
* for every dependency, the dependency's name paired with the hash of
  the *type* it checked to — a module-level dependency contributes the
  hash of its checked type, an in-group (mutually recursive) dependency
  contributes its declared signature, and a prelude name contributes its
  environment type.

Hash-chaining through dependency *types* (not dependency sources) gives
early cutoff for free: editing the body of a leaf binding without
changing its type leaves every dependent's key intact, so only the
edited SCC re-checks.  When the edit does change the leaf's type, the
key of every transitive dependent changes and exactly the invalidation
footprint (:func:`repro.modules.graph.dependents_closure`) re-checks.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

from repro.core.env import Environment
from repro.core.types import Type
from repro.modules.graph import BindingGroup
from repro.modules.parser import Binding


def content_hash(text: str) -> str:
    """A short, stable hex digest of ``text``."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CacheEntry:
    """The checked result of one binding under one key."""

    key: str
    type_: Type
    """The checked type itself.  Types are immutable, so serving the same
    object across re-checks is safe — and keeps the warm path free of
    type re-parsing, which would otherwise dominate it."""

    type_text: str
    """``str(type_)``, precomputed: it feeds the type hash and reports."""

    @property
    def type_hash(self) -> str:
        return content_hash(self.type_text)


@dataclass
class ModuleCache:
    """Per-binding result cache, keyed by content hash.

    One cache instance is long-lived across re-checks of an evolving
    module; :meth:`lookup` answers only when the stored key matches the
    freshly computed one, so stale entries are simply never served (and
    are overwritten by the next :meth:`store`).
    """

    entries: dict[str, CacheEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def peek(self, name: str, key: str) -> CacheEntry | None:
        """Like :meth:`lookup` but without touching the hit/miss counters.

        The engine decides hits at *group* granularity (a group re-checks
        whole or not at all), so it peeks members first and accounts once
        the group's fate is known.
        """
        entry = self.entries.get(name)
        if entry is not None and entry.key == key:
            return entry
        return None

    def lookup(self, name: str, key: str) -> CacheEntry | None:
        entry = self.entries.get(name)
        if entry is not None and entry.key == key:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, name: str, key: str, type_: Type) -> CacheEntry:
        entry = CacheEntry(key=key, type_=type_, type_text=str(type_))
        self.entries[name] = entry
        return entry

    def type_hash(self, name: str) -> str | None:
        entry = self.entries.get(name)
        return entry.type_hash if entry else None

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ----------------------------------------------------
    #
    # The cache round-trips through JSON as (key, pretty-printed type)
    # pairs; types are rebuilt by parsing their pretty form, which the
    # pretty/parse round-trip property guarantees is lossless.  This is
    # what makes cache hits survive across *processes*: a second
    # ``python -m repro module`` run of an unchanged file starts warm.

    SCHEMA_VERSION = 1

    def save(self, path: str) -> None:
        """Write the cache to ``path`` as JSON, atomically.

        The payload goes to a temporary file in the same directory which
        is then renamed over ``path`` (``os.replace`` is atomic on POSIX
        and Windows), so a process killed mid-save — or a full disk —
        can never leave a truncated sidecar behind: readers see either
        the old complete file or the new complete file.  The load path's
        damage→cold-start recovery stays as a second line of defence,
        but corruption is no longer reachable through this writer.
        """
        payload = {
            "version": self.SCHEMA_VERSION,
            "entries": {
                name: {"key": entry.key, "type": entry.type_text}
                for name, entry in self.entries.items()
            },
        }
        target = os.path.abspath(path)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=os.path.dirname(target),
            prefix=os.path.basename(target) + ".",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, ensure_ascii=False, indent=1)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, target)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "ModuleCache":
        """Read a cache written by :meth:`save`.

        Any problem — missing file, corrupt JSON, unknown version, an
        unparseable type — yields an *empty* cache: persistence is an
        optimisation, never a correctness dependency, so a bad cache file
        degrades to a cold start instead of an error.
        """
        from repro.syntax import parse_type

        cache = cls()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != cls.SCHEMA_VERSION:
                return cls()
            for name, item in payload.get("entries", {}).items():
                type_text = item["type"]
                cache.entries[name] = CacheEntry(
                    key=item["key"],
                    type_=parse_type(type_text),
                    type_text=type_text,
                )
        except Exception:  # noqa: BLE001 — cold start on any damage
            return cls()
        return cache


def binding_key(
    binding: Binding,
    group: BindingGroup,
    dep_type_hashes: dict[str, str],
    env: Environment,
) -> str:
    """The cache key of one binding inside its group.

    ``dep_type_hashes`` maps already-checked module-level names to the
    hash of their checked type.  In-group dependencies (the mutual
    recursion case) are keyed by their declared signatures — which the
    group requires anyway — and prelude names by their environment types.
    """
    members = set(group.names)
    pieces = [binding.source_key]
    for dependency in sorted(binding.free_term_vars()):
        if dependency == binding.name:
            continue
        if dependency in members:
            peer = next(b for b in group.bindings if b.name == dependency)
            sig = "" if peer.signature is None else str(peer.signature)
            pieces.append(f"{dependency}~sig:{content_hash(sig)}")
        elif dependency in dep_type_hashes:
            pieces.append(f"{dependency}~mod:{dep_type_hashes[dependency]}")
        elif dependency in env:
            pieces.append(f"{dependency}~env:{content_hash(str(env.lookup(dependency)))}")
        else:
            pieces.append(f"{dependency}~unbound")
    return content_hash("\n".join(pieces))
