"""Type-checking one binding group against an environment.

The rules mirror GHC's treatment of top-level binding groups, restricted
to what GI can justify:

* a **non-recursive** binding with a signature is checked in *check
  mode* — the definition is wrapped as ``(e :: σ)`` (Section 3.4's
  ``f :: σ; f = e`` story) and the binding enters the environment at its
  *declared* type;
* a non-recursive binding **without** a signature is inferred and
  generalised to its principal type (Theorem 4.3 makes this canonical);
* a **recursive** group (an SCC of size > 1, or a self-recursive
  binding) requires a signature on *every* member — GI has no implicit
  generalisation for recursion, and with signatures the group needs no
  fixpoint iteration: every member is checked under the assumption of
  all the declared types, which also gives polymorphic recursion for
  free.  Missing signatures raise
  :class:`~repro.core.errors.CyclicBindingError`.

Failures never escape as exceptions: every member of the group gets
either a checked type or a structured
:class:`~repro.robustness.batch.Diagnostic`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.env import Environment
from repro.core.errors import CyclicBindingError, GIError, InternalError
from repro.core.infer import Inferencer, InferOptions
from repro.core.solver import InstanceEnv
from repro.core.terms import Ann
from repro.core.types import Type
from repro.modules.graph import BindingGroup
from repro.modules.parser import Binding
from repro.robustness.batch import SEVERITY_ERROR, SEVERITY_INTERNAL, Diagnostic
from repro.robustness.budget import Budget


@dataclass
class GroupOutcome:
    """The result of checking one binding group."""

    group: BindingGroup
    types: dict[str, Type] = field(default_factory=dict)
    """Checked type per *successful* member."""

    diagnostics: dict[str, Diagnostic] = field(default_factory=dict)
    """Diagnostic per *failed* member."""

    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _diagnose(error: GIError, index: int, name: str) -> Diagnostic:
    severity = SEVERITY_INTERNAL if isinstance(error, InternalError) else SEVERITY_ERROR
    return Diagnostic(
        severity=severity,
        index=index,
        error_class=type(error).__name__,
        message=str(error),
        phase=getattr(error, "phase", None),
        binding=name,
        traceback=getattr(error, "snapshot", {}).get("traceback"),
    )


def check_group(
    group: BindingGroup,
    env: Environment,
    instances: InstanceEnv | None = None,
    options: InferOptions | None = None,
    budget: Budget | None = None,
    indices: dict[str, int] | None = None,
    tracer=None,
    parent_span=None,
) -> GroupOutcome:
    """Check every member of ``group`` under ``env``.

    ``indices`` maps binding names to their declaration positions (for
    diagnostics); it defaults to positions within the group.  When a
    ``tracer`` is given the whole group runs inside a ``group.check``
    span; ``parent_span`` parents it explicitly, which is what keeps the
    span tree intact when groups run on pool worker threads (the worker
    thread has no ambient span stack of its own).
    """
    started = time.perf_counter()
    outcome = GroupOutcome(group)
    indices = indices or {b.name: i for i, b in enumerate(group.bindings)}
    span_cm = (
        tracer.span(
            "group.check",
            parent=parent_span,
            names=",".join(group.names),
            recursive=group.recursive,
        )
        if tracer is not None and tracer.enabled
        else nullcontext()
    )

    with span_cm:
        if group.recursive:
            missing = tuple(b.name for b in group.bindings if b.signature is None)
            if missing:
                error = CyclicBindingError(group.names, missing)
                for binding in group.bindings:
                    outcome.diagnostics[binding.name] = _diagnose(
                        error, indices[binding.name], binding.name
                    )
                outcome.seconds = time.perf_counter() - started
                return outcome
            # Check each member under the assumption of all declared types.
            assumptions = {b.name: b.signature for b in group.bindings}
            rec_env = env.extended_many(assumptions)
            for binding in group.bindings:
                _check_one(
                    binding, rec_env, instances, options, budget, indices, outcome, tracer
                )
        else:
            binding = group.bindings[0]
            _check_one(binding, env, instances, options, budget, indices, outcome, tracer)

    outcome.seconds = time.perf_counter() - started
    return outcome


def _check_one(
    binding: Binding,
    env: Environment,
    instances: InstanceEnv | None,
    options: InferOptions | None,
    budget: Budget | None,
    indices: dict[str, int],
    outcome: GroupOutcome,
    tracer=None,
) -> None:
    inferencer = Inferencer(env, instances, options, budget=budget, tracer=tracer)
    try:
        if binding.signature is not None:
            inferencer.infer(Ann(binding.term, binding.signature))
            outcome.types[binding.name] = binding.signature
        else:
            outcome.types[binding.name] = inferencer.infer(binding.term).type_
    except GIError as error:
        outcome.diagnostics[binding.name] = _diagnose(
            error, indices[binding.name], binding.name
        )
