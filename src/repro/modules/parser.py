"""Parser for Haskell-like module files.

A module file is a sequence of top-level declarations::

    -- an optional header
    module Lens where

    setters :: [forall a. a -> a]
    setters = id : ids

    pick =
      head setters            -- continuation lines are indented

Two declaration forms exist: a *signature* ``name :: type`` and a
*definition* ``name = expr``.  A declaration starts on a line whose first
character is in column one; indented lines continue the declaration
above, so definitions can span lines.  ``--`` comments and blank lines
separate declarations freely.

Positions in errors are file positions: the tokens of each declaration
chunk are re-based onto the chunk's starting line, so a parse error deep
inside the third binding reports the line of the offending token, not
line one of its chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import DuplicateBindingError, ParseError
from repro.core.terms import Term, free_vars
from repro.core.types import Type
from repro.syntax.lexer import Token, tokenize
from repro.syntax.parser import _Parser


@dataclass(frozen=True)
class Binding:
    """One top-level binding: a definition plus its optional signature."""

    name: str
    term: Term
    signature: Type | None = None
    line: int = 1
    """File line of the definition's name token."""

    column: int = 1
    signature_line: int | None = None

    @property
    def source_key(self) -> str:
        """The content-addressable text of this binding: the *pretty-printed*
        definition and signature, so whitespace and comment edits do not
        change the key (see :mod:`repro.modules.cache`)."""
        sig = "" if self.signature is None else str(self.signature)
        return f"{self.name} :: {sig}\n{self.name} = {self.term}"

    def free_term_vars(self) -> set[str]:
        return free_vars(self.term)


@dataclass
class Module:
    """A parsed module: named bindings in declaration order."""

    name: str | None = None
    bindings: list[Binding] = field(default_factory=list)
    path: str | None = None

    @property
    def names(self) -> list[str]:
        return [binding.name for binding in self.bindings]

    def binding(self, name: str) -> Binding:
        for binding in self.bindings:
            if binding.name == name:
                return binding
        raise KeyError(name)


def _chunks(source: str) -> list[tuple[int, str]]:
    """Split into declaration chunks: ``(start_line, text)`` pairs.

    A chunk starts at a line whose first column is non-blank; indented
    lines (and any blank/comment lines between them and further indented
    lines) belong to the chunk above.  The chunk text keeps the original
    line breaks and indentation so token columns are file columns.
    """
    chunks: list[tuple[int, list[str]]] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("--"):
            continue
        if line[0] not in " \t":
            chunks.append((line_number, [line]))
        elif chunks:
            start, lines = chunks[-1]
            # Pad intervening blank lines so token line numbers stay
            # file-accurate inside the chunk.
            missing = line_number - start - len(lines)
            lines.extend([""] * missing)
            lines.append(line)
        else:
            raise ParseError(
                "a module declaration cannot start with indentation",
                line_number,
                len(line) - len(line.lstrip()) + 1,
            )
    return [(start, "\n".join(lines)) for start, lines in chunks]


def _rebase(tokens: list[Token], start_line: int) -> list[Token]:
    """Shift chunk-relative token lines onto file lines."""
    offset = start_line - 1
    return [replace(token, line=token.line + offset) for token in tokens]


def _is_module_header(tokens: list[Token]) -> bool:
    return (
        len(tokens) >= 3
        and tokens[0].kind == "ident"
        and tokens[0].text == "module"
        and tokens[1].kind == "conid"
        and tokens[2].kind == "ident"
        and tokens[2].text == "where"
    )


@dataclass
class _RawSignature:
    name: str
    type_: Type
    line: int
    column: int


@dataclass
class _RawDefinition:
    name: str
    term: Term
    line: int
    column: int


def parse_module(source: str, path: str | None = None) -> Module:
    """Parse a whole module file.

    Raises :class:`ParseError` for syntax problems (with file positions),
    :class:`DuplicateBindingError` for repeated definitions or signatures,
    and :class:`ParseError` for a signature that has no definition.
    """
    module_name: str | None = None
    signatures: dict[str, _RawSignature] = {}
    definitions: dict[str, _RawDefinition] = {}
    order: list[str] = []

    for index, (start_line, text) in enumerate(_chunks(source)):
        tokens = _rebase(tokenize(text), start_line)
        if index == 0 and _is_module_header(tokens):
            module_name = tokens[1].text
            if tokens[3].kind != "eof":
                extra = tokens[3]
                raise ParseError(
                    f"unexpected input after module header: `{extra}`",
                    extra.line,
                    extra.column,
                )
            continue
        head = tokens[0]
        if head.kind != "ident":
            raise ParseError(
                f"expected a top-level binding name, found `{head}`",
                head.line,
                head.column,
            )
        separator = tokens[1] if len(tokens) > 1 else head
        parser = _Parser(tokens)
        parser.position = 2  # past `name ::` / `name =`
        if separator.kind == "symbol" and separator.text == "::":
            type_ = parser.type_()
            parser.expect_eof()
            if head.text in signatures:
                raise DuplicateBindingError(
                    head.text,
                    "signature",
                    head.line,
                    head.column,
                    signatures[head.text].line,
                )
            signatures[head.text] = _RawSignature(head.text, type_, head.line, head.column)
        elif separator.kind == "symbol" and separator.text == "=":
            term = parser.term()
            parser.expect_eof()
            if head.text in definitions:
                raise DuplicateBindingError(
                    head.text,
                    "binding",
                    head.line,
                    head.column,
                    definitions[head.text].line,
                )
            definitions[head.text] = _RawDefinition(head.text, term, head.line, head.column)
            order.append(head.text)
        else:
            raise ParseError(
                f"expected `::` or `=` after `{head.text}`, found `{separator}`",
                separator.line,
                separator.column,
            )

    for name, signature in signatures.items():
        if name not in definitions:
            raise ParseError(
                f"signature for `{name}` has no accompanying binding",
                signature.line,
                signature.column,
            )

    bindings = [
        Binding(
            name=name,
            term=definitions[name].term,
            signature=signatures[name].type_ if name in signatures else None,
            line=definitions[name].line,
            column=definitions[name].column,
            signature_line=signatures[name].line if name in signatures else None,
        )
        for name in order
    ]
    return Module(name=module_name, bindings=bindings, path=path)


def parse_module_file(path: str) -> Module:
    """Read and parse a module file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_module(handle.read(), path=path)
