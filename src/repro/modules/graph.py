"""Binding-group analysis: dependency graph, SCC condensation, layers.

A module's bindings form a digraph — an edge ``f → g`` when ``g`` occurs
free in the definition of ``f`` (only module-level names count; prelude
names are environment facts, not graph edges).  Checking order is the
topological order of the strongly connected components of that graph,
exactly GHC's *binding groups*.  Tarjan's algorithm conveniently emits
SCCs in reverse topological order of the condensation, i.e. dependencies
first, which is the order the checker wants.

The implementation is iterative (explicit stack), so a thousand-binding
dependency chain does not ride Python's recursion limit.

:func:`topo_layers` additionally slices the group sequence into *layers*
of mutually independent groups — groups in one layer share no edges, so
the incremental engine may check them concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.modules.parser import Binding, Module


@dataclass(frozen=True)
class BindingGroup:
    """One SCC of the binding dependency graph, in check order."""

    index: int
    bindings: tuple[Binding, ...]
    deps: frozenset[str]
    """Module-level names this group uses, *excluding* its own members."""

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(binding.name for binding in self.bindings)

    @property
    def recursive(self) -> bool:
        """Mutually recursive (|SCC| > 1) or self-recursive."""
        if len(self.bindings) > 1:
            return True
        only = self.bindings[0]
        return only.name in only.free_term_vars()


def dependencies(module: Module) -> dict[str, set[str]]:
    """``name -> set of module-level names free in its definition``."""
    local = set(module.names)
    return {
        binding.name: binding.free_term_vars() & local
        for binding in module.bindings
    }


def strongly_connected_components(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC algorithm, iteratively, dependencies-first.

    ``graph[n]`` is the set of nodes ``n`` depends on.  The returned
    components are ordered so every component appears after the
    components it depends on; members keep a deterministic order.
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in graph:
        if root in index_of:
            continue
        # Each work item is (node, iterator over its successors).
        work = [(root, iter(sorted(graph[root])))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in graph:
                    continue
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def binding_groups(module: Module) -> list[BindingGroup]:
    """The module's SCC binding groups, in dependency-first check order."""
    graph = dependencies(module)
    by_name = {binding.name: binding for binding in module.bindings}
    groups: list[BindingGroup] = []
    for index, component in enumerate(strongly_connected_components(graph)):
        members = set(component)
        external = set().union(*(graph[name] for name in component)) - members
        groups.append(
            BindingGroup(
                index=index,
                bindings=tuple(by_name[name] for name in component),
                deps=frozenset(external),
            )
        )
    return groups


def topo_layers(groups: list[BindingGroup]) -> list[list[BindingGroup]]:
    """Slice check-ordered groups into layers of independent groups.

    Layer *k* holds every group whose longest dependency chain has length
    *k*; groups within one layer never depend on each other, so they can
    be checked concurrently once all earlier layers are done.
    """
    owner: dict[str, int] = {}
    for group in groups:
        for name in group.names:
            owner[name] = group.index
    depth: dict[int, int] = {}
    layers: list[list[BindingGroup]] = []
    for group in groups:
        level = 0
        for dependency in group.deps:
            level = max(level, depth[owner[dependency]] + 1)
        depth[group.index] = level
        while len(layers) <= level:
            layers.append([])
        layers[level].append(group)
    return layers


def dependents_closure(module: Module, roots: set[str]) -> set[str]:
    """Every binding that (transitively) depends on one of ``roots``.

    The roots themselves are included.  This is the invalidation footprint
    of an edit: the set of bindings whose check *might* be affected.
    """
    graph = dependencies(module)
    reverse: dict[str, set[str]] = {name: set() for name in graph}
    for name, deps in graph.items():
        for dependency in deps:
            reverse[dependency].add(name)
    seen = set(root for root in roots if root in graph)
    frontier = list(seen)
    while frontier:
        current = frontier.pop()
        for dependent in reverse[current]:
            if dependent not in seen:
                seen.add(dependent)
                frontier.append(dependent)
    return seen


@dataclass
class GraphSummary:
    """Shape statistics for ``--stats`` output."""

    bindings: int = 0
    groups: int = 0
    layers: int = 0
    largest_group: int = 0
    recursive_groups: int = 0

    @classmethod
    def of(cls, groups: list[BindingGroup]) -> "GraphSummary":
        layer_count = len(topo_layers(groups))
        return cls(
            bindings=sum(len(group.bindings) for group in groups),
            groups=len(groups),
            layers=layer_count,
            largest_group=max((len(group.bindings) for group in groups), default=0),
            recursive_groups=sum(1 for group in groups if group.recursive),
        )

    def to_dict(self) -> dict:
        return {
            "bindings": self.bindings,
            "groups": self.groups,
            "layers": self.layers,
            "largest_group": self.largest_group,
            "recursive_groups": self.recursive_groups,
        }
