"""The incremental module-checking engine.

One :class:`ModuleEngine` owns a base environment, a result cache and a
concurrency setting, and repeatedly checks (evolving versions of) a
module::

    engine = ModuleEngine(figure2_env(), jobs=4)
    result = engine.check_source(source)      # cold: everything misses
    result = engine.check_source(edited)      # warm: only dirty SCCs run

Per check, the engine

1. parses the module and condenses its dependency graph into SCC
   binding groups (:mod:`repro.modules.graph`);
2. walks the topological *layers* of the condensation; within a layer
   the groups are independent, so the ones that need re-checking go
   through the shared :class:`~repro.robustness.pool.WorkerPool`
   concurrently, each worker under its own cloned
   :class:`~repro.robustness.budget.Budget`;
3. consults the content-hash cache (:mod:`repro.modules.cache`) before
   checking a group — a group whose every member's key is unchanged is
   taken from the cache without running inference, which is what makes
   re-checking an edited module proportional to the edit's invalidation
   footprint rather than to the module size;
4. aggregates per-binding outcomes: a checked type, a structured
   diagnostic, or a *skip* when a dependency failed (one failure costs
   its dependents a one-line skip diagnostic each, never a cascade of
   spurious scope errors).

The returned :class:`ModuleResult` carries the extended environment so
callers (the REPL's ``:load``) can keep using the module's bindings.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.env import Environment
from repro.core.errors import GIError
from repro.core.infer import InferOptions
from repro.core.solver import InstanceEnv
from repro.core.types import Type
from repro.modules.cache import ModuleCache, binding_key
from repro.modules.checker import GroupOutcome, check_group
from repro.modules.graph import BindingGroup, GraphSummary, binding_groups, topo_layers
from repro.modules.parser import Module, parse_module, parse_module_file
from repro.robustness.batch import SEVERITY_ERROR, Diagnostic
from repro.robustness.budget import Budget
from repro.robustness.pool import WorkerPool, clone_budget


@dataclass
class BindingReport:
    """The outcome for one top-level binding."""

    name: str
    index: int
    """Declaration position within the module."""

    type_text: str | None = None
    diagnostic: Diagnostic | None = None
    cached: bool = False
    group: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.diagnostic is None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "ok": self.ok,
            "type": self.type_text,
            "cached": self.cached,
            "group": list(self.group),
            "diagnostic": self.diagnostic.to_dict() if self.diagnostic else None,
        }


@dataclass
class GroupTiming:
    """``--stats`` row: one binding group, how it was resolved."""

    names: tuple[str, ...]
    layer: int
    seconds: float
    cached: bool
    skipped: bool = False

    def to_dict(self) -> dict:
        return {
            "names": list(self.names),
            "layer": self.layer,
            "seconds": round(self.seconds, 6),
            "cached": self.cached,
            "skipped": self.skipped,
        }


@dataclass
class ModuleStats:
    """Cache and timing statistics for one check run."""

    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    groups_checked: int = 0
    groups_cached: int = 0
    groups_skipped: int = 0
    elapsed_seconds: float = 0.0
    graph: GraphSummary = field(default_factory=GraphSummary)
    group_timings: list[GroupTiming] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "groups_checked": self.groups_checked,
            "groups_cached": self.groups_cached,
            "groups_skipped": self.groups_skipped,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "graph": self.graph.to_dict(),
            "group_timings": [timing.to_dict() for timing in self.group_timings],
        }


@dataclass
class ModuleResult:
    """Everything one check run produced, in declaration order."""

    module: Module
    reports: list[BindingReport]
    stats: ModuleStats
    env: Environment
    """The base environment extended with every successfully checked
    binding — ready for a REPL or a dependent module."""

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def failures(self) -> list[BindingReport]:
        return [report for report in self.reports if not report.ok]

    @property
    def types(self) -> dict[str, str]:
        return {
            report.name: report.type_text
            for report in self.reports
            if report.type_text is not None
        }

    def to_dict(self, include_stats: bool = True) -> dict:
        payload = {
            "module": self.module.name,
            "path": self.module.path,
            "total": len(self.reports),
            "passed": len(self.reports) - len(self.failures),
            "failed": len(self.failures),
            "bindings": [report.to_dict() for report in self.reports],
        }
        if include_stats:
            payload["stats"] = self.stats.to_dict()
        return payload


class ModuleEngine:
    """A reusable, caching module checker; see the module docstring."""

    def __init__(
        self,
        env: Environment | None = None,
        instances: InstanceEnv | None = None,
        options: InferOptions | None = None,
        budget: Budget | None = None,
        jobs: int = 1,
        cache: ModuleCache | None = None,
        tracer=None,
    ) -> None:
        self.env = env or Environment()
        self.instances = instances
        self.options = options
        self.budget = budget
        self.jobs = max(1, jobs)
        # ``cache or ModuleCache()`` would discard a caller-supplied
        # *empty* cache (ModuleCache defines __len__, so empty is falsy)
        # — fatal for persistence, where the caller keeps the reference
        # to save it after the run.
        self.cache = cache if cache is not None else ModuleCache()
        self.tracer = tracer
        self._pool = WorkerPool(
            jobs=self.jobs, budget_factory=lambda: clone_budget(self.budget)
        )

    def _span(self, name: str, parent=None, **attrs):
        if self.tracer is not None and self.tracer.enabled:
            return self.tracer.span(name, parent=parent, **attrs)
        return nullcontext()

    # ------------------------------------------------------------------

    def check_file(self, path: str) -> ModuleResult:
        """Parse and check a module file from disk."""
        with self._span("parse", path=path):
            module = parse_module_file(path)
        return self.check_module(module)

    def check_source(self, source: str, path: str | None = None) -> ModuleResult:
        """Parse and check module source text."""
        with self._span("parse", chars=len(source)):
            module = parse_module(source, path=path)
        return self.check_module(module)

    def check_module(self, module: Module) -> ModuleResult:
        started = time.perf_counter()
        tracing = self.tracer is not None and self.tracer.enabled
        self.cache.reset_counters()
        with self._span("module.check", module=module.name or "(anonymous)") as module_span:
            with self._span("graph", parent=module_span):
                groups = binding_groups(module)
                layers = topo_layers(groups)
            indices = {name: position for position, name in enumerate(module.names)}

            stats = ModuleStats(jobs=self.jobs, graph=GraphSummary.of(groups))
            reports: dict[str, BindingReport] = {}
            env = self.env
            failed: set[str] = set()
            dep_hashes: dict[str, str] = {}
            rechecked: set[str] = set()
            """Names that went through inference (not cache) this run —
            a later cache hit that *depends* on one of these is an early
            cutoff: the dependency re-checked to the same type hash."""

            for layer_index, layer in enumerate(layers):
                with self._span(
                    "layer", parent=module_span, index=layer_index, groups=len(layer)
                ) as layer_span:
                    pending: list[tuple[BindingGroup, dict[str, str]]] = []
                    new_bindings: dict[str, Type] = {}
                    for group in layer:
                        blocked = sorted(group.deps & failed)
                        if blocked:
                            self._skip_group(group, blocked, indices, reports)
                            failed.update(group.names)
                            stats.groups_skipped += 1
                            stats.group_timings.append(
                                GroupTiming(
                                    group.names, layer_index, 0.0, False, skipped=True
                                )
                            )
                            if tracing:
                                self.tracer.inc("module.groups.skipped")
                                self.tracer.event(
                                    "module.skip",
                                    names=",".join(group.names),
                                    blocked_on=blocked,
                                )
                            continue
                        keys = {
                            binding.name: binding_key(binding, group, dep_hashes, env)
                            for binding in group.bindings
                        }
                        entries = {
                            name: self.cache.peek(name, key) for name, key in keys.items()
                        }
                        if all(entry is not None for entry in entries.values()):
                            self.cache.hits += len(entries)
                            stats.cache_hits += len(entries)
                            stats.groups_cached += 1
                            stats.group_timings.append(
                                GroupTiming(group.names, layer_index, 0.0, cached=True)
                            )
                            if tracing:
                                self.tracer.inc("module.cache.hits", len(entries))
                                cutoff = sorted(group.deps & rechecked)
                                if cutoff:
                                    self.tracer.inc("module.cache.cutoffs")
                                    self.tracer.event(
                                        "module.cache.cutoff",
                                        names=",".join(group.names),
                                        unchanged_deps=cutoff,
                                    )
                                else:
                                    self.tracer.event(
                                        "module.cache.hit", names=",".join(group.names)
                                    )
                            for binding in group.bindings:
                                entry = entries[binding.name]
                                reports[binding.name] = BindingReport(
                                    name=binding.name,
                                    index=indices[binding.name],
                                    type_text=entry.type_text,
                                    cached=True,
                                    group=group.names,
                                )
                                new_bindings[binding.name] = entry.type_
                                dep_hashes[binding.name] = entry.type_hash
                            continue
                        self.cache.misses += len(entries)
                        stats.cache_misses += len(entries)
                        if tracing:
                            self.tracer.inc("module.cache.misses", len(entries))
                            self.tracer.event(
                                "module.cache.miss", names=",".join(group.names)
                            )
                        pending.append((group, keys))

                    if pending:
                        if tracing and layer_span is not None:
                            layer_span.attrs["pending"] = len(pending)
                            layer_span.attrs["jobs"] = min(self.jobs, len(pending))
                        env_now = env

                        def run(
                            item: tuple[BindingGroup, dict[str, str]],
                            budget: Budget | None,
                            _env: Environment = env_now,
                            _parent=layer_span,
                        ) -> GroupOutcome:
                            return check_group(
                                item[0],
                                _env,
                                self.instances,
                                self.options,
                                budget=budget,
                                indices=indices,
                                tracer=self.tracer,
                                parent_span=_parent,
                            )

                        outcomes = self._pool.map(run, pending)
                        stats.groups_checked += len(pending)
                        for (group, keys), outcome in zip(pending, outcomes):
                            rechecked.update(group.names)
                            stats.group_timings.append(
                                GroupTiming(
                                    group.names, layer_index, outcome.seconds, False
                                )
                            )
                            for binding in group.bindings:
                                if binding.name in outcome.types:
                                    type_ = outcome.types[binding.name]
                                    entry = self.cache.store(
                                        binding.name, keys[binding.name], type_
                                    )
                                    type_text = entry.type_text
                                    reports[binding.name] = BindingReport(
                                        name=binding.name,
                                        index=indices[binding.name],
                                        type_text=type_text,
                                        group=group.names,
                                    )
                                    new_bindings[binding.name] = type_
                                    dep_hashes[binding.name] = entry.type_hash
                                else:
                                    reports[binding.name] = BindingReport(
                                        name=binding.name,
                                        index=indices[binding.name],
                                        diagnostic=outcome.diagnostics[binding.name],
                                        group=group.names,
                                    )
                                    failed.add(binding.name)
                    if new_bindings:
                        env = env.extended_many(new_bindings)

        stats.elapsed_seconds = time.perf_counter() - started
        ordered = [reports[name] for name in module.names]
        return ModuleResult(module=module, reports=ordered, stats=stats, env=env)

    # ------------------------------------------------------------------

    @staticmethod
    def _skip_group(
        group: BindingGroup,
        blocked_on: list[str],
        indices: dict[str, int],
        reports: dict[str, BindingReport],
    ) -> None:
        culprits = ", ".join(f"`{name}`" for name in blocked_on)
        for binding in group.bindings:
            reports[binding.name] = BindingReport(
                name=binding.name,
                index=indices[binding.name],
                diagnostic=Diagnostic(
                    severity=SEVERITY_ERROR,
                    index=indices[binding.name],
                    error_class="SkippedBinding",
                    message=f"not checked: depends on failed binding {culprits}",
                    binding=binding.name,
                ),
                group=group.names,
            )


def render_module_text(result: ModuleResult, stats: bool = False) -> str:
    """The human-readable report printed by ``python -m repro module``."""
    lines: list[str] = []
    for report in result.reports:
        if report.ok:
            marker = " (cached)" if report.cached else ""
            lines.append(f"{report.name} :: {report.type_text}{marker}")
        else:
            diagnostic = report.diagnostic
            lines.append(
                f"{report.name}: {diagnostic.severity}"
                f" [{diagnostic.error_class}]: {diagnostic.message}"
            )
    total = len(result.reports)
    failed = len(result.failures)
    lines.append(f"{total - failed}/{total} bindings checked, {failed} failed")
    if stats:
        s = result.stats
        lines.append(
            f"groups: {s.graph.groups} ({s.graph.recursive_groups} recursive) "
            f"in {s.graph.layers} layers; checked {s.groups_checked}, "
            f"cached {s.groups_cached}, skipped {s.groups_skipped}"
        )
        lines.append(
            f"cache: {s.cache_hits} hits, {s.cache_misses} misses; "
            f"jobs={s.jobs}; elapsed {s.elapsed_seconds:.3f}s"
        )
        for timing in s.group_timings:
            if timing.cached or timing.skipped:
                continue
            lines.append(
                f"  {'+'.join(timing.names)}: {timing.seconds * 1000:.1f} ms "
                f"(layer {timing.layer})"
            )
    return "\n".join(lines)
