"""Module layer: multi-binding programs with SCC binding groups and
incremental, cached re-checking.

The pipeline, end to end::

    parse_module  ──►  binding_groups  ──►  ModuleEngine.check_module
    (parser.py)        (graph.py)           (engine.py, via checker.py
                                             and cache.py)

* :mod:`repro.modules.parser` — Haskell-like module files: top-level
  ``name :: sig`` signatures and ``name = expr`` bindings;
* :mod:`repro.modules.graph` — free-variable dependency graph, Tarjan
  SCC condensation into binding groups, topological layers;
* :mod:`repro.modules.checker` — per-group checking: declared signatures
  as check-mode annotations, generalisation for unsigned non-recursive
  bindings, :class:`~repro.core.errors.CyclicBindingError` for
  unannotated recursion;
* :mod:`repro.modules.cache` — content-hash result cache keyed on each
  binding's source, signature, and dependency types;
* :mod:`repro.modules.engine` — the incremental driver behind
  ``python -m repro module`` and the REPL's ``:load``.
"""

from repro.modules.cache import CacheEntry, ModuleCache, binding_key, content_hash
from repro.modules.checker import GroupOutcome, check_group
from repro.modules.engine import (
    BindingReport,
    GroupTiming,
    ModuleEngine,
    ModuleResult,
    ModuleStats,
    render_module_text,
)
from repro.modules.graph import (
    BindingGroup,
    GraphSummary,
    binding_groups,
    dependencies,
    dependents_closure,
    strongly_connected_components,
    topo_layers,
)
from repro.modules.parser import Binding, Module, parse_module, parse_module_file

__all__ = [
    "Binding",
    "BindingGroup",
    "BindingReport",
    "CacheEntry",
    "GraphSummary",
    "GroupOutcome",
    "GroupTiming",
    "Module",
    "ModuleCache",
    "ModuleEngine",
    "ModuleResult",
    "ModuleStats",
    "binding_groups",
    "binding_key",
    "check_group",
    "content_hash",
    "dependencies",
    "dependents_closure",
    "parse_module",
    "parse_module_file",
    "render_module_text",
    "strongly_connected_components",
    "topo_layers",
]
