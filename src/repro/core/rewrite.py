"""Figure 8 taken literally: a small-step constraint rewriting engine.

The production solver (:mod:`repro.core.solver`) is a deterministic
worklist engine with levels standing in for rule float.  This module
implements the *paper's presentation* instead: a configuration
``C ; ῡ`` and a step function that applies the first applicable rewrite
rule — ⊤ident, eqrefl, eqmono, eqsubst, eqvar, eqfully, instϵ, inst→,
inst∀l and inst⨅l — rebuilding the entire constraint set at each step,
exactly as the rules read.

It covers the quantifier-free fragment (equalities and instantiation
constraints; generalisation constraints whose right-hand side never
becomes a ``∀``), which is enough to cross-check the production solver on
randomly generated unification and instantiation problems: both engines
must agree on *solvability*, and on solved problems their induced
substitutions must agree up to renaming (the property tests live in
``tests/test_rewrite.py``).

This is deliberately O(n²)-per-step — the point is fidelity to the
figure, not speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.classify import Bit
from repro.core.constraints import Constraint, Eq, Gen, Inst
from repro.core.classify import classified_binders
from repro.core.names import NameSupply
from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    contains_uvar,
    fun,
    fuv,
    respects,
    subst_tvars,
    subst_uvars,
)


@dataclass
class Configuration:
    """``C ; ῡ`` — a constraint set with its existential variables."""

    constraints: list[Constraint]
    variables: set[UVar] = field(default_factory=set)
    supply: NameSupply = field(default_factory=lambda: NameSupply("rw"))
    trace: list[str] = field(default_factory=list)

    def fresh(self, sort: Sort) -> UVar:
        variable = UVar(self.supply.fresh(), sort)
        self.variables.add(variable)
        return variable


class Stuck(Exception):
    """No rule applies and the configuration is not in solved form."""


def step(config: Configuration) -> bool:
    """Apply the first applicable rule; returns False at normal form."""
    for index, constraint in enumerate(config.constraints):
        rule = _match_rule(config, index, constraint)
        if rule is not None:
            name, apply = rule
            rest = config.constraints[:index] + config.constraints[index + 1:]
            config.constraints = apply(rest)
            config.trace.append(name)
            return True
    return False


def _match_rule(config: Configuration, index: int, constraint: Constraint):
    if isinstance(constraint, Eq):
        left, right = constraint.left, constraint.right
        # [eqrefl] — syntactic (α-) equality.
        if alpha_equal(left, right):
            return "eqrefl", lambda rest: rest
        # [eqvar] — orient variable-variable equalities by restrictiveness.
        if (
            isinstance(left, UVar)
            and isinstance(right, UVar)
            and left.sort < right.sort
        ):
            return "eqvar", lambda rest: rest + [Eq(right, left)]
        # [eqfully] — αᵐ ~ σ demotes every non-m variable of σ.
        if isinstance(left, UVar) and left.sort is Sort.M and not isinstance(right, UVar):
            loose = [v for v in fuv(right) if v.sort is not Sort.M]
            if loose:
                def demote(rest, loose=loose, keep=constraint):
                    fresh = {v: config.fresh(Sort.M) for v in loose}
                    return rest + [keep] + [Eq(v, fresh[v]) for v in loose]

                return "eqfully", demote
        if isinstance(right, UVar) and not isinstance(left, UVar):
            return "eqswap", lambda rest: rest + [Eq(right, left)]
        # [eqmono] — structural decomposition.
        if (
            isinstance(left, TCon)
            and isinstance(right, TCon)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            pairs = list(zip(left.args, right.args))
            return "eqmono", lambda rest: rest + [Eq(l, r) for l, r in pairs]
        # [eqsubst] — substitute a solved variable into the other
        # constraints (keeping the equality, as the figure does).
        if isinstance(left, UVar):
            if contains_uvar(right, left):
                return None  # occurs failure: stuck (reported as such)
            if not respects(right, left.sort):
                return None
            mentions = [
                other
                for other in config.constraints
                if other is not constraint and left in _constraint_fuv(other)
            ]
            if mentions:
                def substitute(rest, variable=left, image=right, keep=constraint):
                    mapping = {variable: image}
                    return [
                        _subst(mapping, other) for other in rest
                    ] + [keep]

                return "eqsubst", substitute
        return None
    if isinstance(constraint, Inst):
        lhs = constraint.lhs
        if isinstance(lhs, Forall):
            # [inst∀l] — freshen at the classified sorts.
            def freshen(rest, inst=constraint):
                assignment = classified_binders(inst.lhs, inst.sort, inst.bits)
                mapping = {
                    binder: config.fresh(assignment.get(binder, Sort.M))
                    for binder in inst.lhs.binders
                }
                body = subst_tvars(mapping, inst.lhs.body)
                return rest + [replace(inst, lhs=body)]

            return "inst∀l", freshen
        if isinstance(lhs, UVar) and lhs.sort is Sort.U:
            return None  # wait (Section 4.3.2 case 1)
        if not constraint.bits:
            # [instϵ]
            return "instϵ", lambda rest, i=constraint: rest + [Eq(i.lhs, i.result)]
        # [inst→]
        def arrow(rest, inst=constraint):
            beta = config.fresh(Sort.U)
            return rest + [
                Eq(inst.lhs, fun(inst.args[0], beta)),
                Inst(beta, inst.sort, inst.bits[1:], inst.args[1:], inst.result),
            ]

        return "inst→", arrow
    if isinstance(constraint, Gen):
        rhs = constraint.rhs
        if isinstance(rhs, UVar) and rhs.sort is Sort.U:
            return None  # wait (Section 4.3.2 case 2)
        if isinstance(rhs, Forall):
            return None  # inst∀r needs scoping; outside this fragment
        # [inst⨅l] — release the captured constraints.
        def release(rest, gen=constraint):
            config.variables.update(gen.scheme.captured)
            return (
                rest
                + list(gen.scheme.constraints)
                + [Inst(gen.scheme.type_, Sort.M, (), (), gen.rhs)]
            )

        return "inst⨅l", release
    return None


def _constraint_fuv(constraint: Constraint) -> set[UVar]:
    from repro.core.constraints import constraint_fuv

    return constraint_fuv(constraint)


def _subst(mapping: dict[UVar, Type], constraint: Constraint) -> Constraint:
    from repro.core.constraints import subst_constraint

    return subst_constraint(mapping, constraint)


@dataclass
class RewriteOutcome:
    solved: bool
    substitution: dict[UVar, Type]
    residual: list[Constraint]
    steps: list[str]


def rewrite_solve(
    constraints: list[Constraint],
    variables: set[UVar] | None = None,
    max_steps: int = 10_000,
) -> RewriteOutcome:
    """Run the rewriting engine to normal form and classify the result.

    Solved form (Figure 9, restricted to the scope-free fragment): only
    equalities ``α ~ σ`` with at most one equality per variable and an
    idempotent induced substitution.
    """
    config = Configuration(list(constraints), set(variables or set()))
    for _ in range(max_steps):
        if not step(config):
            break
    else:
        raise RuntimeError("rewriting did not terminate within the step budget")

    substitution: dict[UVar, Type] = {}
    residual: list[Constraint] = []
    solved = True
    for constraint in config.constraints:
        if (
            isinstance(constraint, Eq)
            and isinstance(constraint.left, UVar)
            and not contains_uvar(constraint.right, constraint.left)
            and respects(constraint.right, constraint.left.sort)
            and constraint.left not in substitution
        ):
            substitution[constraint.left] = constraint.right
        else:
            residual.append(constraint)
            solved = False
    # Idempotence check (rule SolvedVar): images mention only variables
    # without equalities of their own.
    if solved:
        for image in substitution.values():
            if any(v in substitution for v in fuv(image)):
                solved = False
                break
    return RewriteOutcome(solved, substitution, residual, config.trace)
