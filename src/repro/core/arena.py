"""Arena-backed type core: int-indexed struct-of-arrays type tables.

The object-graph representation of :mod:`repro.core.types` pays a Python
object per node and a Python-level ``__hash__``/``__eq__`` per container
operation; on the hot paths (zonk, occurs checks, promotion sweeps) those
costs dominate.  This module flattens hash-consed type nodes into an
**arena**: parallel integer arrays where *a type is an* ``int`` *node
id*, so the traversals become tight loops over ``array('q')`` buffers
with no per-step allocation, and a whole prelude-loaded table can be
shipped to another process as one contiguous buffer
(:meth:`Arena.snapshot` / :meth:`Arena.restore`) without re-interning a
single node.

Layout (one row per node; ``kids`` is a shared flat child array)::

    tag     x            y            z
    ----    ---------    ---------    ---------
    TVAR    name id      —            —
    UVAR    name id      sort code    level
    TCON    name id      kids start   arg count      kids: arg ids
    FORALL  kids start   kids len     binder count   kids: record

    FORALL record = [binder name ids...,  body id,  n preds,
                     (pred name id, n args, arg ids...)...]

Node ids are assigned densely in creation order and never change, so the
intern map (``(tag, payload) -> id``, tuples of small ints) makes node-id
equality coincide with structural equality — the arena *is* the
hash-consing table.  The original :class:`~repro.core.types.Type` API
stays available as a **view layer**: :meth:`Arena.view` materialises the
canonical ``Type`` object for a node (memoised per id, so object
identity equals node identity), and :meth:`Arena.add` encodes an
existing ``Type`` into the arena, caching the id on the object so the
boundary conversion is one attribute lookup after the first crossing.

The snapshot format is versioned (``MAGIC`` + format version); a
restored arena reproduces node ids, strings and the intern map exactly,
independent of ``PYTHONHASHSEED`` — restoring in a child process yields
byte-identical inference output (see ``tests/test_determinism.py``).
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterable

from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    InternTable,
    Pred,
    TCon,
    TVar,
    Type,
    UVar,
)

TAG_TVAR = 0
TAG_UVAR = 1
TAG_TCON = 2
TAG_FORALL = 3

_SORTS = (Sort.M, Sort.T, Sort.U)

MAGIC = b"GIARENA\x01"
"""Snapshot header magic; the final byte is the format version."""


class ArenaFull(Exception):
    """Raised by node constructors when a bounded arena is at capacity.

    :class:`ArenaInternTable` catches this and degrades exactly like a
    full :class:`~repro.core.types.InternTable`: the un-interned input
    object is returned and a ``types.intern.full`` event is counted, so
    the memory bound of a long-lived shared table is preserved.
    """


class Arena:
    """Int-indexed type tables; see the module docstring for the layout."""

    __slots__ = (
        "tags",
        "x",
        "y",
        "z",
        "kids",
        "strings",
        "_string_ids",
        "_memo",
        "_views",
        "_fuv_memo",
        "_ftv_memo",
        "capacity",
        "_token",
    )

    def __init__(self, capacity: int | None = None) -> None:
        self.tags = array("b")
        self.x = array("q")
        self.y = array("q")
        self.z = array("q")
        self.kids = array("q")
        self.strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        self._memo: dict[tuple, int] = {}
        self._views: list[Type | None] = []
        self._fuv_memo: dict[int, tuple[int, ...]] = {}
        self._ftv_memo: dict[int, tuple[str, ...]] = {}
        self.capacity = capacity
        # Identity token cached on Type objects as ``_aid = (token, id)``;
        # a plain object() so a stale cache entry from another arena only
        # pins this tiny token, never the arena's arrays.
        self._token = object()

    def __len__(self) -> int:
        return len(self.tags)

    # ------------------------------------------------------------------
    # Node constructors (intern on the way in)
    # ------------------------------------------------------------------

    def _sid(self, name: str) -> int:
        sid = self._string_ids.get(name)
        if sid is None:
            sid = len(self.strings)
            self.strings.append(name)
            self._string_ids[name] = sid
        return sid

    def _new_node(self, key: tuple, tag: int, x: int, y: int, z: int) -> int:
        if self.capacity is not None and len(self.tags) >= self.capacity:
            raise ArenaFull(len(self.tags))
        node = len(self.tags)
        self.tags.append(tag)
        self.x.append(x)
        self.y.append(y)
        self.z.append(z)
        self._views.append(None)
        self._memo[key] = node
        return node

    def tvar(self, name: str) -> int:
        key = (TAG_TVAR, self._sid(name))
        node = self._memo.get(key)
        if node is None:
            node = self._new_node(key, TAG_TVAR, key[1], 0, 0)
        return node

    def uvar(self, name: str, sort: Sort, level: int) -> int:
        key = (TAG_UVAR, self._sid(name), int(sort), level)
        node = self._memo.get(key)
        if node is None:
            node = self._new_node(key, TAG_UVAR, key[1], int(sort), level)
        return node

    def tcon(self, name: str, args: tuple[int, ...] = ()) -> int:
        key = (TAG_TCON, self._sid(name)) + args
        node = self._memo.get(key)
        if node is None:
            start = len(self.kids)
            node = self._new_node(key, TAG_TCON, key[1], start, len(args))
            self.kids.extend(args)
        return node

    def tcon_by_sid(self, sid: int, args: tuple[int, ...] = ()) -> int:
        """:meth:`tcon` addressed by an existing string id (hot paths)."""
        key = (TAG_TCON, sid) + args
        node = self._memo.get(key)
        if node is None:
            start = len(self.kids)
            node = self._new_node(key, TAG_TCON, sid, start, len(args))
            self.kids.extend(args)
        return node

    def forall_node(
        self,
        binders: tuple[int, ...],
        body: int,
        preds: tuple[tuple[int, tuple[int, ...]], ...] = (),
    ) -> int:
        """A quantified node: ``binders`` are string ids, ``preds`` are
        ``(class name id, arg node ids)`` pairs."""
        record: list[int] = list(binders)
        record.append(body)
        record.append(len(preds))
        for class_id, args in preds:
            record.append(class_id)
            record.append(len(args))
            record.extend(args)
        key = (TAG_FORALL,) + tuple(record) + (len(binders),)
        node = self._memo.get(key)
        if node is None:
            start = len(self.kids)
            node = self._new_node(key, TAG_FORALL, start, len(record), len(binders))
            self.kids.extend(record)
        return node

    # ------------------------------------------------------------------
    # Field accessors
    # ------------------------------------------------------------------

    def uvar_sort(self, node: int) -> Sort:
        return _SORTS[self.y[node]]

    def uvar_sort_code(self, node: int) -> int:
        return self.y[node]

    def uvar_level(self, node: int) -> int:
        return self.z[node]

    def name_of(self, node: int) -> str:
        """The name of a TVAR/UVAR/TCON node."""
        return self.strings[self.x[node]]

    def _forall_parts(
        self, node: int
    ) -> tuple[tuple[int, ...], int, list[tuple[int, tuple[int, ...]]]]:
        """Decode a FORALL record: (binder sids, body id, preds)."""
        kids = self.kids
        start = self.x[node]
        n_binders = self.z[node]
        binders = tuple(kids[start : start + n_binders])
        index = start + n_binders
        body = kids[index]
        index += 1
        n_preds = kids[index]
        index += 1
        preds: list[tuple[int, tuple[int, ...]]] = []
        for _ in range(n_preds):
            class_id = kids[index]
            n_args = kids[index + 1]
            index += 2
            preds.append((class_id, tuple(kids[index : index + n_args])))
            index += n_args
        return binders, body, preds

    def children(self, node: int) -> Iterable[int]:
        """Direct sub-type node ids (context args before body for ∀)."""
        tag = self.tags[node]
        if tag == TAG_TCON:
            start, count = self.y[node], self.z[node]
            return self.kids[start : start + count]
        if tag == TAG_FORALL:
            _, body, preds = self._forall_parts(node)
            out: list[int] = []
            for _, args in preds:
                out.extend(args)
            out.append(body)
            return out
        return ()

    # ------------------------------------------------------------------
    # Encoding Type objects into the arena
    # ------------------------------------------------------------------

    def id_of(self, type_: Type) -> int | None:
        """The node id cached on the object by a previous crossing of this
        arena's boundary, or ``None``."""
        aid = type_.__dict__.get("_aid")
        if aid is not None and aid[0] is self._token:
            return aid[1]
        return None

    def _remember(self, type_: Type, node: int) -> None:
        object.__setattr__(type_, "_aid", (self._token, node))
        if self._views[node] is None:
            self._views[node] = type_

    def add(self, type_: Type) -> int:
        """Encode a :class:`Type` into the arena, returning its node id.

        Raises :class:`ArenaFull` when a bounded arena cannot hold a new
        node (existing nodes are still found).  The id is cached on the
        object, so re-encoding is one dict lookup.
        """
        cached = self.id_of(type_)
        if cached is not None:
            return cached
        results: list[int] = []
        stack: list[tuple[Type, bool]] = [(type_, False)]
        while stack:
            node, ready = stack.pop()
            if not ready:
                aid = self.id_of(node)
                if aid is not None:
                    results.append(aid)
                elif isinstance(node, TVar):
                    nid = self.tvar(node.name)
                    self._remember(node, nid)
                    results.append(nid)
                elif isinstance(node, UVar):
                    nid = self.uvar(node.name, node.sort, node.level)
                    self._remember(node, nid)
                    results.append(nid)
                elif isinstance(node, TCon):
                    stack.append((node, True))
                    for argument in reversed(node.args):
                        stack.append((argument, False))
                elif isinstance(node, Forall):
                    stack.append((node, True))
                    stack.append((node.body, False))
                    for predicate in reversed(node.context):
                        for argument in reversed(predicate.args):
                            stack.append((argument, False))
                else:
                    raise TypeError(f"unknown type node: {node!r}")
            elif isinstance(node, TCon):
                count = len(node.args)
                args = tuple(results[-count:]) if count else ()
                if count:
                    del results[-count:]
                nid = self.tcon(node.name, args)
                self._remember(node, nid)
                results.append(nid)
            else:  # Forall
                body = results.pop()
                preds: list[tuple[int, tuple[int, ...]]] = []
                index = len(results) - sum(len(p.args) for p in node.context)
                flat = results[index:]
                del results[index:]
                offset = 0
                for predicate in node.context:
                    width = len(predicate.args)
                    preds.append(
                        (
                            self._sid(predicate.class_name),
                            tuple(flat[offset : offset + width]),
                        )
                    )
                    offset += width
                binders = tuple(self._sid(b) for b in node.binders)
                nid = self.forall_node(binders, body, tuple(preds))
                self._remember(node, nid)
                results.append(nid)
        return results[0]

    # ------------------------------------------------------------------
    # Decoding node ids back into canonical Type views
    # ------------------------------------------------------------------

    def view(self, node: int) -> Type:
        """The canonical :class:`Type` for a node (memoised per id, so
        ``view(i) is view(i)`` — object identity equals node identity)."""
        cached = self._views[node]
        if cached is not None:
            return cached
        views = self._views
        results: list[Type] = []
        stack: list[tuple[int, bool]] = [(node, False)]
        while stack:
            current, ready = stack.pop()
            cached = views[current]
            if cached is not None and not ready:
                results.append(cached)
                continue
            tag = self.tags[current]
            if not ready:
                if tag == TAG_TVAR:
                    built: Type = TVar(self.strings[self.x[current]])
                elif tag == TAG_UVAR:
                    built = UVar(
                        self.strings[self.x[current]],
                        _SORTS[self.y[current]],
                        self.z[current],
                    )
                else:
                    stack.append((current, True))
                    for child in reversed(list(self.children(current))):
                        stack.append((child, False))
                    continue
                self._remember(built, current)
                results.append(views[current])
                continue
            if tag == TAG_TCON:
                count = self.z[current]
                args = tuple(results[-count:]) if count else ()
                if count:
                    del results[-count:]
                built = TCon(self.strings[self.x[current]], args)
            else:  # FORALL
                binder_ids, _, preds = self._forall_parts(current)
                body = results.pop()
                n_args = sum(len(args) for _, args in preds)
                index = len(results) - n_args
                flat = results[index:]
                del results[index:]
                offset = 0
                context: list[Pred] = []
                for class_id, args in preds:
                    width = len(args)
                    context.append(
                        Pred(
                            self.strings[class_id],
                            tuple(flat[offset : offset + width]),
                        )
                    )
                    offset += width
                built = Forall(
                    tuple(self.strings[sid] for sid in binder_ids),
                    body,
                    tuple(context),
                )
            self._remember(built, current)
            results.append(views[current])
        return results[0]

    # ------------------------------------------------------------------
    # Hot-path queries: tight loops over the arrays
    # ------------------------------------------------------------------

    def fuv_ids(self, node: int) -> tuple[int, ...]:
        """Free unification-variable node ids, first-occurrence pre-order
        (matching :func:`repro.core.types.fuv` exactly), memoised."""
        tag = self.tags[node]
        if tag == TAG_UVAR:
            return (node,)
        if tag == TAG_TVAR:
            return ()
        cached = self._fuv_memo.get(node)
        if cached is not None:
            return cached
        tags = self.tags
        kids = self.kids
        found: dict[int, None] = {}
        stack = [node]
        while stack:
            current = stack.pop()
            tag = tags[current]
            if tag == TAG_UVAR:
                found[current] = None
            elif tag == TAG_TCON:
                start, count = self.y[current], self.z[current]
                for index in range(start + count - 1, start - 1, -1):
                    stack.append(kids[index])
            elif tag == TAG_FORALL:
                _, body, preds = self._forall_parts(current)
                stack.append(body)
                for _, args in reversed(preds):
                    for child in reversed(args):
                        stack.append(child)
        result = tuple(found)
        self._fuv_memo[node] = result
        return result

    def ftv_names(self, node: int) -> tuple[str, ...]:
        """Free rigid-variable names, first-occurrence pre-order (matching
        :func:`repro.core.types.ftv`), memoised per node."""
        tag = self.tags[node]
        if tag == TAG_TVAR:
            return (self.strings[self.x[node]],)
        if tag == TAG_UVAR:
            return ()
        cached = self._ftv_memo.get(node)
        if cached is not None:
            return cached
        tags = self.tags
        kids = self.kids
        found: dict[int, None] = {}
        stack: list[tuple[int, frozenset[int]]] = [(node, frozenset())]
        while stack:
            current, bound = stack.pop()
            tag = tags[current]
            if tag == TAG_TVAR:
                sid = self.x[current]
                if sid not in bound:
                    found[sid] = None
            elif tag == TAG_TCON:
                start, count = self.y[current], self.z[current]
                for index in range(start + count - 1, start - 1, -1):
                    stack.append((kids[index], bound))
            elif tag == TAG_FORALL:
                binder_ids, body, preds = self._forall_parts(current)
                inner = bound | frozenset(binder_ids) if binder_ids else bound
                stack.append((body, inner))
                for _, args in reversed(preds):
                    for child in reversed(args):
                        stack.append((child, inner))
        result = tuple(self.strings[sid] for sid in found)
        self._ftv_memo[node] = result
        return result

    def mentions_forall(self, node: int) -> bool:
        """Whether a quantifier occurs anywhere (eqfully's rejection test)."""
        tags = self.tags
        kids = self.kids
        stack = [node]
        while stack:
            current = stack.pop()
            tag = tags[current]
            if tag == TAG_FORALL:
                return True
            if tag == TAG_TCON:
                start, count = self.y[current], self.z[current]
                for index in range(start, start + count):
                    stack.append(kids[index])
        return False

    def subst_uvar_ids(self, mapping: dict[int, int], node: int) -> int:
        """Rebuild ``node`` replacing unification-variable nodes through
        ``mapping`` (node id → node id); unchanged subtrees keep their id."""
        if not mapping:
            return node
        tags = self.tags
        results: list[int] = []
        stack: list[tuple[int, bool]] = [(node, False)]
        while stack:
            current, ready = stack.pop()
            tag = tags[current]
            if not ready:
                if tag == TAG_UVAR:
                    results.append(mapping.get(current, current))
                elif tag == TAG_TVAR:
                    results.append(current)
                else:
                    stack.append((current, True))
                    for child in reversed(list(self.children(current))):
                        stack.append((child, False))
            elif tag == TAG_TCON:
                count = self.z[current]
                args = tuple(results[-count:]) if count else ()
                if count:
                    del results[-count:]
                start = self.y[current]
                if all(
                    args[i] == self.kids[start + i] for i in range(count)
                ):
                    results.append(current)
                else:
                    results.append(self.tcon(self.strings[self.x[current]], args))
            else:  # FORALL
                binder_ids, old_body, preds = self._forall_parts(current)
                body = results.pop()
                n_args = sum(len(args) for _, args in preds)
                index = len(results) - n_args
                flat = results[index:]
                del results[index:]
                changed = body != old_body
                new_preds: list[tuple[int, tuple[int, ...]]] = []
                offset = 0
                for class_id, args in preds:
                    width = len(args)
                    new_args = tuple(flat[offset : offset + width])
                    offset += width
                    if new_args != args:
                        changed = True
                    new_preds.append((class_id, new_args))
                if changed:
                    results.append(
                        self.forall_node(binder_ids, body, tuple(new_preds))
                    )
                else:
                    results.append(current)
        return results[0]

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialise the whole arena into one contiguous buffer.

        Format (all integers little-endian): ``MAGIC`` (8 bytes, the
        last byte is the format version), then ``<5q``: node count, kid
        count, string count, string-blob byte length, capacity (−1 for
        unbounded); then the ``\\x00``-joined UTF-8 string blob, then the
        raw bytes of ``tags``/``x``/``y``/``z``/``kids``.  Type names
        never contain NUL, so the join is unambiguous.
        """
        blob = "\x00".join(self.strings).encode("utf-8")
        header = struct.pack(
            "<5q",
            len(self.tags),
            len(self.kids),
            len(self.strings),
            len(blob),
            -1 if self.capacity is None else self.capacity,
        )
        return b"".join(
            (
                MAGIC,
                header,
                blob,
                self.tags.tobytes(),
                self.x.tobytes(),
                self.y.tobytes(),
                self.z.tobytes(),
                self.kids.tobytes(),
            )
        )

    @classmethod
    def restore(cls, buffer: bytes) -> "Arena":
        """Rebuild an arena from :meth:`snapshot` output.

        Node ids, strings and the intern map are reproduced exactly (the
        map is re-derived from the arrays, so restoration is independent
        of the hash seed the snapshot was taken under).
        """
        if buffer[: len(MAGIC)] != MAGIC:
            raise ValueError("not an arena snapshot (bad magic/version)")
        offset = len(MAGIC)
        n_nodes, n_kids, n_strings, blob_len, capacity = struct.unpack_from(
            "<5q", buffer, offset
        )
        offset += struct.calcsize("<5q")
        blob = buffer[offset : offset + blob_len].decode("utf-8")
        offset += blob_len
        arena = cls(capacity=None if capacity < 0 else capacity)
        arena.strings = blob.split("\x00") if n_strings else []
        if len(arena.strings) != n_strings:
            raise ValueError("corrupt arena snapshot: string count mismatch")
        arena._string_ids = {name: sid for sid, name in enumerate(arena.strings)}
        arena.tags = array("b")
        arena.tags.frombytes(buffer[offset : offset + n_nodes])
        offset += n_nodes
        for attr in ("x", "y", "z"):
            values = array("q")
            values.frombytes(buffer[offset : offset + 8 * n_nodes])
            offset += 8 * n_nodes
            setattr(arena, attr, values)
        kids = array("q")
        kids.frombytes(buffer[offset : offset + 8 * n_kids])
        arena.kids = kids
        arena._views = [None] * n_nodes
        arena._rebuild_memo()
        return arena

    def _rebuild_memo(self) -> None:
        """Re-derive the intern map from the arrays (restore path)."""
        memo: dict[tuple, int] = {}
        for node in range(len(self.tags)):
            tag = self.tags[node]
            if tag == TAG_TVAR:
                key: tuple = (TAG_TVAR, self.x[node])
            elif tag == TAG_UVAR:
                key = (TAG_UVAR, self.x[node], self.y[node], self.z[node])
            elif tag == TAG_TCON:
                start, count = self.y[node], self.z[node]
                key = (TAG_TCON, self.x[node]) + tuple(
                    self.kids[start : start + count]
                )
            else:
                start, length = self.x[node], self.y[node]
                key = (
                    (TAG_FORALL,)
                    + tuple(self.kids[start : start + length])
                    + (self.z[node],)
                )
            memo[key] = node
        self._memo = memo


class ArenaInternTable(InternTable):
    """An :class:`~repro.core.types.InternTable` whose backing store is an
    :class:`Arena`.

    ``intern`` encodes the type into the arena and returns the canonical
    view, so object identity coincides with structural identity *across
    sessions and processes* (a restored table yields the same ids).  A
    full arena degrades exactly like a full ``InternTable`` — the input
    is returned un-interned and counted in ``full_events`` — so a
    long-lived daemon's memory bound is preserved.
    """

    __slots__ = ("arena",)

    def __init__(
        self, capacity: int | None = None, arena: Arena | None = None
    ) -> None:
        super().__init__(capacity=capacity)
        self.arena = arena if arena is not None else Arena(capacity=capacity)

    def intern(self, type_: Type) -> Type:
        before = len(self.arena)
        try:
            node = self.arena.add(type_)
        except ArenaFull:
            self.full_events += 1
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.inc("types.intern.full")
            return type_
        if len(self.arena) == before:
            self.hits += 1
        else:
            self.misses += 1
        return self.arena.view(node)

    def clear(self) -> None:
        self.arena = Arena(capacity=self.capacity)

    def __len__(self) -> int:
        return len(self.arena)

    def snapshot(self) -> bytes:
        return self.arena.snapshot()

    @classmethod
    def restore(cls, buffer: bytes) -> "ArenaInternTable":
        arena = Arena.restore(buffer)
        return cls(capacity=arena.capacity, arena=arena)


def snapshot_environment(env) -> bytes:
    """Intern every binding type of an environment into a fresh arena and
    snapshot it — the buffer a worker process restores at startup so the
    prelude is never re-interned per worker (see ``repro batch --jobs``)."""
    table = ArenaInternTable()
    for _, type_ in env.items():
        table.intern(type_)
    for name in getattr(env, "_datacons", {}):
        datacon = env.lookup_datacon(name)
        for field in datacon.fields:
            table.intern(field)
    return table.snapshot()
