"""Top-level type inference: generate constraints, solve, generalise.

This is the public entry point of the library::

    from repro.core import infer
    result = infer(term, env)
    print(result.type_)          # the principal type

Inference follows Section 4 of the paper: constraint generation
(:mod:`repro.core.generate`) followed by constraint solving
(:mod:`repro.core.solver`).  After solving, residual unification
variables in the inferred type are generalised into quantifiers — the
principal-type property (Theorem 4.3) guarantees any other valid type for
the term is a fully monomorphic substitution instance of the result.
"""

from __future__ import annotations

import traceback as _traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.constraints import ClassC, Constraint
from repro.core.env import Environment
from repro.core.errors import (
    AnnotationNeededError,
    GIError,
    InternalError,
    MissingInstanceError,
)
from repro.core.evidence import EvidenceStore
from repro.core.generate import GenOptions, Generator
from repro.core.names import NameSupply, letters
from repro.core.policy import DEFAULT_POLICY, InstantiationPolicy
from repro.core.solver import InstanceEnv, Solver
from repro.core.terms import Ann, Term
from repro.core.types import (
    Pred,
    TVar,
    Type,
    UVar,
    forall,
    ftv,
    fuv,
    rename_canonical,
)

if TYPE_CHECKING:  # pragma: no cover — keeps the core→robustness edge lazy
    from repro.observability.tracer import TracerLike
    from repro.robustness.budget import Budget
    from repro.robustness.faultinject import FaultPlan


@dataclass
class InferOptions:
    """Configuration for one inference run.

    ``use_vargen`` / ``nary_apps`` feed the ablation benchmarks;
    ``generalize`` controls whether residual variables are quantified;
    ``defaulting=False`` makes the solver fail deterministically with
    :class:`StuckConstraintError` on underdetermined programs instead of
    defaulting the blocked variables (Section 4.3.2); ``policy`` selects
    the instantiation discipline (:mod:`repro.core.policy`) — the default
    ``eager-shallow`` is the paper's system, every other value is an
    experimental eager/lazy × deep/shallow variant.
    """

    use_vargen: bool = True
    nary_apps: bool = True
    generalize: bool = True
    defaulting: bool = True
    policy: InstantiationPolicy = DEFAULT_POLICY
    arena: bool | None = None
    """Int-indexed arena type core: ``True``/``False`` force it on or
    off, ``None`` defers to ``REPRO_ARENA`` (default on).  Both modes
    produce byte-identical output; off selects the object-level store."""


@dataclass
class InferenceResult:
    """Everything produced by one inference run."""

    type_: Type
    """The principal type (generalised, canonically renamed)."""

    raw_type: Type
    """The zonked solver type before generalisation (may contain residual
    unification variables if ``generalize=False``)."""

    term: Term
    constraints: list[Constraint]
    """The constraints as generated (before solving), for inspection."""

    evidence: EvidenceStore
    solver: "Solver"
    context: tuple[Pred, ...] = ()
    """Residual class constraints quantified into the type's context."""

    generalized_binders: tuple[str, ...] = ()
    """Names given to residual unification variables by generalisation (in
    quantification order) — the ``Λ`` binders of the elaborated term."""

    def __str__(self) -> str:
        return str(self.type_)


class Inferencer:
    """A reusable inference engine bound to an environment.

    ``budget`` bounds every run (solver fuel, unification depth, wall
    clock; re-armed per call), ``faults`` is the deterministic
    fault-injection hook used by the robustness test harness.  Whatever
    happens inside a run, :meth:`infer` raises :class:`GIError` or
    nothing: internal failures are converted to :class:`InternalError`
    at this boundary.
    """

    def __init__(
        self,
        env: Environment | None = None,
        instances: InstanceEnv | None = None,
        options: InferOptions | None = None,
        budget: "Budget | None" = None,
        faults: "FaultPlan | None" = None,
        tracer: "TracerLike | None" = None,
        intern=None,
    ) -> None:
        self.env = env or Environment()
        self.instances = instances or InstanceEnv()
        self.options = options or InferOptions()
        self.budget = budget
        self.faults = faults
        self.tracer = tracer
        self.intern = intern
        """Optional shared :class:`~repro.core.types.InternTable` — the
        serve daemon passes one table to every session so hash-consed
        nodes for common types are allocated once per process."""

    def _span(self, name: str, **attrs):
        if self.tracer is not None and self.tracer.enabled:
            return self.tracer.span(name, **attrs)
        return nullcontext()

    def infer(self, term: Term) -> InferenceResult:
        """Infer the principal type of a term; raises :class:`GIError`.

        This is the crash-containment boundary: any non-:class:`GIError`
        exception escaping the engine (deep recursion, an invariant
        violation, an injected fault) is converted to
        :class:`InternalError` carrying the phase it died in and a
        redacted solver-state snapshot — no raw traceback escapes.
        """
        if self.budget is not None:
            if self.tracer is not None:
                self.budget.tracer = self.tracer
            self.budget.start()
        if self.faults is not None:
            if self.tracer is not None:
                self.faults.tracer = self.tracer
            self.faults.start()
        tracing = self.tracer is not None and self.tracer.enabled
        phase = "generate"
        solver: Solver | None = None
        try:
            with self._span("infer"):
                supply = NameSupply("u")
                evidence = EvidenceStore()
                generator = Generator(
                    supply,
                    evidence,
                    GenOptions(
                        use_vargen=self.options.use_vargen,
                        nary_apps=self.options.nary_apps,
                        policy=self.options.policy,
                    ),
                    tracer=self.tracer,
                )
                with self._span("generate"):
                    result_type, constraints = generator.gen(self.env, term)
                if tracing:
                    self.tracer.inc("infer.runs")
                    self.tracer.observe("gen.constraints", len(constraints))
                phase = "solve"
                solver = Solver(
                    supply,
                    evidence,
                    self.instances,
                    budget=self.budget,
                    faults=self.faults,
                    defaulting=self.options.defaulting,
                    tracer=self.tracer,
                    intern=self.intern,
                    policy=self.options.policy,
                    arena=self.options.arena,
                )
                with self._span("solve", constraints=len(constraints)):
                    residual = solver.solve(list(constraints))
                phase = "generalize"
                with self._span("generalize"):
                    zonked = solver.unifier.zonk(result_type)

                    residual_preds: list[ClassC] = []
                    for predicate, scope in residual:
                        if scope.level != 0:
                            raise MissingInstanceError(predicate)
                        residual_preds.append(
                            ClassC(
                                predicate.class_name,
                                tuple(solver.unifier.zonk(a) for a in predicate.args),
                            )
                        )

                    if not self.options.generalize:
                        evidence.zonk(solver.unifier.zonk)
                        result = InferenceResult(
                            zonked, zonked, term, list(constraints), evidence, solver
                        )
                    else:
                        principal, context, binders = self._generalize(
                            zonked, residual_preds, solver
                        )
                        self._ground_evidence(evidence, solver)
                        evidence.zonk(solver.unifier.zonk)
                        result = InferenceResult(
                            rename_canonical(principal),
                            zonked,
                            term,
                            list(constraints),
                            evidence,
                            solver,
                            context,
                            binders,
                        )
                if tracing:
                    self.tracer.event(
                        "infer.result",
                        type=str(result.type_),
                        steps=solver.steps,
                        bindings=solver.unifier.bindings,
                    )
                return result
        except GIError as error:
            if tracing:
                self.tracer.inc("infer.errors")
                self.tracer.event(
                    "infer.error",
                    error_class=type(error).__name__,
                    message=str(error),
                    phase=phase,
                )
            raise
        except Exception as error:  # noqa: BLE001 — the containment boundary
            snapshot = _solver_snapshot(solver)
            # The formatted remote traceback rides along in the snapshot
            # (never in the one-line message) so ``--json`` consumers can
            # see where a contained crash actually came from.
            snapshot["traceback"] = _traceback.format_exc()
            internal = InternalError(error, phase, snapshot)
            if tracing:
                self.tracer.inc("infer.errors")
                self.tracer.event(
                    "infer.error",
                    error_class="InternalError",
                    message=str(internal),
                    phase=phase,
                )
            raise internal from error

    def check(self, term: Term, type_: Type) -> InferenceResult:
        """Check a term against a signature (``f :: σ; f = e`` becomes the
        problem ``(e :: σ)``, Section 3.4)."""
        return self.infer(Ann(term, type_))

    def accepts(self, term: Term) -> bool:
        """Whether the term is typeable (no exception)."""
        try:
            self.infer(term)
            return True
        except GIError:
            return False

    # ------------------------------------------------------------------

    def _ground_evidence(self, evidence: EvidenceStore, solver: Solver) -> None:
        """Bind unification variables that survive solving only inside the
        elaboration evidence (e.g. the type of an unused let binding) to
        fresh rigid variables, so elaborated terms contain no unification
        variables."""
        avoid = set(self.env.free_type_vars())
        supply = letters()
        for type_ in _evidence_types(evidence):
            for variable in fuv(solver.unifier.zonk(type_)):
                for candidate in supply:
                    name = f"{candidate}0"
                    if name not in avoid:
                        avoid.add(name)
                        solver.unifier.assign(variable, TVar(name))
                        break

    def _generalize(
        self, zonked: Type, residual_preds: list[ClassC], solver: Solver
    ) -> tuple[Type, tuple[Pred, ...], tuple[str, ...]]:
        """Quantify the residual unification variables of the type.

        Variables are bound through the solver substitution so recorded
        evidence zonks to the same quantified names.
        """
        avoid = ftv(zonked) | set(self.env.free_type_vars())
        supply = letters()

        def next_name() -> str:
            for candidate in supply:
                if candidate not in avoid:
                    avoid.add(candidate)
                    return candidate
            raise RuntimeError("unreachable")

        free = fuv(zonked)
        for predicate in residual_preds:
            for argument in predicate.args:
                for variable in fuv(argument):
                    if variable not in free:
                        # A constraint on a variable the type never
                        # mentions can never be discharged by any caller
                        # (Haskell's ambiguity check).
                        raise AnnotationNeededError(
                            f"the constraint `{predicate}` is ambiguous — it "
                            f"mentions a type variable that does not occur in "
                            f"the inferred type `{zonked}`; bind the "
                            f"expression with a type annotation"
                        )
        names: list[str] = []
        for variable in free:
            name = next_name()
            names.append(name)
            solver.unifier.assign(variable, TVar(name))
        body = solver.unifier.zonk(zonked)
        context = tuple(
            Pred(
                predicate.class_name,
                tuple(solver.unifier.zonk(argument) for argument in predicate.args),
            )
            for predicate in residual_preds
        )
        return forall(names, body, context), context, tuple(names)


def _solver_snapshot(solver: "Solver | None") -> dict:
    """A redacted view of solver state for :class:`InternalError` reports.

    Counts and depths only — no constraint contents, no types — so the
    snapshot is safe to log for untrusted input.
    """
    if solver is None:
        return {}
    return {
        "pending_constraints": len(solver.queue),
        "deferred_constraints": len(solver.deferred),
        "current_level": solver.current_level,
        "substitution_size": len(solver.unifier.subst),
        "solver_steps": solver.steps,
    }


def _evidence_types(evidence: EvidenceStore):
    """Every type stored anywhere in the evidence."""
    from repro.core.evidence import TypeArgs

    for trace in evidence.inst_traces.values():
        for event in trace:
            if isinstance(event, TypeArgs):
                yield from event.types
    for info in evidence.gen_infos.values():
        yield from info.star_type_args
        yield from info.release_type_args
    yield from evidence.lam_binders.values()
    yield from evidence.let_types.values()
    for info in evidence.case_infos.values():
        yield from info.tycon_args
        for fields in info.field_types:
            yield from fields


def infer(
    term: Term,
    env: Environment | None = None,
    instances: InstanceEnv | None = None,
    options: InferOptions | None = None,
) -> InferenceResult:
    """Convenience wrapper: infer the principal type of ``term``."""
    return Inferencer(env, instances, options).infer(term)
