"""The constraint solver (Figures 8, 10 and 14 of the paper).

The solver is a deterministic worklist engine over the constraint language
of :mod:`repro.core.constraints`:

* **equalities** go straight to the unifier (:mod:`repro.core.unify`);
* **instantiation constraints** ``σ ⩽s_ω σ̄;µ`` follow rules instϵ /
  inst→ / inst∀l, classifying quantified variables with ``▷`` and
  freshening them at the sorts the classification allows;
* **generalisation constraints** ``g ⪯ σ`` follow rules inst⨅l (release
  the captured constraints when the right-hand side has no top-level
  quantifier) and inst∀r (skolemise when it does);
* **quantification / implication constraints** open a nested scope one
  level deeper; floating with promotion and skolem-escape checking are
  performed eagerly by the level-aware unifier, which is equivalent to
  rule float of Figure 10;
* **class constraints** are discharged against the local givens and the
  instance environment (Appendix B).

Exactly as Section 4.3.2 prescribes, a constraint *waits* when progress
would require guessing: an instantiation whose left-hand side, or a
generalisation whose right-hand side, is an unbound unrestricted variable
is deferred and woken when that variable is substituted.  When the whole
constraint set reaches a fixpoint with deferred constraints remaining, the
blocking variables are *defaulted* to fully monomorphic fresh variables,
one at a time — impredicativity is never guessed (Theorem 3.2).

Deferred constraints are scheduled through a *variable-indexed wake-up
queue*: each parked constraint registers watches on the unification
variables that block it, and the unifier's ``on_bind`` hook re-queues it
the moment one of them is solved.  The old behaviour — re-scanning the
whole deferred list whenever any binding happened — is kept behind
``wake_queue=False`` as a reference implementation for the equivalence
property tests and the core benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.classify import Bit, classified_binders
from repro.core.constraints import ClassC, Constraint, Eq, Gen, Inst, Quant, Scheme
from repro.core.errors import (
    GIError,
    MissingInstanceError,
    StuckConstraintError,
)
from repro.core.evidence import EvidenceStore, TakeArg, TypeArgs
from repro.core.names import NameSupply
from repro.core.policy import DEFAULT_POLICY, InstantiationPolicy, deep_prenex
from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    Pred,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    fun,
    fuv,
    subst_tvars,
)
from repro.core.unify import Unifier

if TYPE_CHECKING:  # pragma: no cover — avoids a runtime import cycle
    from repro.observability.tracer import TracerLike
    from repro.robustness.budget import Budget
    from repro.robustness.faultinject import FaultPlan


@dataclass
class Scope:
    """One quantification level: skolems, local class givens, parent."""

    level: int
    parent: "Scope | None" = None
    class_givens: list[ClassC] = field(default_factory=list)
    eq_givens: dict[str, Type] = field(default_factory=dict)

    def child(self) -> "Scope":
        return Scope(self.level + 1, parent=self)

    def resolver(self, name: str) -> Type | None:
        """Rewrite a rigid variable using local given equalities."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.eq_givens:
                return scope.eq_givens[name]
            scope = scope.parent
        return None

    def all_class_givens(self) -> list[ClassC]:
        result: list[ClassC] = []
        scope: Scope | None = self
        while scope is not None:
            result.extend(scope.class_givens)
            scope = scope.parent
        return result


@dataclass
class _Deferred:
    """A parked constraint plus its scope and wake-up state.

    ``woken`` flips once when the entry is re-queued (a constraint may
    watch several variables; only the first binding re-queues it) and
    marks the entry dead in ``Solver.deferred``.
    """

    constraint: Constraint
    scope: Scope
    woken: bool = False


class Solver:
    """One solving run over a generated constraint set.

    ``budget`` bounds the worklist (one budget tick per processed
    constraint) and is shared with the unifier, which bounds its own
    recursion against it; ``faults`` is the deterministic fault-injection
    hook.  ``defaulting=False`` disables the Section 4.3.2 defaulting of
    blocked unrestricted variables, so an underdetermined program fails
    deterministically with :class:`StuckConstraintError` instead of being
    completed with guessed monomorphic types.  ``wake_queue=False``
    selects the legacy whole-list re-scan scheduler (same answers, more
    steps) kept for differential testing and benchmarking.
    """

    def __init__(
        self,
        supply: NameSupply,
        evidence: EvidenceStore | None = None,
        instances: "InstanceEnv | None" = None,
        budget: "Budget | None" = None,
        faults: "FaultPlan | None" = None,
        defaulting: bool = True,
        tracer: "TracerLike | None" = None,
        wake_queue: bool = True,
        intern=None,
        policy: InstantiationPolicy = DEFAULT_POLICY,
        arena: bool | None = None,
    ) -> None:
        from repro.core.arena_unify import make_unifier

        self.unifier = make_unifier(
            supply, budget=budget, faults=faults, tracer=tracer, intern=intern,
            arena=arena,
        )
        self.evidence = evidence or EvidenceStore()
        self.instances = instances or InstanceEnv()
        self.queue: deque[tuple[Constraint, Scope]] = deque()
        self.deferred: list[_Deferred] = []
        self.root = Scope(0)
        self.budget = budget
        self.faults = faults
        self.tracer = tracer
        self.defaulting = defaulting
        self.wake_queue = wake_queue
        self.policy = policy
        self._watches: dict[UVar, list[_Deferred]] = {}
        self.steps = 0
        """Constraints processed so far (the budget's fuel gauge)."""

        self.wakeups = 0
        """Deferred constraints re-queued by the variable wake-up hook."""

        self.current_level = 0
        """Scope depth of the constraint being processed (for snapshots)."""

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def solve(self, constraints: Iterable[Constraint]) -> list[tuple[ClassC, Scope]]:
        """Solve to fixpoint; returns residual class constraints (for the
        top level to quantify over).  Raises on any type error."""
        for constraint in constraints:
            self.queue.append((constraint, self.root))
        if self.wake_queue:
            self.unifier.on_bind = self._wake
        try:
            if self.wake_queue:
                # Bindings re-queue their watchers inside ``_drain``
                # itself, so a drained queue with live deferred entries
                # *is* the fixpoint — no progress mark, no re-scan.
                while True:
                    self._drain()
                    self._compact_deferred()
                    if not self.deferred:
                        break
                    if self.defaulting and self._default_one():
                        continue
                    break
            else:
                while True:
                    self._drain()
                    if not self.deferred:
                        break
                    mark = self.unifier.bindings
                    self._requeue_deferred()
                    self._drain()
                    if self.unifier.bindings != mark:
                        continue
                    if self.defaulting and self._default_one():
                        continue
                    break
        finally:
            self.unifier.on_bind = None
        live = [entry for entry in self.deferred if not entry.woken]
        residual_classes = [
            (entry.constraint, entry.scope)
            for entry in live
            if isinstance(entry.constraint, ClassC)
        ]
        if self.tracer is not None and self.tracer.enabled:
            for constraint, _ in residual_classes:
                self.tracer.event("solver.residual", constraint=str(constraint))
        hard = [
            entry.constraint
            for entry in live
            if not isinstance(entry.constraint, ClassC)
        ]
        if hard:
            rendered = [self._zonk_constraint_for_report(c) for c in hard]
            raise StuckConstraintError(rendered)
        return residual_classes

    def _drain(self) -> None:
        while self.queue:
            constraint, scope = self.queue.popleft()
            self.steps += 1
            self.current_level = scope.level
            if self.budget is not None:
                self.budget.check_solver_step(
                    self.steps, constraint, wakeups=self.wakeups
                )
            if self.faults is not None:
                self.faults.solver_step(self.steps, constraint)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.inc("solver.steps")
                self.tracer.event(
                    "solver.step",
                    step=self.steps,
                    level=scope.level,
                    kind=type(constraint).__name__,
                    constraint=str(constraint),
                )
            self._step(constraint, scope)

    def _requeue_deferred(self) -> None:
        pending = [entry for entry in self.deferred if not entry.woken]
        self.deferred = []
        self.queue.extend((entry.constraint, entry.scope) for entry in pending)

    def _compact_deferred(self) -> None:
        """Drop woken (dead) entries so the deferred list stays small."""
        if any(entry.woken for entry in self.deferred):
            self.deferred = [entry for entry in self.deferred if not entry.woken]

    def _wake(self, variable: UVar) -> None:
        """Unifier ``on_bind`` hook: re-queue the watchers of a variable
        that just got solved (bound or united into another variable)."""
        entries = self._watches.pop(variable, None)
        if entries is None:
            return
        tracing = self.tracer is not None and self.tracer.enabled
        for entry in entries:
            if entry.woken:
                continue
            entry.woken = True
            self.wakeups += 1
            if tracing:
                self.tracer.inc("solver.wakes")
                self.tracer.event(
                    "solver.wake",
                    var=str(variable),
                    constraint=str(entry.constraint),
                )
            self.queue.append((entry.constraint, entry.scope))

    def _watch_vars(self, constraint: Constraint) -> list[UVar]:
        """The unbound representatives whose solving could unblock the
        constraint (the variables named in its deferral reason)."""
        if isinstance(constraint, Inst):
            head = self.unifier.zonk_head(constraint.lhs)
            return [head] if isinstance(head, UVar) else []
        if isinstance(constraint, Gen):
            head = self.unifier.zonk_head(constraint.rhs)
            return [head] if isinstance(head, UVar) else []
        if isinstance(constraint, ClassC):
            watched: list[UVar] = []
            for argument in constraint.args:
                for variable in self.unifier.fuv_of(argument):
                    root = self.unifier.zonk_head(variable)
                    if isinstance(root, UVar) and root not in watched:
                        watched.append(root)
            return watched
        return []

    def _default_one(self) -> bool:
        """Default the blocker of the oldest deferred constraint.

        An unrestricted variable that nothing will ever constrain further
        is demoted to a *top-level monomorphic* variable: it will never be
        a quantified type (impredicativity is never guessed, Theorem 3.2)
        but may still carry annotated polymorphism under a constructor.
        One variable at a time, since releasing a generalisation scheme
        can unblock — or polymorphically determine — other blockers."""
        for entry in self.deferred:
            if entry.woken:
                continue
            blocker = self._blocking_var(entry.constraint)
            if blocker is None:
                continue
            demoted = self.unifier.fresh(Sort.T, blocker.level)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.inc("solver.defaults")
                self.tracer.event(
                    "solver.default", var=str(blocker), demoted_to=str(demoted)
                )
            # In wake mode the assignment fires the watch hook, which
            # re-queues exactly the constraints blocked on the variable.
            self.unifier.assign(blocker, demoted)
            if not self.wake_queue:
                self._requeue_deferred()
            return True
        return False

    def _blocking_var(self, constraint: Constraint) -> UVar | None:
        if isinstance(constraint, Inst):
            head = self.unifier.zonk_head(constraint.lhs)
            if isinstance(head, UVar) and head.sort is Sort.U:
                return head
        if isinstance(constraint, Gen):
            head = self.unifier.zonk_head(constraint.rhs)
            if isinstance(head, UVar) and head.sort is Sort.U:
                return head
        return None

    def _zonk_constraint_for_report(self, constraint: Constraint) -> Constraint:
        from repro.core.constraints import subst_constraint  # local to avoid cycle

        # Reporting only: zonk the visible types for a readable error.
        if isinstance(constraint, Eq):
            return Eq(self.unifier.zonk(constraint.left), self.unifier.zonk(constraint.right))
        if isinstance(constraint, Inst):
            return Inst(
                self.unifier.zonk(constraint.lhs),
                constraint.sort,
                constraint.bits,
                tuple(self.unifier.zonk(argument) for argument in constraint.args),
                self.unifier.zonk(constraint.result),
            )
        if isinstance(constraint, Gen):
            return Gen(
                Scheme(
                    constraint.scheme.captured,
                    constraint.scheme.constraints,
                    self.unifier.zonk(constraint.scheme.type_),
                ),
                self.unifier.zonk(constraint.rhs),
                constraint.star,
            )
        return constraint

    # ------------------------------------------------------------------
    # One solving step
    # ------------------------------------------------------------------

    def _step(self, constraint: Constraint, scope: Scope) -> None:
        if isinstance(constraint, Eq):
            self.unifier.unify(
                constraint.left, constraint.right, scope.level, scope.resolver
            )
        elif isinstance(constraint, Inst):
            self._step_inst(constraint, scope)
        elif isinstance(constraint, Gen):
            self._step_gen(constraint, scope)
        elif isinstance(constraint, Quant):
            self._step_quant(constraint, scope)
        elif isinstance(constraint, ClassC):
            self._step_class(constraint, scope)
        else:
            raise TypeError(f"unknown constraint: {constraint!r}")

    # -- instantiation constraints (instϵ, inst→, inst∀l) ---------------

    def _step_inst(self, constraint: Inst, scope: Scope) -> None:
        tracing = self.tracer is not None and self.tracer.enabled
        lhs = self.unifier.zonk(constraint.lhs)
        if self.policy.deep and not isinstance(lhs, UVar):
            # Deep instantiation: hoist quantifiers buried to the right
            # of arrows before deciding which rule fires, so e.g.
            # ``Int -> ∀a. a -> a`` instantiates like ``∀a. Int -> a -> a``
            # (GHC ≤ 8.10's ``deeplyInstantiate``).
            lhs = deep_prenex(lhs, intern=self.unifier._intern)
        if isinstance(lhs, Forall):
            self._inst_forall_left(lhs, constraint, scope)
            return
        if not constraint.bits:
            # Rule instϵ: with no arguments left the types must be equal —
            # unless the left-hand side is an unbound unrestricted
            # variable, which might still be unified with a polytype
            # needing instantiation (Section 4.3.2, case 1).
            if isinstance(lhs, UVar) and lhs.sort is Sort.U:
                self._defer(
                    constraint,
                    scope,
                    "instantiation head is an unbound unrestricted variable — "
                    "it may still be unified with a polytype",
                )
                return
            if tracing:
                self.tracer.event("solver.rule", rule="instϵ", constraint=str(constraint))
            self.unifier.unify(lhs, constraint.result, scope.level, scope.resolver)
            return
        # Rule inst→: the head must be a function type taking the first
        # expected argument.  An unbound unrestricted head might become a
        # quantified type later, so it waits.
        if isinstance(lhs, UVar) and lhs.sort is Sort.U:
            self._defer(
                constraint,
                scope,
                "instantiation head is an unbound unrestricted variable — "
                "it may still become a quantified type",
            )
            return
        if tracing:
            self.tracer.event("solver.rule", rule="inst→", constraint=str(constraint))
        rest = self.unifier.fresh(Sort.U, scope.level)
        self.unifier.unify(
            lhs, fun(constraint.args[0], rest), scope.level, scope.resolver
        )
        self._record_inst_event(constraint, TakeArg())
        self.queue.append(
            (
                Inst(
                    rest,
                    constraint.sort,
                    constraint.bits[1:],
                    constraint.args[1:],
                    constraint.result,
                    constraint.evidence,
                ),
                scope,
            )
        )

    def _inst_forall_left(self, lhs: Forall, constraint: Inst, scope: Scope) -> None:
        """Rule inst∀l: freshen the binders at the sorts the guardedness
        classification ``▷s_ω`` permits (function freshen of Figure 8)."""
        assignment = classified_binders(
            lhs, constraint.sort, constraint.bits, tracer=self.tracer
        )
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "solver.rule",
                rule="inst∀l",
                constraint=str(constraint),
                sorts={
                    binder: assignment.get(binder, Sort.M).symbol
                    for binder in lhs.binders
                },
                bits="".join(str(bit) for bit in constraint.bits),
            )
        mapping: dict[str, Type] = {}
        fresh_vars: list[Type] = []
        for binder in lhs.binders:
            variable = self.unifier.fresh(assignment.get(binder, Sort.M), scope.level)
            mapping[binder] = variable
            fresh_vars.append(variable)
        self._record_inst_event(constraint, TypeArgs(fresh_vars))
        for predicate in lhs.context:
            self.queue.append(
                (
                    ClassC(
                        predicate.class_name,
                        tuple(subst_tvars(mapping, a) for a in predicate.args),
                    ),
                    scope,
                )
            )
        body = subst_tvars(mapping, lhs.body)
        self.queue.append(
            (
                Inst(
                    body,
                    constraint.sort,
                    constraint.bits,
                    constraint.args,
                    constraint.result,
                    constraint.evidence,
                ),
                scope,
            )
        )

    def _record_inst_event(self, constraint: Inst, event) -> None:
        evidence = constraint.evidence
        if evidence is None:
            return
        if isinstance(evidence, tuple) and evidence and evidence[0] == "release":
            if isinstance(event, TypeArgs):
                info = self.evidence.gen_info(evidence[1:])
                info.release_type_args.extend(event.types)
            return
        self.evidence.inst_trace(evidence).append(event)

    # -- generalisation constraints (inst⨅l, inst∀r) ---------------------

    def _step_gen(self, constraint: Gen, scope: Scope) -> None:
        rhs = self.unifier.zonk(constraint.rhs)
        if self.policy.deep and not isinstance(rhs, UVar):
            # Deep skolemisation: prenex the target before the Forall
            # check so nested quantifiers are skolemised too (GHC ≤
            # 8.10's ``deeplySkolemise``).
            rhs = deep_prenex(rhs, intern=self.unifier._intern)
        if isinstance(rhs, UVar) and rhs.sort is Sort.U:
            # The right-hand side might yet become polymorphic, in which
            # case we must skolemise (Section 4.3.2, case 2) — wait.
            self._defer(
                constraint,
                scope,
                "generalisation target is an unbound unrestricted variable — "
                "it may still become polymorphic, requiring skolemisation",
            )
            return
        if isinstance(rhs, Forall):
            # Rule inst∀r: skolemise and push the scheme under the binder.
            inner = scope.child()
            skolems = [
                self.unifier.fresh_skolem(binder, inner.level)
                for binder in rhs.binders
            ]
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.event(
                    "solver.rule",
                    rule="inst∀r",
                    constraint=str(constraint),
                    skolems=list(skolems),
                    level=inner.level,
                )
            renaming = {
                binder: TVar(skolem)
                for binder, skolem in zip(rhs.binders, skolems)
            }
            for predicate in rhs.context:
                inner.class_givens.append(
                    ClassC(
                        predicate.class_name,
                        tuple(subst_tvars(renaming, a) for a in predicate.args),
                    )
                )
            if constraint.evidence is not None:
                self.evidence.gen_info(constraint.evidence).skolems.extend(skolems)
            body = subst_tvars(renaming, rhs.body)
            self.queue.append(
                (
                    Gen(constraint.scheme, body, constraint.star, constraint.evidence),
                    inner,
                )
            )
            return
        # Rule inst⨅l: release.  Refresh the captured variables into the
        # current scope, queue the captured constraints, and require the
        # scheme type to instantiate (fully monomorphically) to the rhs.
        scheme = constraint.scheme
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "solver.rule",
                rule="inst⨅l",
                constraint=str(constraint),
                captured=len(scheme.captured),
            )
        for captured in scheme.captured:
            current = self.unifier.zonk_head(captured)
            if isinstance(current, UVar):
                refreshed = self.unifier.fresh(current.sort, scope.level)
                self.unifier.assign(current, refreshed)
        for inner_constraint in scheme.constraints:
            self.queue.append((inner_constraint, scope))
        evidence = None
        if constraint.evidence is not None:
            evidence = ("release",) + tuple(constraint.evidence)
        self.queue.append(
            (
                Inst(scheme.type_, Sort.M, (), (), rhs, evidence),
                scope,
            )
        )

    # -- quantification / implication constraints ------------------------

    def _step_quant(self, constraint: Quant, scope: Scope) -> None:
        inner = scope.child()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "solver.rule",
                rule="quant",
                level=inner.level,
                skolems=list(constraint.skolems),
                wanteds=len(constraint.wanteds),
            )
        for skolem in constraint.skolems:
            # Names were freshened at generation time; register depth.
            self.unifier.skolem_levels[skolem] = inner.level
        for existential in constraint.existentials:
            current = self.unifier.zonk_head(existential)
            if isinstance(current, UVar) and current.level < inner.level:
                refreshed = self.unifier.fresh(current.sort, inner.level)
                self.unifier.assign(current, refreshed)
        for given in constraint.givens:
            if isinstance(given, ClassC):
                inner.class_givens.append(given)
            elif isinstance(given, Eq):
                self._add_eq_given(inner, given)
            else:
                raise GIError(f"unsupported given constraint: {given}")
        for wanted in constraint.wanteds:
            self.queue.append((wanted, inner))

    def _add_eq_given(self, scope: Scope, given: Eq) -> None:
        """Record a local equality assumption (GADT branch refinement)."""
        left, right = given.left, given.right
        if isinstance(left, TVar):
            scope.eq_givens[left.name] = right
        elif isinstance(right, TVar):
            scope.eq_givens[right.name] = left
        else:
            # Decompose structural givens as far as possible.
            if (
                isinstance(left, TCon)
                and isinstance(right, TCon)
                and left.name == right.name
                and len(left.args) == len(right.args)
            ):
                for left_argument, right_argument in zip(left.args, right.args):
                    self._add_eq_given(scope, Eq(left_argument, right_argument))

    # -- class constraints (Appendix B) -----------------------------------

    def _step_class(self, constraint: ClassC, scope: Scope) -> None:
        tracing = self.tracer is not None and self.tracer.enabled
        arguments = tuple(self.unifier.zonk(argument) for argument in constraint.args)
        current = ClassC(constraint.class_name, arguments)
        # Rule dupl: discharge against an identical given.
        for given in scope.all_class_givens():
            given_args = tuple(self.unifier.zonk(argument) for argument in given.args)
            if given.class_name == current.class_name and all(
                alpha_equal(a, b) for a, b in zip(given_args, arguments)
            ):
                if tracing:
                    self.tracer.event(
                        "solver.rule", rule="dupl", class_constraint=str(current)
                    )
                return
        matched = self.instances.match(current)
        if matched is not None:
            if tracing:
                self.tracer.event(
                    "solver.rule",
                    rule="instance",
                    class_constraint=str(current),
                    subgoals=len(matched),
                )
            for subgoal in matched:
                self.queue.append((subgoal, scope))
            return
        if any(fuv(argument) for argument in arguments):
            # Not yet determined; try again later (or report as residual).
            self._defer(
                current,
                scope,
                "class constraint mentions undetermined unification variables",
            )
            return
        raise MissingInstanceError(current)

    # ------------------------------------------------------------------

    def _defer(self, constraint: Constraint, scope: Scope, reason: str) -> None:
        """Park a constraint that would require guessing (Section 4.3.2)."""
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.inc("solver.deferrals")
            self.tracer.event("solver.defer", constraint=str(constraint), reason=reason)
        entry = _Deferred(constraint, scope)
        self.deferred.append(entry)
        if self.wake_queue:
            for variable in self._watch_vars(constraint):
                self._watches.setdefault(variable, []).append(entry)


class InstanceEnv:
    """A table of class instances ``∀ā. Q ⇒ D (T ā)`` (Appendix B).

    Instance heads are matched one-way (the wanted constraint must be an
    instance of the head); on success the instantiated context is returned
    as new wanted constraints.
    """

    def __init__(self) -> None:
        self._instances: list[tuple[ClassC, tuple[ClassC, ...], tuple[str, ...]]] = []
        self._classes: dict[str, int] = {}

    def declare_class(self, name: str, arity: int = 1) -> None:
        self._classes[name] = arity

    def add_instance(
        self,
        head: ClassC,
        context: tuple[ClassC, ...] = (),
        variables: tuple[str, ...] = (),
    ) -> None:
        """Register ``instance context => head`` with quantified variables."""
        self._instances.append((head, context, variables))

    def match(self, wanted: ClassC) -> list[ClassC] | None:
        for head, context, variables in self._instances:
            if head.class_name != wanted.class_name:
                continue
            if len(head.args) != len(wanted.args):
                continue
            mapping: dict[str, Type] = {}
            if all(
                _match_type(pattern, target, set(variables), mapping)
                for pattern, target in zip(head.args, wanted.args)
            ):
                return [
                    ClassC(
                        subgoal.class_name,
                        tuple(subst_tvars(mapping, a) for a in subgoal.args),
                    )
                    for subgoal in context
                ]
        return None


def _match_type(pattern: Type, target: Type, variables: set[str], mapping: dict[str, Type]) -> bool:
    """One-way matching of an instance-head pattern against a type."""
    if isinstance(pattern, TVar) and pattern.name in variables:
        bound = mapping.get(pattern.name)
        if bound is None:
            mapping[pattern.name] = target
            return True
        return alpha_equal(bound, target)
    if isinstance(pattern, TVar) and isinstance(target, TVar):
        return pattern.name == target.name
    if isinstance(pattern, TCon) and isinstance(target, TCon):
        if pattern.name != target.name or len(pattern.args) != len(target.args):
            return False
        return all(
            _match_type(p, t, variables, mapping)
            for p, t in zip(pattern.args, target.args)
        )
    if isinstance(pattern, Forall) and isinstance(target, Forall):
        return alpha_equal(pattern, target)
    return False
