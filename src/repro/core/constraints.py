"""The constraint language of the inference algorithm (Figures 6 and 13).

Constraints::

    C ::= ⊤                              (represented as the empty list)
        | C1 ∧ C2                        (lists of constraints)
        | σ ~ ϕ                          equality            (:class:`Eq`)
        | σ ⩽s_ω σ̄ ; µ                   instantiation       (:class:`Inst`)
        | g ⪯ σ                          generalisation      (:class:`Gen`)
        | ∀ā. ∃ῡ. (Q ⊃ C)                quantification /
                                          implication         (:class:`Quant`)
        | D σ1 ... σn                     type class          (:class:`ClassC`)

A *generalisation scheme* ``g = ⨅{ῡ}. C ⇒ σ`` packages the constraints of
an argument whose generalisation decision must be deferred to the solver
(Section 4.1).  Rule VarGen produces a degenerate scheme with no captured
constraints whose type mentions fresh unrestricted variables.

Every :class:`Inst` and :class:`Gen` carries an optional *evidence id*
linking it to the term node it came from, so the solver can record the
instantiations and skolemisations needed to elaborate into System F.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.classify import Bit
from repro.core.sorts import Sort
from repro.core.types import Type, UVar, fuv, subst_uvars


@dataclass(frozen=True)
class Constraint:
    """Base class of all constraint forms."""


@dataclass(frozen=True)
class Eq(Constraint):
    """An equality constraint ``left ~ right``."""

    left: Type
    right: Type

    def __str__(self) -> str:
        return f"{self.left} ~ {self.right}"


@dataclass(frozen=True)
class Inst(Constraint):
    """An instantiation constraint ``lhs ⩽s_ω args ; result``.

    ``lhs`` is the (function) type being instantiated, ``bits`` the vector
    ``ω``, ``args`` the expected argument types (one per bit) and
    ``result`` the type the remainder must take.  ``sort`` is the parameter
    ``s``: ``M`` for ordinary applications, ``U`` for annotated ones.
    """

    lhs: Type
    sort: Sort
    bits: tuple[Bit, ...]
    args: tuple[Type, ...]
    result: Type
    evidence: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.bits) != len(self.args):
            raise ValueError("one ω bit per argument type")

    def __str__(self) -> str:
        omega = ",".join(str(bit) for bit in self.bits)
        arguments = ", ".join(str(argument) for argument in self.args)
        return f"{self.lhs} <={self.sort.symbol}[{omega}] {arguments} ; {self.result}"


@dataclass(frozen=True)
class Scheme:
    """A type with generalisation ``⨅{ῡ}. C ⇒ σ`` (Figure 6)."""

    captured: tuple[UVar, ...]
    constraints: tuple[Constraint, ...]
    type_: Type

    def __str__(self) -> str:
        variables = " ".join(str(variable) for variable in self.captured)
        inner = " /\\ ".join(str(constraint) for constraint in self.constraints) or "T"
        return f"(gen {{{variables}}}. {inner} => {self.type_})"


@dataclass(frozen=True)
class Gen(Constraint):
    """A generalisation constraint ``scheme ⪯ rhs``.

    ``star`` is ``True`` for constraints produced by rule VarGen (bare
    variable arguments with closed rank-1 types), ``False`` for rule
    ArgGen.  The distinction only matters for evidence recording — the
    solver treats both uniformly via rules inst⨅l / inst∀r.
    """

    scheme: Scheme
    rhs: Type
    star: bool = False
    evidence: int | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.scheme} <~ {self.rhs}"


@dataclass(frozen=True)
class ClassC(Constraint):
    """A type-class constraint ``D σ1 ... σn`` (Appendix B)."""

    class_name: str
    args: tuple[Type, ...]

    def __str__(self) -> str:
        rendered = " ".join(f"({argument})" for argument in self.args)
        return f"{self.class_name} {rendered}"


@dataclass(frozen=True)
class Quant(Constraint):
    """A quantification / implication constraint ``∀ā. ∃ῡ. (Q ⊃ C)``.

    ``skolems`` are the rigid variables bound by the constraint,
    ``existentials`` the unification variables local to it, ``givens`` the
    assumed simple constraints (type classes and equalities, Appendix B)
    and ``wanteds`` the constraints to solve under those assumptions.
    """

    skolems: tuple[str, ...]
    existentials: tuple[UVar, ...]
    givens: tuple[Constraint, ...]
    wanteds: tuple[Constraint, ...]
    evidence: int | None = field(default=None, compare=False)

    def __str__(self) -> str:
        quantified = " ".join(self.skolems)
        local = " ".join(str(variable) for variable in self.existentials)
        inner = " /\\ ".join(str(w) for w in self.wanteds) or "T"
        given = " /\\ ".join(str(g) for g in self.givens)
        implication = f"{given} => {inner}" if given else inner
        return f"(forall {quantified}. exists {{{local}}}. {implication})"


def constraint_fuv(constraint: Constraint) -> set[UVar]:
    """Free unification variables of a constraint."""
    result: set[UVar] = set()
    _collect(constraint, result)
    return result


def constraints_fuv(constraints: Iterable[Constraint]) -> set[UVar]:
    """Free unification variables of a collection of constraints."""
    result: set[UVar] = set()
    for constraint in constraints:
        _collect(constraint, result)
    return result


def _collect(constraint: Constraint, out: set[UVar]) -> None:
    if isinstance(constraint, Eq):
        out.update(fuv(constraint.left))
        out.update(fuv(constraint.right))
    elif isinstance(constraint, Inst):
        out.update(fuv(constraint.lhs))
        for argument in constraint.args:
            out.update(fuv(argument))
        out.update(fuv(constraint.result))
    elif isinstance(constraint, Gen):
        out.update(fuv(constraint.scheme.type_))
        out.update(fuv(constraint.rhs))
        out |= set(constraint.scheme.captured)
        for inner in constraint.scheme.constraints:
            _collect(inner, out)
    elif isinstance(constraint, ClassC):
        for argument in constraint.args:
            out.update(fuv(argument))
    elif isinstance(constraint, Quant):
        out |= set(constraint.existentials)
        for given in constraint.givens:
            _collect(given, out)
        for wanted in constraint.wanteds:
            _collect(wanted, out)
    else:
        raise TypeError(f"unknown constraint: {constraint!r}")


def subst_constraint(mapping: dict[UVar, Type], constraint: Constraint) -> Constraint:
    """Apply a unification-variable substitution throughout a constraint.

    Captured scheme variables and quantifier existentials that are
    themselves substituted *by a variable* are renamed; this is how the
    solver refreshes a scheme's captured variables into an inner scope.
    """
    if not mapping:
        return constraint
    if isinstance(constraint, Eq):
        return Eq(subst_uvars(mapping, constraint.left), subst_uvars(mapping, constraint.right))
    if isinstance(constraint, Inst):
        return Inst(
            subst_uvars(mapping, constraint.lhs),
            constraint.sort,
            constraint.bits,
            tuple(subst_uvars(mapping, argument) for argument in constraint.args),
            subst_uvars(mapping, constraint.result),
            constraint.evidence,
        )
    if isinstance(constraint, Gen):
        scheme = constraint.scheme
        new_captured = tuple(_rename_var(mapping, variable) for variable in scheme.captured)
        new_scheme = Scheme(
            new_captured,
            tuple(subst_constraint(mapping, inner) for inner in scheme.constraints),
            subst_uvars(mapping, scheme.type_),
        )
        return Gen(new_scheme, subst_uvars(mapping, constraint.rhs), constraint.star, constraint.evidence)
    if isinstance(constraint, ClassC):
        return ClassC(constraint.class_name, tuple(subst_uvars(mapping, argument) for argument in constraint.args))
    if isinstance(constraint, Quant):
        return Quant(
            constraint.skolems,
            tuple(_rename_var(mapping, variable) for variable in constraint.existentials),
            tuple(subst_constraint(mapping, given) for given in constraint.givens),
            tuple(subst_constraint(mapping, wanted) for wanted in constraint.wanteds),
            constraint.evidence,
        )
    raise TypeError(f"unknown constraint: {constraint!r}")


def _rename_var(mapping: dict[UVar, Type], variable: UVar) -> UVar:
    image = mapping.get(variable)
    if image is None:
        return variable
    if isinstance(image, UVar):
        return image
    raise ValueError(
        f"cannot substitute bound unification variable {variable} by non-variable {image}"
    )


def iter_constraints(constraints: Sequence[Constraint]) -> Iterator[Constraint]:
    """Flat iteration (conjunction is represented by sequencing)."""
    return iter(constraints)
