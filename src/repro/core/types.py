"""Type syntax of GI (Figures 3 and 6 of the paper).

The grammar, stratified by sorts::

    fully monomorphic   τ ::= a | αᵐ | T τ̄
    top-level mono      µ ::= a | αᵐ | αᵗ | T σ̄
    polymorphic         σ ::= αᵘ | ∀ā. µ        (ā possibly empty)

We represent all three layers with one AST and check membership with
:func:`respects`.  The function arrow is an ordinary binary constructor
``->`` (all constructors in GI are invariant, including functions), lists
are the unary constructor ``[]``, and tuples are ``(,)``/``(,,)``.

Unification variables (:class:`UVar`) carry a *sort* restricting what they
may stand for, and a *level* used by the solver to implement floating with
promotion (rule float of Figure 10) and skolem-escape checking.  Skolem
(rigid) variables are :class:`TVar`; bound occurrences inside a
:class:`Forall` use the same constructor.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.core.names import letters
from repro.core.sorts import Sort

ARROW = "->"
LIST_CON = "[]"
TOP_LEVEL = 0

_T = TypeVar("_T")


class OrderedSet(AbstractSet, Generic[_T]):
    """A set that iterates in insertion order.

    Free-variable collectors return these so that any code iterating the
    result (promotion, demotion, generalisation) behaves identically in
    every process, independent of ``PYTHONHASHSEED``.  The ``Set`` mixin
    supplies comparisons and the boolean operators, all interoperable
    with built-in sets (``ftv(t) == {"a"}``, ``{"a"} | ftv(t)``), and
    ``_from_iterable`` keeps derived sets insertion-ordered too.
    """

    __slots__ = ("_items",)

    def __init__(self, iterable: Iterable[_T] = ()) -> None:
        self._items: dict[_T, None] = dict.fromkeys(iterable)

    @classmethod
    def _from_iterable(cls, iterable: Iterable[_T]) -> "OrderedSet[_T]":
        return cls(iterable)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[_T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: _T) -> None:
        self._items[item] = None

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"OrderedSet({list(self._items)!r})"


@dataclass(frozen=True, eq=False)
class Type:
    """Base class of all type forms.

    Equality and hashing are structural but *iterative* (a recursive
    ``__eq__`` would overflow the interpreter stack on deep types long
    before any budget check fires), and hashes are cached on the node, so
    repeated hashing of a shared subtree is O(1).
    """

    def __str__(self) -> str:
        return render_type(self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if self.__class__ is not other.__class__:
            return NotImplemented
        return _types_equal(self, other)  # type: ignore[arg-type]

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is not None:
            return cached
        return _hash_type(self)


@dataclass(frozen=True, eq=False)
class TVar(Type):
    """A skolem / rigid type variable, or a ``Forall``-bound occurrence."""

    name: str

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not TVar:
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(("TVar", self.name))
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass(frozen=True, eq=False)
class UVar(Type):
    """A unification variable ``α^s`` with its sort and scope level.

    The sort is part of the variable's identity: the solver never mutates a
    variable's sort in place, it binds the variable to a fresh one of the
    required sort (rule eqvar).  The level records the quantification depth
    at which the variable was created; binding an outer variable to a type
    mentioning deeper variables triggers promotion.
    """

    name: str
    sort: Sort = Sort.U
    level: int = TOP_LEVEL

    def __str__(self) -> str:
        return f"{self.name}^{self.sort.symbol}"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not UVar:
            return NotImplemented
        return (
            self.name == other.name
            and self.sort is other.sort
            and self.level == other.level
        )

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(("UVar", self.name, self.sort, self.level))
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass(frozen=True, eq=False)
class TCon(Type):
    """A saturated type-constructor application ``T σ1 ... σn``."""

    name: str
    args: tuple[Type, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True, eq=False)
class Forall(Type):
    """A polymorphic type ``∀ a1 ... an. Q ⇒ µ`` (Figure 3 / Figure 13).

    ``context`` is the (possibly empty) list of simple class constraints
    ``Q`` of the Appendix B extension; each element is a pair
    ``(class_name, argument_types)``.  Invariants (enforced by the
    :func:`forall` smart constructor): every binder occurs free in the body
    or the context, and the body has no top-level ``Forall``.  A
    quantifier-free qualified type ``Q ⇒ µ`` is represented with an empty
    binder tuple.
    """

    binders: tuple[str, ...]
    body: Type
    context: tuple["Pred", ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.binders, tuple):
            object.__setattr__(self, "binders", tuple(self.binders))
        if not isinstance(self.context, tuple):
            object.__setattr__(self, "context", tuple(self.context))


@dataclass(frozen=True)
class Pred:
    """A class predicate ``D σ1 ... σn`` appearing in a type context."""

    class_name: str
    args: tuple[Type, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        rendered = " ".join(render_type(argument, 3) for argument in self.args)
        return f"{self.class_name} {rendered}"


def _composite_children(node: Type) -> Iterator[Type]:
    """Direct sub-*types* of a composite node (context args before body)."""
    if isinstance(node, TCon):
        yield from node.args
    elif isinstance(node, Forall):
        for predicate in node.context:
            yield from predicate.args
        yield node.body


def _hash_type(root: Type) -> int:
    """Compute (and cache) the structural hash of ``root`` iteratively."""
    stack = [root]
    while stack:
        node = stack[-1]
        if "_hash" in node.__dict__ or not isinstance(node, (TCon, Forall)):
            stack.pop()
            continue
        pending = [
            child
            for child in _composite_children(node)
            if isinstance(child, (TCon, Forall)) and "_hash" not in child.__dict__
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if isinstance(node, TCon):
            value = hash(("TCon", node.name, tuple(map(hash, node.args))))
        else:
            context_key = tuple(
                (predicate.class_name, tuple(map(hash, predicate.args)))
                for predicate in node.context
            )
            value = hash(("Forall", node.binders, context_key, hash(node.body)))
        object.__setattr__(node, "_hash", value)
    cached = root.__dict__.get("_hash")
    return cached if cached is not None else hash(root)


def _types_equal(left: Type, right: Type) -> bool:
    """Structural equality without recursion (same classes assumed at the
    root; checked per node below)."""
    stack = [(left, right)]
    while stack:
        l, r = stack.pop()
        if l is r:
            continue
        if l.__class__ is not r.__class__:
            return False
        left_hash = l.__dict__.get("_hash")
        if left_hash is not None:
            right_hash = r.__dict__.get("_hash")
            if right_hash is not None and left_hash != right_hash:
                return False
        if isinstance(l, TVar):
            if l.name != r.name:
                return False
        elif isinstance(l, UVar):
            if l.name != r.name or l.sort is not r.sort or l.level != r.level:
                return False
        elif isinstance(l, TCon):
            if l.name != r.name or len(l.args) != len(r.args):
                return False
            stack.extend(zip(l.args, r.args))
        elif isinstance(l, Forall):
            if l.binders != r.binders or len(l.context) != len(r.context):
                return False
            for lp, rp in zip(l.context, r.context):
                if lp.class_name != rp.class_name or len(lp.args) != len(rp.args):
                    return False
                stack.extend(zip(lp.args, rp.args))
            stack.append((l.body, r.body))
        else:
            return False
    return True


class InternTable:
    """Hash-consing table: structurally equal types share one node.

    The unifier interns the types it rebuilds while zonking, so repeated
    zonks of the same variable return the *identical* object and the
    per-unifier free-variable caches hit on identity instead of paying a
    structural comparison.

    A table may be *shared* across many inference runs (the serve daemon
    hands one table to every session so common prelude types are stored
    once per process).  Sharing is safe under concurrent interning: a
    lost race stores a structurally equal duplicate, which only costs a
    cache miss, never a wrong answer.  ``capacity`` bounds a long-lived
    shared table — once full, :meth:`intern` stops storing new nodes and
    simply returns its argument, so a daemon's memory cannot grow without
    bound with request traffic.

    That degradation is silent from the caller's perspective — the
    un-interned object is structurally correct, it just stops hitting
    identity-keyed caches — so the table counts it: ``full_events``
    (``intern`` calls that hit the bound), plus ``hits``/``misses`` so a
    daemon's cache hit rate stays observable after capacity is reached.
    Attach a tracer (:meth:`attach_tracer`) to also emit each full event
    as a ``types.intern.full`` counter.
    """

    __slots__ = ("_table", "capacity", "hits", "misses", "full_events", "tracer")

    def __init__(self, capacity: int | None = None) -> None:
        self._table: dict[Type, Type] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.full_events = 0
        self.tracer = None

    def attach_tracer(self, tracer) -> None:
        """Emit ``types.intern.full`` on the tracer when the bound is hit."""
        self.tracer = tracer

    def intern(self, type_: Type) -> Type:
        cached = self._table.get(type_)
        if cached is not None:
            self.hits += 1
            return cached
        if self.capacity is not None and len(self._table) >= self.capacity:
            self.full_events += 1
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.inc("types.intern.full")
            return type_
        self.misses += 1
        self._table[type_] = type_
        return type_

    def stats(self) -> dict[str, int]:
        """Observable counters for daemon ``stats`` surfaces."""
        return {
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "full_events": self.full_events,
        }

    def clear(self) -> None:
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)


def forall(
    binders: Sequence[str], body: Type, context: Sequence["Pred"] = ()
) -> Type:
    """Build ``∀ binders. context ⇒ body``, normalising to the grammar.

    Collapses nested quantifiers (merging contexts), drops binders that
    occur neither in the body nor in the context, and returns the body
    unchanged when no binder and no context survive.
    """
    context = tuple(context)
    if isinstance(body, Forall):
        binders = tuple(binders) + body.binders
        context = context + body.context
        body = body.body
    free = ftv(body)
    for predicate in context:
        for argument in predicate.args:
            free |= ftv(argument)
    kept = []
    seen: set[str] = set()
    for name in binders:
        if name in free and name not in seen:
            kept.append(name)
            seen.add(name)
    if not kept and not context:
        return body
    return Forall(tuple(kept), body, context)


def fun(*types: Type) -> Type:
    """Right-nested function type ``t1 -> t2 -> ... -> tn``."""
    if not types:
        raise ValueError("fun() needs at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = TCon(ARROW, (argument, result))
    return result


def list_of(element: Type) -> Type:
    """The list type ``[element]``."""
    return TCon(LIST_CON, (element,))


def tuple_of(*elements: Type) -> Type:
    """The tuple type ``(e1, ..., en)``."""
    if len(elements) < 2:
        raise ValueError("tuples have at least two components")
    return TCon("(" + "," * (len(elements) - 1) + ")", tuple(elements))


INT = TCon("Int")
BOOL = TCon("Bool")
CHAR = TCon("Char")
STRING = TCon("String")
UNIT = TCon("()")


def is_arrow(type_: Type) -> bool:
    """Whether the type is a function type ``σ1 -> σ2``."""
    return isinstance(type_, TCon) and type_.name == ARROW and len(type_.args) == 2


def arrow_parts(type_: Type) -> tuple[Type, Type]:
    """Split ``σ1 -> σ2`` into ``(σ1, σ2)``; raises if not an arrow."""
    if not is_arrow(type_):
        raise ValueError(f"not a function type: {type_}")
    assert isinstance(type_, TCon)
    return type_.args[0], type_.args[1]


def split_arrows(type_: Type, limit: int | None = None) -> tuple[list[Type], Type]:
    """Split off up to ``limit`` argument types (all of them if ``None``)."""
    arguments: list[Type] = []
    while is_arrow(type_) and (limit is None or len(arguments) < limit):
        argument, type_ = arrow_parts(type_)
        arguments.append(argument)
    return arguments, type_


def strip_forall(type_: Type) -> tuple[tuple[str, ...], Type]:
    """Split a type into its top-level binders and its body."""
    if isinstance(type_, Forall):
        return type_.binders, type_.body
    return (), type_


def ftv(type_: Type) -> OrderedSet[str]:
    """Free (skolem) type variables, in first-occurrence pre-order.

    The insertion order makes every iteration over the result (skolem
    checks, generalisation) deterministic across processes regardless of
    the hash seed; membership and the set operators behave like a set.
    """
    result: OrderedSet[str] = OrderedSet()
    stack: list[tuple[Type, frozenset[str]]] = [(type_, frozenset())]
    while stack:
        node, bound = stack.pop()
        if isinstance(node, TVar):
            if node.name not in bound:
                result.add(node.name)
        elif isinstance(node, TCon):
            for argument in reversed(node.args):
                stack.append((argument, bound))
        elif isinstance(node, Forall):
            inner = bound | frozenset(node.binders) if node.binders else bound
            stack.append((node.body, inner))
            for predicate in reversed(node.context):
                for argument in reversed(predicate.args):
                    stack.append((argument, inner))
    return result


def fuv(type_: Type) -> OrderedSet[UVar]:
    """Free unification variables, in first-occurrence pre-order (all
    unification variables are free; binders only ever bind skolems)."""
    result: OrderedSet[UVar] = OrderedSet()
    stack: list[Type] = [type_]
    while stack:
        node = stack.pop()
        if isinstance(node, UVar):
            result.add(node)
        elif isinstance(node, TCon):
            for argument in reversed(node.args):
                stack.append(argument)
        elif isinstance(node, Forall):
            stack.append(node.body)
            for predicate in reversed(node.context):
                for argument in reversed(predicate.args):
                    stack.append(argument)
    return result


def subst_tvars(mapping: Mapping[str, Type], type_: Type) -> Type:
    """Capture-avoiding substitution of skolem variables ``[a ↦ σ]``."""
    if not mapping:
        return type_
    if isinstance(type_, TVar):
        return mapping.get(type_.name, type_)
    if isinstance(type_, UVar):
        return type_
    if isinstance(type_, TCon):
        return TCon(type_.name, tuple(subst_tvars(mapping, a) for a in type_.args))
    if isinstance(type_, Forall):
        relevant = {
            name: image
            for name, image in mapping.items()
            if name not in type_.binders
        }
        if not relevant:
            return type_
        image_ftvs: set[str] = set()
        for image in relevant.values():
            image_ftvs |= ftv(image)
        binders = list(type_.binders)
        body = type_.body
        clashing = [name for name in binders if name in image_ftvs]
        if clashing:
            avoid = image_ftvs | ftv(body) | set(binders)
            renaming: dict[str, Type] = {}
            for name in clashing:
                fresh_name = _fresh_tvar_name(name, avoid)
                avoid.add(fresh_name)
                renaming[name] = TVar(fresh_name)
                binders[binders.index(name)] = fresh_name
            body = subst_tvars(renaming, body)
        context = tuple(
            _subst_pred(renaming, predicate) for predicate in type_.context
        ) if clashing else type_.context
        return Forall(
            tuple(binders),
            subst_tvars(relevant, body),
            tuple(_subst_pred(relevant, predicate) for predicate in context),
        )
    raise TypeError(f"unknown type node: {type_!r}")


def _subst_pred(mapping: Mapping[str, Type], predicate: "Pred") -> "Pred":
    return Pred(
        predicate.class_name,
        tuple(subst_tvars(mapping, argument) for argument in predicate.args),
    )


def _fresh_tvar_name(base: str, avoid: set[str]) -> str:
    base = base.rstrip("0123456789")
    index = 1
    while f"{base}{index}" in avoid:
        index += 1
    return f"{base}{index}"


def _rebuild_uvars(function: Callable[[UVar], Type], type_: Type) -> Type:
    """Iterative post-order rebuild replacing every :class:`UVar` via
    ``function``; unchanged subtrees are returned identically (no fresh
    allocation), so a no-op substitution is cheap and preserves sharing."""
    results: list[Type] = []
    stack: list[tuple[Type, bool]] = [(type_, False)]
    while stack:
        node, ready = stack.pop()
        if not ready:
            if isinstance(node, UVar):
                results.append(function(node))
            elif isinstance(node, TVar):
                results.append(node)
            elif isinstance(node, TCon):
                stack.append((node, True))
                for argument in reversed(node.args):
                    stack.append((argument, False))
            elif isinstance(node, Forall):
                stack.append((node, True))
                stack.append((node.body, False))
                for predicate in reversed(node.context):
                    for argument in reversed(predicate.args):
                        stack.append((argument, False))
            else:
                raise TypeError(f"unknown type node: {node!r}")
        elif isinstance(node, TCon):
            count = len(node.args)
            if count:
                args = tuple(results[-count:])
                del results[-count:]
                if all(a is b for a, b in zip(args, node.args)):
                    results.append(node)
                else:
                    results.append(TCon(node.name, args))
            else:
                results.append(node)
        else:  # Forall
            body = results.pop()
            count = sum(len(predicate.args) for predicate in node.context)
            flat = results[-count:] if count else []
            if count:
                del results[-count:]
            changed = body is not node.body
            context: list[Pred] = []
            index = 0
            for predicate in node.context:
                width = len(predicate.args)
                new_args = tuple(flat[index : index + width])
                index += width
                if all(a is b for a, b in zip(new_args, predicate.args)):
                    context.append(predicate)
                else:
                    context.append(Pred(predicate.class_name, new_args))
                    changed = True
            if changed:
                results.append(Forall(node.binders, body, tuple(context)))
            else:
                results.append(node)
    return results[0]


def subst_uvars(mapping: Mapping[UVar, Type], type_: Type) -> Type:
    """Substitution of unification variables (zonking one step)."""
    if not mapping:
        return type_
    return _rebuild_uvars(lambda variable: mapping.get(variable, variable), type_)


def respects(type_: Type, sort: Sort) -> bool:
    """Whether a type respects a sort (Figure 4, top-left judgement).

    * every type respects ``U``;
    * a type respects ``T`` when it has no top-level quantifier and is not
      an unrestricted unification variable;
    * a type respects ``M`` when it contains no quantifier anywhere and all
      its unification variables have sort ``M``.
    """
    if sort is Sort.U:
        return True
    if sort is Sort.T:
        if isinstance(type_, Forall):
            return False
        if isinstance(type_, UVar):
            return type_.sort <= Sort.T
        return True
    # Sort.M: fully monomorphic.
    if isinstance(type_, Forall):
        return False
    if isinstance(type_, UVar):
        return type_.sort is Sort.M
    if isinstance(type_, TVar):
        return True
    if isinstance(type_, TCon):
        return all(respects(argument, Sort.M) for argument in type_.args)
    raise TypeError(f"unknown type node: {type_!r}")


def sort_of(type_: Type) -> Sort:
    """The most restrictive sort the type respects."""
    if respects(type_, Sort.M):
        return Sort.M
    if respects(type_, Sort.T):
        return Sort.T
    return Sort.U


def is_fully_monomorphic(type_: Type) -> bool:
    """``True`` when the type has no trace of polymorphism (sort ``m``)."""
    return respects(type_, Sort.M)


def is_rank1(type_: Type) -> bool:
    """Whether the type is rank-1: ``∀ p̄. τ`` with a fully monomorphic body.

    Rule VarGen (Figure 5) only applies to variables with closed rank-1
    types.
    """
    _, body = strip_forall(type_)
    return is_fully_monomorphic(body)


def alpha_equal(left: Type, right: Type) -> bool:
    """Alpha-equality of types (the equality used by rule eqrefl).

    Quantifier *order matters* in GI: ``∀a b. a -> b -> b`` is **not**
    alpha-equal to ``∀b a. a -> b -> b`` (Section 2.4 of the paper);
    alpha-equality only ignores the names of binders, not their order.
    """
    counter = 0
    # Explicit stack (no recursion): frames carry the binder environments
    # in scope at that node, extended by copy at each quantifier.
    stack: list[tuple[Type, Type, dict[str, int], dict[str, int]]] = [
        (left, right, {}, {})
    ]
    while stack:
        left, right, left_env, right_env = stack.pop()
        if isinstance(left, TVar) and isinstance(right, TVar):
            left_index = left_env.get(left.name)
            right_index = right_env.get(right.name)
            if left_index is None and right_index is None:
                if left.name != right.name:
                    return False
                continue
            if left_index is None or left_index != right_index:
                return False
            continue
        if isinstance(left, UVar) and isinstance(right, UVar):
            if left != right:
                return False
            continue
        if isinstance(left, TCon) and isinstance(right, TCon):
            if left.name != right.name or len(left.args) != len(right.args):
                return False
            for l, r in zip(reversed(left.args), reversed(right.args)):
                stack.append((l, r, left_env, right_env))
            continue
        if isinstance(left, Forall) and isinstance(right, Forall):
            if len(left.binders) != len(right.binders):
                return False
            if len(left.context) != len(right.context):
                return False
            left_env = dict(left_env)
            right_env = dict(right_env)
            for left_name, right_name in zip(left.binders, right.binders):
                counter += 1
                left_env[left_name] = counter
                right_env[right_name] = counter
            for left_pred, right_pred in zip(left.context, right.context):
                if left_pred.class_name != right_pred.class_name:
                    return False
                if len(left_pred.args) != len(right_pred.args):
                    return False
            stack.append((left.body, right.body, left_env, right_env))
            for left_pred, right_pred in zip(
                reversed(left.context), reversed(right.context)
            ):
                for l, r in zip(reversed(left_pred.args), reversed(right_pred.args)):
                    stack.append((l, r, left_env, right_env))
            continue
        return False
    return True


def rename_canonical(type_: Type) -> Type:
    """Rename all quantified variables to a canonical ``a, b, c, ...`` scheme.

    Useful for displaying principal types and for structural comparisons in
    tests.  Free variables are left untouched.
    """
    supply = letters()
    free = ftv(type_)
    used = set(free)

    def next_name() -> str:
        for candidate in supply:
            if candidate not in used:
                used.add(candidate)
                return candidate
        raise RuntimeError("unreachable")

    def go(node: Type, env: Mapping[str, Type]) -> Type:
        if isinstance(node, TVar):
            replaced = env.get(node.name)
            return replaced if replaced is not None else node
        if isinstance(node, UVar):
            return node
        if isinstance(node, TCon):
            return TCon(node.name, tuple(go(argument, env) for argument in node.args))
        if isinstance(node, Forall):
            new_env = dict(env)
            new_binders = []
            for binder in node.binders:
                fresh = next_name()
                new_binders.append(fresh)
                new_env[binder] = TVar(fresh)
            new_context = tuple(
                Pred(p.class_name, tuple(go(argument, new_env) for argument in p.args))
                for p in node.context
            )
            return Forall(tuple(new_binders), go(node.body, new_env), new_context)
        raise TypeError(f"unknown type node: {node!r}")

    return go(type_, {})


def type_size(type_: Type) -> int:
    """Number of AST nodes; used by benchmarks and fuzzers."""
    if isinstance(type_, (TVar, UVar)):
        return 1
    if isinstance(type_, TCon):
        return 1 + sum(type_size(argument) for argument in type_.args)
    if isinstance(type_, Forall):
        extra = sum(
            type_size(argument)
            for predicate in type_.context
            for argument in predicate.args
        )
        return 1 + extra + type_size(type_.body)
    raise TypeError(f"unknown type node: {type_!r}")


def contains_uvar(type_: Type, variable: UVar) -> bool:
    """Occurs check helper (iterative — deep types must not overflow)."""
    stack: list[Type] = [type_]
    while stack:
        node = stack.pop()
        if isinstance(node, UVar):
            if node == variable:
                return True
        elif isinstance(node, TCon):
            stack.extend(node.args)
        elif isinstance(node, Forall):
            stack.append(node.body)
            for predicate in node.context:
                stack.extend(predicate.args)
    return False


def walk(type_: Type) -> Iterator[Type]:
    """Pre-order traversal of all type nodes."""
    yield type_
    if isinstance(type_, TCon):
        for argument in type_.args:
            yield from walk(argument)
    elif isinstance(type_, Forall):
        yield from walk(type_.body)


def map_uvars(function: Callable[[UVar], Type], type_: Type) -> Type:
    """Rebuild the type, replacing every unification variable via ``function``."""
    return _rebuild_uvars(function, type_)


def render_type(type_: Type, precedence: int = 0) -> str:
    """A small built-in renderer (the full pretty printer lives in
    ``repro.syntax.pretty``; this one keeps ``__str__`` dependency-free)."""
    if isinstance(type_, TVar):
        return type_.name
    if isinstance(type_, UVar):
        return f"{type_.name}^{type_.sort.symbol}"
    if isinstance(type_, Forall):
        body = render_type(type_.body, 0)
        context = ""
        if type_.context:
            preds = ", ".join(str(predicate) for predicate in type_.context)
            wrapped = f"({preds})" if len(type_.context) > 1 else preds
            context = f"{wrapped} => "
        quantifier = f"forall {' '.join(type_.binders)}. " if type_.binders else ""
        rendered = f"{quantifier}{context}{body}"
        return f"({rendered})" if precedence > 0 else rendered
    if isinstance(type_, TCon):
        if type_.name == ARROW and len(type_.args) == 2:
            # Flatten the right spine so an n-ary function type costs n
            # stack frames fewer — ``a -> (b -> c)`` renders as one run.
            parts: list[str] = []
            node: Type = type_
            while isinstance(node, TCon) and node.name == ARROW and len(node.args) == 2:
                parts.append(render_type(node.args[0], 2))
                node = node.args[1]
            parts.append(render_type(node, 1))
            rendered = " -> ".join(parts)
            return f"({rendered})" if precedence > 1 else rendered
        if type_.name == LIST_CON and len(type_.args) == 1:
            return f"[{render_type(type_.args[0], 0)}]"
        if type_.name.startswith("(,") or type_.name == "(,)":
            inner = ", ".join(render_type(argument, 0) for argument in type_.args)
            return f"({inner})"
        if not type_.args:
            return type_.name
        pieces = [type_.name] + [render_type(argument, 3) for argument in type_.args]
        rendered = " ".join(pieces)
        return f"({rendered})" if precedence > 2 else rendered
    raise TypeError(f"unknown type node: {type_!r}")


def free_uvar_names(types: Iterable[Type]) -> set[str]:
    """Names of unification variables free in any of the given types."""
    result: set[str] = set()
    for type_ in types:
        result |= {variable.name for variable in fuv(type_)}
    return result
