"""Type syntax of GI (Figures 3 and 6 of the paper).

The grammar, stratified by sorts::

    fully monomorphic   τ ::= a | αᵐ | T τ̄
    top-level mono      µ ::= a | αᵐ | αᵗ | T σ̄
    polymorphic         σ ::= αᵘ | ∀ā. µ        (ā possibly empty)

We represent all three layers with one AST and check membership with
:func:`respects`.  The function arrow is an ordinary binary constructor
``->`` (all constructors in GI are invariant, including functions), lists
are the unary constructor ``[]``, and tuples are ``(,)``/``(,,)``.

Unification variables (:class:`UVar`) carry a *sort* restricting what they
may stand for, and a *level* used by the solver to implement floating with
promotion (rule float of Figure 10) and skolem-escape checking.  Skolem
(rigid) variables are :class:`TVar`; bound occurrences inside a
:class:`Forall` use the same constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.names import letters
from repro.core.sorts import Sort

ARROW = "->"
LIST_CON = "[]"
TOP_LEVEL = 0


@dataclass(frozen=True)
class Type:
    """Base class of all type forms."""

    def __str__(self) -> str:
        return render_type(self)


@dataclass(frozen=True)
class TVar(Type):
    """A skolem / rigid type variable, or a ``Forall``-bound occurrence."""

    name: str


@dataclass(frozen=True)
class UVar(Type):
    """A unification variable ``α^s`` with its sort and scope level.

    The sort is part of the variable's identity: the solver never mutates a
    variable's sort in place, it binds the variable to a fresh one of the
    required sort (rule eqvar).  The level records the quantification depth
    at which the variable was created; binding an outer variable to a type
    mentioning deeper variables triggers promotion.
    """

    name: str
    sort: Sort = Sort.U
    level: int = TOP_LEVEL

    def __str__(self) -> str:
        return f"{self.name}^{self.sort.symbol}"


@dataclass(frozen=True)
class TCon(Type):
    """A saturated type-constructor application ``T σ1 ... σn``."""

    name: str
    args: tuple[Type, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class Forall(Type):
    """A polymorphic type ``∀ a1 ... an. Q ⇒ µ`` (Figure 3 / Figure 13).

    ``context`` is the (possibly empty) list of simple class constraints
    ``Q`` of the Appendix B extension; each element is a pair
    ``(class_name, argument_types)``.  Invariants (enforced by the
    :func:`forall` smart constructor): every binder occurs free in the body
    or the context, and the body has no top-level ``Forall``.  A
    quantifier-free qualified type ``Q ⇒ µ`` is represented with an empty
    binder tuple.
    """

    binders: tuple[str, ...]
    body: Type
    context: tuple["Pred", ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.binders, tuple):
            object.__setattr__(self, "binders", tuple(self.binders))
        if not isinstance(self.context, tuple):
            object.__setattr__(self, "context", tuple(self.context))


@dataclass(frozen=True)
class Pred:
    """A class predicate ``D σ1 ... σn`` appearing in a type context."""

    class_name: str
    args: tuple[Type, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        rendered = " ".join(render_type(argument, 3) for argument in self.args)
        return f"{self.class_name} {rendered}"


def forall(
    binders: Sequence[str], body: Type, context: Sequence["Pred"] = ()
) -> Type:
    """Build ``∀ binders. context ⇒ body``, normalising to the grammar.

    Collapses nested quantifiers (merging contexts), drops binders that
    occur neither in the body nor in the context, and returns the body
    unchanged when no binder and no context survive.
    """
    context = tuple(context)
    if isinstance(body, Forall):
        binders = tuple(binders) + body.binders
        context = context + body.context
        body = body.body
    free = ftv(body)
    for predicate in context:
        for argument in predicate.args:
            free |= ftv(argument)
    kept = []
    seen: set[str] = set()
    for name in binders:
        if name in free and name not in seen:
            kept.append(name)
            seen.add(name)
    if not kept and not context:
        return body
    return Forall(tuple(kept), body, context)


def fun(*types: Type) -> Type:
    """Right-nested function type ``t1 -> t2 -> ... -> tn``."""
    if not types:
        raise ValueError("fun() needs at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = TCon(ARROW, (argument, result))
    return result


def list_of(element: Type) -> Type:
    """The list type ``[element]``."""
    return TCon(LIST_CON, (element,))


def tuple_of(*elements: Type) -> Type:
    """The tuple type ``(e1, ..., en)``."""
    if len(elements) < 2:
        raise ValueError("tuples have at least two components")
    return TCon("(" + "," * (len(elements) - 1) + ")", tuple(elements))


INT = TCon("Int")
BOOL = TCon("Bool")
CHAR = TCon("Char")
STRING = TCon("String")
UNIT = TCon("()")


def is_arrow(type_: Type) -> bool:
    """Whether the type is a function type ``σ1 -> σ2``."""
    return isinstance(type_, TCon) and type_.name == ARROW and len(type_.args) == 2


def arrow_parts(type_: Type) -> tuple[Type, Type]:
    """Split ``σ1 -> σ2`` into ``(σ1, σ2)``; raises if not an arrow."""
    if not is_arrow(type_):
        raise ValueError(f"not a function type: {type_}")
    assert isinstance(type_, TCon)
    return type_.args[0], type_.args[1]


def split_arrows(type_: Type, limit: int | None = None) -> tuple[list[Type], Type]:
    """Split off up to ``limit`` argument types (all of them if ``None``)."""
    arguments: list[Type] = []
    while is_arrow(type_) and (limit is None or len(arguments) < limit):
        argument, type_ = arrow_parts(type_)
        arguments.append(argument)
    return arguments, type_


def strip_forall(type_: Type) -> tuple[tuple[str, ...], Type]:
    """Split a type into its top-level binders and its body."""
    if isinstance(type_, Forall):
        return type_.binders, type_.body
    return (), type_


def ftv(type_: Type) -> set[str]:
    """Free (skolem) type variables."""
    result: set[str] = set()
    _collect_ftv(type_, frozenset(), result)
    return result


def _collect_ftv(type_: Type, bound: frozenset[str], out: set[str]) -> None:
    if isinstance(type_, TVar):
        if type_.name not in bound:
            out.add(type_.name)
    elif isinstance(type_, TCon):
        for argument in type_.args:
            _collect_ftv(argument, bound, out)
    elif isinstance(type_, Forall):
        inner_bound = bound | set(type_.binders)
        for predicate in type_.context:
            for argument in predicate.args:
                _collect_ftv(argument, inner_bound, out)
        _collect_ftv(type_.body, inner_bound, out)


def fuv(type_: Type) -> set[UVar]:
    """Free unification variables (all unification variables are free)."""
    result: set[UVar] = set()
    _collect_fuv(type_, result)
    return result


def _collect_fuv(type_: Type, out: set[UVar]) -> None:
    if isinstance(type_, UVar):
        out.add(type_)
    elif isinstance(type_, TCon):
        for argument in type_.args:
            _collect_fuv(argument, out)
    elif isinstance(type_, Forall):
        for predicate in type_.context:
            for argument in predicate.args:
                _collect_fuv(argument, out)
        _collect_fuv(type_.body, out)


def subst_tvars(mapping: Mapping[str, Type], type_: Type) -> Type:
    """Capture-avoiding substitution of skolem variables ``[a ↦ σ]``."""
    if not mapping:
        return type_
    if isinstance(type_, TVar):
        return mapping.get(type_.name, type_)
    if isinstance(type_, UVar):
        return type_
    if isinstance(type_, TCon):
        return TCon(type_.name, tuple(subst_tvars(mapping, a) for a in type_.args))
    if isinstance(type_, Forall):
        relevant = {
            name: image
            for name, image in mapping.items()
            if name not in type_.binders
        }
        if not relevant:
            return type_
        image_ftvs: set[str] = set()
        for image in relevant.values():
            image_ftvs |= ftv(image)
        binders = list(type_.binders)
        body = type_.body
        clashing = [name for name in binders if name in image_ftvs]
        if clashing:
            avoid = image_ftvs | ftv(body) | set(binders)
            renaming: dict[str, Type] = {}
            for name in clashing:
                fresh_name = _fresh_tvar_name(name, avoid)
                avoid.add(fresh_name)
                renaming[name] = TVar(fresh_name)
                binders[binders.index(name)] = fresh_name
            body = subst_tvars(renaming, body)
        context = tuple(
            _subst_pred(renaming, predicate) for predicate in type_.context
        ) if clashing else type_.context
        return Forall(
            tuple(binders),
            subst_tvars(relevant, body),
            tuple(_subst_pred(relevant, predicate) for predicate in context),
        )
    raise TypeError(f"unknown type node: {type_!r}")


def _subst_pred(mapping: Mapping[str, Type], predicate: "Pred") -> "Pred":
    return Pred(
        predicate.class_name,
        tuple(subst_tvars(mapping, argument) for argument in predicate.args),
    )


def _fresh_tvar_name(base: str, avoid: set[str]) -> str:
    base = base.rstrip("0123456789")
    index = 1
    while f"{base}{index}" in avoid:
        index += 1
    return f"{base}{index}"


def subst_uvars(mapping: Mapping[UVar, Type], type_: Type) -> Type:
    """Substitution of unification variables (zonking one step)."""
    if not mapping:
        return type_
    if isinstance(type_, UVar):
        return mapping.get(type_, type_)
    if isinstance(type_, TVar):
        return type_
    if isinstance(type_, TCon):
        return TCon(type_.name, tuple(subst_uvars(mapping, a) for a in type_.args))
    if isinstance(type_, Forall):
        return Forall(
            type_.binders,
            subst_uvars(mapping, type_.body),
            tuple(
                Pred(
                    predicate.class_name,
                    tuple(subst_uvars(mapping, argument) for argument in predicate.args),
                )
                for predicate in type_.context
            ),
        )
    raise TypeError(f"unknown type node: {type_!r}")


def respects(type_: Type, sort: Sort) -> bool:
    """Whether a type respects a sort (Figure 4, top-left judgement).

    * every type respects ``U``;
    * a type respects ``T`` when it has no top-level quantifier and is not
      an unrestricted unification variable;
    * a type respects ``M`` when it contains no quantifier anywhere and all
      its unification variables have sort ``M``.
    """
    if sort is Sort.U:
        return True
    if sort is Sort.T:
        if isinstance(type_, Forall):
            return False
        if isinstance(type_, UVar):
            return type_.sort <= Sort.T
        return True
    # Sort.M: fully monomorphic.
    if isinstance(type_, Forall):
        return False
    if isinstance(type_, UVar):
        return type_.sort is Sort.M
    if isinstance(type_, TVar):
        return True
    if isinstance(type_, TCon):
        return all(respects(argument, Sort.M) for argument in type_.args)
    raise TypeError(f"unknown type node: {type_!r}")


def sort_of(type_: Type) -> Sort:
    """The most restrictive sort the type respects."""
    if respects(type_, Sort.M):
        return Sort.M
    if respects(type_, Sort.T):
        return Sort.T
    return Sort.U


def is_fully_monomorphic(type_: Type) -> bool:
    """``True`` when the type has no trace of polymorphism (sort ``m``)."""
    return respects(type_, Sort.M)


def is_rank1(type_: Type) -> bool:
    """Whether the type is rank-1: ``∀ p̄. τ`` with a fully monomorphic body.

    Rule VarGen (Figure 5) only applies to variables with closed rank-1
    types.
    """
    _, body = strip_forall(type_)
    return is_fully_monomorphic(body)


def alpha_equal(left: Type, right: Type) -> bool:
    """Alpha-equality of types (the equality used by rule eqrefl).

    Quantifier *order matters* in GI: ``∀a b. a -> b -> b`` is **not**
    alpha-equal to ``∀b a. a -> b -> b`` (Section 2.4 of the paper);
    alpha-equality only ignores the names of binders, not their order.
    """
    return _alpha_equal(left, right, {}, {}, [0])


def _alpha_equal(
    left: Type,
    right: Type,
    left_env: dict[str, int],
    right_env: dict[str, int],
    counter: list[int],
) -> bool:
    if isinstance(left, TVar) and isinstance(right, TVar):
        left_index = left_env.get(left.name)
        right_index = right_env.get(right.name)
        if left_index is None and right_index is None:
            return left.name == right.name
        return left_index is not None and left_index == right_index
    if isinstance(left, UVar) and isinstance(right, UVar):
        return left == right
    if isinstance(left, TCon) and isinstance(right, TCon):
        if left.name != right.name or len(left.args) != len(right.args):
            return False
        return all(
            _alpha_equal(l, r, left_env, right_env, counter)
            for l, r in zip(left.args, right.args)
        )
    if isinstance(left, Forall) and isinstance(right, Forall):
        if len(left.binders) != len(right.binders):
            return False
        if len(left.context) != len(right.context):
            return False
        left_env = dict(left_env)
        right_env = dict(right_env)
        for left_name, right_name in zip(left.binders, right.binders):
            counter[0] += 1
            left_env[left_name] = counter[0]
            right_env[right_name] = counter[0]
        for left_pred, right_pred in zip(left.context, right.context):
            if left_pred.class_name != right_pred.class_name:
                return False
            if len(left_pred.args) != len(right_pred.args):
                return False
            if not all(
                _alpha_equal(l, r, left_env, right_env, counter)
                for l, r in zip(left_pred.args, right_pred.args)
            ):
                return False
        return _alpha_equal(left.body, right.body, left_env, right_env, counter)
    return False


def rename_canonical(type_: Type) -> Type:
    """Rename all quantified variables to a canonical ``a, b, c, ...`` scheme.

    Useful for displaying principal types and for structural comparisons in
    tests.  Free variables are left untouched.
    """
    supply = letters()
    free = ftv(type_)
    used = set(free)

    def next_name() -> str:
        for candidate in supply:
            if candidate not in used:
                used.add(candidate)
                return candidate
        raise RuntimeError("unreachable")

    def go(node: Type, env: Mapping[str, Type]) -> Type:
        if isinstance(node, TVar):
            replaced = env.get(node.name)
            return replaced if replaced is not None else node
        if isinstance(node, UVar):
            return node
        if isinstance(node, TCon):
            return TCon(node.name, tuple(go(argument, env) for argument in node.args))
        if isinstance(node, Forall):
            new_env = dict(env)
            new_binders = []
            for binder in node.binders:
                fresh = next_name()
                new_binders.append(fresh)
                new_env[binder] = TVar(fresh)
            new_context = tuple(
                Pred(p.class_name, tuple(go(argument, new_env) for argument in p.args))
                for p in node.context
            )
            return Forall(tuple(new_binders), go(node.body, new_env), new_context)
        raise TypeError(f"unknown type node: {node!r}")

    return go(type_, {})


def type_size(type_: Type) -> int:
    """Number of AST nodes; used by benchmarks and fuzzers."""
    if isinstance(type_, (TVar, UVar)):
        return 1
    if isinstance(type_, TCon):
        return 1 + sum(type_size(argument) for argument in type_.args)
    if isinstance(type_, Forall):
        extra = sum(
            type_size(argument)
            for predicate in type_.context
            for argument in predicate.args
        )
        return 1 + extra + type_size(type_.body)
    raise TypeError(f"unknown type node: {type_!r}")


def contains_uvar(type_: Type, variable: UVar) -> bool:
    """Occurs check helper."""
    if isinstance(type_, UVar):
        return type_ == variable
    if isinstance(type_, TCon):
        return any(contains_uvar(argument, variable) for argument in type_.args)
    if isinstance(type_, Forall):
        if any(
            contains_uvar(argument, variable)
            for predicate in type_.context
            for argument in predicate.args
        ):
            return True
        return contains_uvar(type_.body, variable)
    return False


def walk(type_: Type) -> Iterator[Type]:
    """Pre-order traversal of all type nodes."""
    yield type_
    if isinstance(type_, TCon):
        for argument in type_.args:
            yield from walk(argument)
    elif isinstance(type_, Forall):
        yield from walk(type_.body)


def map_uvars(function: Callable[[UVar], Type], type_: Type) -> Type:
    """Rebuild the type, replacing every unification variable via ``function``."""
    if isinstance(type_, UVar):
        return function(type_)
    if isinstance(type_, TVar):
        return type_
    if isinstance(type_, TCon):
        return TCon(type_.name, tuple(map_uvars(function, a) for a in type_.args))
    if isinstance(type_, Forall):
        return Forall(
            type_.binders,
            map_uvars(function, type_.body),
            tuple(
                Pred(
                    predicate.class_name,
                    tuple(map_uvars(function, argument) for argument in predicate.args),
                )
                for predicate in type_.context
            ),
        )
    raise TypeError(f"unknown type node: {type_!r}")


def render_type(type_: Type, precedence: int = 0) -> str:
    """A small built-in renderer (the full pretty printer lives in
    ``repro.syntax.pretty``; this one keeps ``__str__`` dependency-free)."""
    if isinstance(type_, TVar):
        return type_.name
    if isinstance(type_, UVar):
        return f"{type_.name}^{type_.sort.symbol}"
    if isinstance(type_, Forall):
        body = render_type(type_.body, 0)
        context = ""
        if type_.context:
            preds = ", ".join(str(predicate) for predicate in type_.context)
            wrapped = f"({preds})" if len(type_.context) > 1 else preds
            context = f"{wrapped} => "
        quantifier = f"forall {' '.join(type_.binders)}. " if type_.binders else ""
        rendered = f"{quantifier}{context}{body}"
        return f"({rendered})" if precedence > 0 else rendered
    if isinstance(type_, TCon):
        if type_.name == ARROW and len(type_.args) == 2:
            left = render_type(type_.args[0], 2)
            right = render_type(type_.args[1], 1)
            rendered = f"{left} -> {right}"
            return f"({rendered})" if precedence > 1 else rendered
        if type_.name == LIST_CON and len(type_.args) == 1:
            return f"[{render_type(type_.args[0], 0)}]"
        if type_.name.startswith("(,") or type_.name == "(,)":
            inner = ", ".join(render_type(argument, 0) for argument in type_.args)
            return f"({inner})"
        if not type_.args:
            return type_.name
        pieces = [type_.name] + [render_type(argument, 3) for argument in type_.args]
        rendered = " ".join(pieces)
        return f"({rendered})" if precedence > 2 else rendered
    raise TypeError(f"unknown type node: {type_!r}")


def free_uvar_names(types: Iterable[Type]) -> set[str]:
    """Names of unification variables free in any of the given types."""
    result: set[str] = set()
    for type_ in types:
        result |= {variable.name for variable in fuv(type_)}
    return result
