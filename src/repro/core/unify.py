"""Sort- and level-aware unification (the equality rules of Figure 8).

This module implements the equality fragment of the solver:

* **eqrefl / eqmono** — structural decomposition; two quantified types
  must be equal modulo α-renaming of their binders (quantifier order
  matters, Section 2.4), though unification variables occurring *inside*
  matched bodies may still be solved.
* **eqsubst** — binding a variable applies everywhere (here: a global
  idempotent-by-zonking substitution with an occurs check).
* **eqvar** — when two variables of different sorts meet, the less
  restrictive one is bound to the more restrictive one.
* **eqfully** — equating a type with a fully monomorphic variable demotes
  every unification variable in the type to sort ``m``.

Floating with promotion (rule float of Figure 10) is realised with
*levels*: every unification variable and skolem records the depth of the
quantification scope it belongs to.  Binding an outer variable to a type
that mentions deeper unification variables *promotes* those variables
(binds them to fresh outer ones); mentioning a deeper skolem is a skolem
escape, reported as such.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.errors import (
    OccursCheckError,
    SkolemEscapeError,
    SortError,
    UnificationError,
)
from repro.core.names import NameSupply
from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    Pred,
    TCon,
    TVar,
    Type,
    UVar,
    contains_uvar,
    ftv,
    fuv,
    subst_tvars,
    subst_uvars,
)

if TYPE_CHECKING:  # pragma: no cover — avoids a runtime import cycle
    from repro.observability.tracer import TracerLike
    from repro.robustness.budget import Budget
    from repro.robustness.faultinject import FaultPlan

TVarResolver = Callable[[str], Type | None]


class Unifier:
    """Mutable unification state: substitution, fresh supply, skolem levels.

    ``budget`` bounds the recursion depth of :meth:`unify` (and enforces
    the run's wall-clock deadline); ``faults`` is the deterministic
    fault-injection hook; ``tracer`` records variable bindings as trace
    events.  All three are optional and cost one attribute check per
    recursion level (binding) when absent or disabled.
    """

    def __init__(
        self,
        supply: NameSupply | None = None,
        budget: "Budget | None" = None,
        faults: "FaultPlan | None" = None,
        tracer: "TracerLike | None" = None,
    ) -> None:
        self.supply = supply or NameSupply("v")
        self.subst: dict[UVar, Type] = {}
        self.skolem_levels: dict[str, int] = {}
        self.bindings = 0
        self.budget = budget
        self.faults = faults
        self.tracer = tracer
        self.depth = 0
        """Current recursion depth of :meth:`unify` (0 when idle)."""

    # -- fresh variables and skolems -----------------------------------

    def fresh(self, sort: Sort, level: int) -> UVar:
        return UVar(self.supply.fresh(), sort, level)

    def fresh_skolem(self, hint: str, level: int) -> str:
        name = self.supply.fresh(hint + "_")
        self.skolem_levels[name] = level
        return name

    def skolem_level(self, name: str) -> int:
        """Level of a skolem; unknown names are ambient (level 0)."""
        return self.skolem_levels.get(name, 0)

    # -- substitution ---------------------------------------------------

    def zonk(self, type_: Type) -> Type:
        """Fully apply the current substitution to a type."""
        if isinstance(type_, UVar):
            bound = self.subst.get(type_)
            if bound is None:
                return type_
            resolved = self.zonk(bound)
            if resolved is not bound:
                # Path compression keeps repeated zonks cheap.
                self.subst[type_] = resolved
            return resolved
        if isinstance(type_, TVar):
            return type_
        if isinstance(type_, TCon):
            return TCon(type_.name, tuple(self.zonk(argument) for argument in type_.args))
        if isinstance(type_, Forall):
            return Forall(
                type_.binders,
                self.zonk(type_.body),
                tuple(
                    Pred(p.class_name, tuple(self.zonk(a) for a in p.args))
                    for p in type_.context
                ),
            )
        raise TypeError(f"unknown type node: {type_!r}")

    def zonk_head(self, type_: Type) -> Type:
        """Resolve only a top-level variable chain."""
        while isinstance(type_, UVar):
            bound = self.subst.get(type_)
            if bound is None:
                return type_
            type_ = bound
        return type_

    # -- unification ----------------------------------------------------

    def unify(
        self,
        left: Type,
        right: Type,
        level: int = 0,
        resolver: TVarResolver | None = None,
    ) -> None:
        """Make ``left`` and ``right`` equal or raise a type error.

        ``level`` is the current scope depth (used when opening quantified
        types); ``resolver`` optionally rewrites rigid variables using
        local given equalities (the GADT extension of Appendix B).
        """
        self.depth += 1
        try:
            if self.budget is not None:
                self.budget.check_unify_depth(self.depth, left, right)
            if self.faults is not None:
                self.faults.unify_depth(self.depth)
            if self.tracer is not None and self.tracer.enabled and self.depth == 1:
                self.tracer.inc("unify.calls")
            left = self.zonk(left)
            right = self.zonk(right)
            if left == right:
                return
            if isinstance(left, UVar):
                self.bind(left, right, resolver)
                return
            if isinstance(right, UVar):
                self.bind(right, left, resolver)
                return
            if isinstance(left, TVar) or isinstance(right, TVar):
                self._unify_rigid(left, right, level, resolver)
                return
            if isinstance(left, TCon) and isinstance(right, TCon):
                if left.name != right.name or len(left.args) != len(right.args):
                    raise UnificationError(left, right, "different type constructors")
                for left_argument, right_argument in zip(left.args, right.args):
                    self.unify(left_argument, right_argument, level, resolver)
                return
            if isinstance(left, Forall) and isinstance(right, Forall):
                self._unify_forall(left, right, level, resolver)
                return
            if isinstance(left, Forall) or isinstance(right, Forall):
                raise UnificationError(
                    left,
                    right,
                    "a polymorphic type can only equal another polymorphic type; "
                    "all constructors in GI are invariant",
                )
            raise UnificationError(left, right)
        finally:
            self.depth -= 1

    def _unify_rigid(
        self, left: Type, right: Type, level: int, resolver: TVarResolver | None
    ) -> None:
        """Rigid variables match only themselves, modulo local givens."""
        if resolver is not None:
            if isinstance(left, TVar):
                rewritten = resolver(left.name)
                if rewritten is not None:
                    self.unify(rewritten, right, level, resolver)
                    return
            if isinstance(right, TVar):
                rewritten = resolver(right.name)
                if rewritten is not None:
                    self.unify(left, rewritten, level, resolver)
                    return
        raise UnificationError(left, right, "rigid type variable")

    def _unify_forall(
        self, left: Forall, right: Forall, level: int, resolver: TVarResolver | None
    ) -> None:
        """Equate two quantified types (eqrefl modulo α).

        Binders are matched positionally — quantifier order is significant
        — by renaming both bodies to shared fresh skolems one level deeper
        than the current scope, so that any attempt to leak a bound
        variable into an outer unification variable fails the escape
        check.
        """
        if len(left.binders) != len(right.binders):
            raise UnificationError(left, right, "different numbers of quantifiers")
        if len(left.context) != len(right.context):
            raise UnificationError(left, right, "different class contexts")
        inner = level + 1
        shared = [
            self.fresh_skolem(name, inner) for name in left.binders
        ]
        left_map = {name: TVar(skolem) for name, skolem in zip(left.binders, shared)}
        right_map = {name: TVar(skolem) for name, skolem in zip(right.binders, shared)}
        for left_pred, right_pred in zip(left.context, right.context):
            if left_pred.class_name != right_pred.class_name or len(
                left_pred.args
            ) != len(right_pred.args):
                raise UnificationError(left, right, "different class contexts")
            for left_argument, right_argument in zip(left_pred.args, right_pred.args):
                self.unify(
                    subst_tvars(left_map, left_argument),
                    subst_tvars(right_map, right_argument),
                    inner,
                    resolver,
                )
        self.unify(
            subst_tvars(left_map, left.body),
            subst_tvars(right_map, right.body),
            inner,
            resolver,
        )

    # -- variable binding -----------------------------------------------

    def bind(self, variable: UVar, type_: Type, resolver: TVarResolver | None = None) -> None:
        """Bind a unification variable, enforcing sorts and levels."""
        type_ = self.zonk(type_)
        if type_ == variable:
            return
        if isinstance(type_, UVar):
            self._bind_var_var(variable, type_)
            return
        if contains_uvar(type_, variable):
            raise OccursCheckError(variable, type_)
        type_ = self._enforce_sort(variable, type_)
        type_ = self._promote(variable, type_)
        self._check_skolems(variable, type_)
        self.subst[variable] = type_
        self.bindings += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.inc("unify.binds")
            self.tracer.event(
                "unify.bind",
                var=str(variable),
                type=str(type_),
                sort=variable.sort.symbol,
                level=variable.level,
            )

    def _bind_var_var(self, left: UVar, right: UVar) -> None:
        """Rule eqvar: the less restrictive variable is substituted away;
        among equal sorts, the deeper one (to avoid needless promotion)."""
        if left.sort < right.sort:
            left, right = right, left
        elif left.sort == right.sort and left.level < right.level:
            left, right = right, left
        # ``left`` is now the variable to eliminate.
        if right.level > left.level:
            # Equal sorts cannot reach here (ordering above); a more
            # restrictive but deeper variable must be promoted first.
            promoted = self.fresh(right.sort, left.level)
            self.subst[right] = promoted
            self.bindings += 1
            right = promoted
        self.subst[left] = right
        self.bindings += 1

    def _enforce_sort(self, variable: UVar, type_: Type) -> Type:
        """Rules eqvar/eqfully: make the type respect the variable's sort."""
        if variable.sort is Sort.U:
            return type_
        if isinstance(type_, Forall):
            raise SortError(variable, type_, variable.sort)
        if variable.sort is Sort.T:
            return type_
        # Sort.M — demote every unification variable in the type (eqfully)
        # and reject any quantifier hiding under a constructor.
        if _mentions_forall(type_):
            raise SortError(variable, type_, Sort.M)
        mapping: dict[UVar, Type] = {}
        for inner in fuv(type_):
            if inner.sort is not Sort.M:
                demoted = self.fresh(Sort.M, inner.level)
                self.subst[inner] = demoted
                self.bindings += 1
                mapping[inner] = demoted
        return subst_uvars(mapping, type_) if mapping else type_

    def _promote(self, variable: UVar, type_: Type) -> Type:
        """Rule float: deeper unification variables in the image of an
        outer variable are replaced by fresh outer ones."""
        mapping: dict[UVar, Type] = {}
        for inner in fuv(type_):
            if inner.level > variable.level:
                promoted = self.fresh(inner.sort, variable.level)
                self.subst[inner] = promoted
                self.bindings += 1
                mapping[inner] = promoted
        return subst_uvars(mapping, type_) if mapping else type_

    def _check_skolems(self, variable: UVar, type_: Type) -> None:
        for name in ftv(type_):
            if self.skolem_level(name) > variable.level:
                raise SkolemEscapeError(name, type_)


def _mentions_forall(type_: Type) -> bool:
    if isinstance(type_, Forall):
        return True
    if isinstance(type_, TCon):
        return any(_mentions_forall(argument) for argument in type_.args)
    return False
