"""Sort- and level-aware unification (the equality rules of Figure 8).

This module implements the equality fragment of the solver:

* **eqrefl / eqmono** — structural decomposition; two quantified types
  must be equal modulo α-renaming of their binders (quantifier order
  matters, Section 2.4), though unification variables occurring *inside*
  matched bodies may still be solved.
* **eqsubst** — binding a variable applies everywhere.  The substitution
  is a *union-find store*: variable-to-variable bindings are parent
  pointers (union by rank, iterative find with path compression) and
  each representative carries at most one non-variable binding, so
  resolving a variable is amortised near-constant instead of walking a
  dict chain.
* **eqvar** — when two variables of different sorts meet, the less
  restrictive one is bound to the more restrictive one.
* **eqfully** — equating a type with a fully monomorphic variable demotes
  every unification variable in the type to sort ``m``.

Floating with promotion (rule float of Figure 10) is realised with
*levels*: every unification variable and skolem records the depth of the
quantification scope it belongs to.  Binding an outer variable to a type
that mentions deeper unification variables *promotes* those variables
(binds them to fresh outer ones); mentioning a deeper skolem is a skolem
escape, reported as such.

Both :meth:`Unifier.unify` and :meth:`Unifier.zonk` run on explicit
worklists — a deep type exhausts the budget (or fails honestly), never
the interpreter stack — and the unifier memoises free-variable queries
per hash-consed type node, so occurs checks, promotion sweeps and
zonk-cleanliness tests cost one cache lookup on repeated types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.errors import (
    OccursCheckError,
    SkolemEscapeError,
    SortError,
    UnificationError,
)
from repro.core.names import NameSupply
from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    InternTable,
    TCon,
    TVar,
    Type,
    UVar,
    ftv,
    fuv,
    subst_tvars,
    subst_uvars,
)

if TYPE_CHECKING:  # pragma: no cover — avoids a runtime import cycle
    from repro.observability.tracer import TracerLike
    from repro.robustness.budget import Budget
    from repro.robustness.faultinject import FaultPlan

TVarResolver = Callable[[str], Type | None]


class _PruneSkolems:
    """Worklist sentinel: discard the skolems a ``∀``/``∀`` equation
    introduced once its sub-equations are solved (or the call fails), so
    ``skolem_levels`` does not grow monotonically on long-lived unifiers."""

    __slots__ = ("names",)

    def __init__(self, names: tuple[str, ...]) -> None:
        self.names = names


class SubstitutionView:
    """Mapping-like facade over the union-find store.

    Kept for backward compatibility with the old ``subst`` dict: ``len``,
    truthiness, membership, lookup of a variable's immediate image, and
    item assignment (which routes through :meth:`Unifier.assign` so
    wake-up callbacks still fire).
    """

    __slots__ = ("_unifier",)

    def __init__(self, unifier: "Unifier") -> None:
        self._unifier = unifier

    def __len__(self) -> int:
        unifier = self._unifier
        return len(unifier._parent) + len(unifier._binding)

    def __bool__(self) -> bool:
        unifier = self._unifier
        return bool(unifier._parent) or bool(unifier._binding)

    def __contains__(self, variable: object) -> bool:
        unifier = self._unifier
        return variable in unifier._parent or variable in unifier._binding

    def __iter__(self) -> Iterator[UVar]:
        unifier = self._unifier
        yield from unifier._parent
        yield from unifier._binding

    def get(self, variable: UVar, default: Type | None = None) -> Type | None:
        unifier = self._unifier
        parent = unifier._parent.get(variable)
        if parent is not None:
            return parent
        bound = unifier._binding.get(variable)
        return bound if bound is not None else default

    def __getitem__(self, variable: UVar) -> Type:
        image = self.get(variable)
        if image is None:
            raise KeyError(variable)
        return image

    def __setitem__(self, variable: UVar, image: Type) -> None:
        self._unifier.assign(variable, image)

    def items(self) -> Iterator[tuple[UVar, Type]]:
        for variable in self:
            yield variable, self[variable]


class Unifier:
    """Mutable unification state: union-find substitution, fresh supply,
    skolem levels.

    ``budget`` bounds the structural depth of :meth:`unify` (and enforces
    the run's wall-clock deadline); ``faults`` is the deterministic
    fault-injection hook; ``tracer`` records variable bindings as trace
    events.  All three are optional and cost one attribute check per
    worklist frame (binding) when absent or disabled.  ``on_bind`` is the
    solver's wake-up hook: it is invoked with every variable that gets
    bound or united away, after the store is updated.
    """

    def __init__(
        self,
        supply: NameSupply | None = None,
        budget: "Budget | None" = None,
        faults: "FaultPlan | None" = None,
        tracer: "TracerLike | None" = None,
        intern: InternTable | None = None,
    ) -> None:
        self.supply = supply or NameSupply("v")
        self._parent: dict[UVar, UVar] = {}
        """Union-find parent pointers for variables united into another."""
        self._rank: dict[UVar, int] = {}
        """Union-by-rank bookkeeping (absent entries have rank 0)."""
        self._binding: dict[UVar, Type] = {}
        """Representative → bound (non-variable) type."""
        self.skolem_levels: dict[str, int] = {}
        self.bindings = 0
        self.budget = budget
        self.faults = faults
        self.tracer = tracer
        self.depth = 0
        """Current structural depth of :meth:`unify` (0 when idle)."""
        self.on_bind: Callable[[UVar], None] | None = None
        """Solver wake-up callback, fired after any variable is solved."""
        self._fuv_cache: dict[Type, tuple[UVar, ...]] = {}
        self._ftv_cache: dict[Type, tuple[str, ...]] = {}
        self._intern = intern if intern is not None else InternTable()
        self.subst = SubstitutionView(self)

    # -- fresh variables and skolems -----------------------------------

    def fresh(self, sort: Sort, level: int) -> UVar:
        return UVar(self.supply.fresh(), sort, level)

    def fresh_skolem(self, hint: str, level: int) -> str:
        name = self.supply.fresh(hint + "_")
        self.skolem_levels[name] = level
        return name

    def skolem_level(self, name: str) -> int:
        """Level of a skolem; unknown names are ambient (level 0)."""
        return self.skolem_levels.get(name, 0)

    def prune_skolems(self, names: Iterable[str]) -> None:
        """Forget skolems whose scope is closed (see :class:`_PruneSkolems`)."""
        for name in names:
            self.skolem_levels.pop(name, None)

    # -- memoized free-variable queries ---------------------------------

    def fuv_of(self, type_: Type) -> tuple[UVar, ...]:
        """Free unification variables, first-occurrence order, memoized."""
        if isinstance(type_, UVar):
            return (type_,)
        if isinstance(type_, TVar):
            return ()
        cached = self._fuv_cache.get(type_)
        if cached is None:
            cached = tuple(fuv(type_))
            self._fuv_cache[type_] = cached
        return cached

    def ftv_of(self, type_: Type) -> tuple[str, ...]:
        """Free rigid variables, first-occurrence order, memoized."""
        if isinstance(type_, TVar):
            return (type_.name,)
        if isinstance(type_, UVar):
            return ()
        cached = self._ftv_cache.get(type_)
        if cached is None:
            cached = tuple(ftv(type_))
            self._ftv_cache[type_] = cached
        return cached

    # -- substitution ---------------------------------------------------

    def _find(self, variable: UVar) -> UVar:
        """Representative of ``variable``, compressing the path walked."""
        parent = self._parent
        step = parent.get(variable)
        if step is None:
            return variable
        root = step
        while True:
            step = parent.get(root)
            if step is None:
                break
            root = step
        current = variable
        while True:
            step = parent[current]
            if step == root:
                break
            parent[current] = root
            current = step
        return root

    def _is_clean(self, type_: Type) -> bool:
        """Whether the substitution has nothing to say about ``type_``."""
        parent = self._parent
        binding = self._binding
        for variable in self.fuv_of(type_):
            if variable in parent or variable in binding:
                return False
        return True

    def zonk(self, type_: Type) -> Type:
        """Fully apply the current substitution to a type."""
        if isinstance(type_, UVar):
            root = self._find(type_)
            bound = self._binding.get(root)
            if bound is None:
                return root
            if self._is_clean(bound):
                return bound
            expanded = self._zonk_rebuild(bound)
            # Memoise the expansion so repeated zonks are cheap.
            self._binding[root] = expanded
            return expanded
        if isinstance(type_, TVar):
            return type_
        if self._is_clean(type_):
            return type_
        return self._zonk_rebuild(type_)

    def _zonk_rebuild(self, type_: Type) -> Type:
        """Iterative zonking rebuild with expansion memoisation.

        Frames: ``("visit", node)`` dispatches on a node, ``("build",
        node)`` reassembles a composite from its children's results, and
        ``("memo", root)`` writes a representative's expansion back into
        the store so the work is never repeated.
        """
        intern = self._intern.intern
        binding = self._binding
        results: list[Type] = []
        stack: list[tuple[str, Type]] = [("visit", type_)]
        while stack:
            tag, node = stack.pop()
            if tag == "visit":
                if isinstance(node, UVar):
                    root = self._find(node)
                    bound = binding.get(root)
                    if bound is None:
                        results.append(root)
                    elif self._is_clean(bound):
                        results.append(bound)
                    else:
                        stack.append(("memo", root))
                        stack.append(("visit", bound))
                elif isinstance(node, TVar):
                    results.append(node)
                elif isinstance(node, TCon):
                    stack.append(("build", node))
                    for argument in reversed(node.args):
                        stack.append(("visit", argument))
                elif isinstance(node, Forall):
                    stack.append(("build", node))
                    stack.append(("visit", node.body))
                    for predicate in reversed(node.context):
                        for argument in reversed(predicate.args):
                            stack.append(("visit", argument))
                else:
                    raise TypeError(f"unknown type node: {node!r}")
            elif tag == "build":
                if isinstance(node, TCon):
                    count = len(node.args)
                    if count:
                        args = tuple(results[-count:])
                        del results[-count:]
                        if all(a is b for a, b in zip(args, node.args)):
                            results.append(node)
                        else:
                            results.append(intern(TCon(node.name, args)))
                    else:
                        results.append(node)
                else:  # Forall
                    from repro.core.types import Pred

                    body = results.pop()
                    count = sum(len(p.args) for p in node.context)
                    flat = results[-count:] if count else []
                    if count:
                        del results[-count:]
                    changed = body is not node.body
                    context: list[Pred] = []
                    index = 0
                    for predicate in node.context:
                        width = len(predicate.args)
                        new_args = tuple(flat[index : index + width])
                        index += width
                        if all(a is b for a, b in zip(new_args, predicate.args)):
                            context.append(predicate)
                        else:
                            context.append(Pred(predicate.class_name, new_args))
                            changed = True
                    if changed:
                        results.append(
                            intern(Forall(node.binders, body, tuple(context)))
                        )
                    else:
                        results.append(node)
            else:  # memo
                expansion = results[-1]
                binding[node] = expansion
        return results[0]

    def zonk_head(self, type_: Type) -> Type:
        """Resolve only a top-level variable (one find + one lookup —
        bound representatives never point at another variable)."""
        if not isinstance(type_, UVar):
            return type_
        root = self._find(type_)
        bound = self._binding.get(root)
        return root if bound is None else bound

    # -- unification ----------------------------------------------------

    def unify(
        self,
        left: Type,
        right: Type,
        level: int = 0,
        resolver: TVarResolver | None = None,
    ) -> None:
        """Make ``left`` and ``right`` equal or raise a type error.

        ``level`` is the current scope depth (used when opening quantified
        types); ``resolver`` optionally rewrites rigid variables using
        local given equalities (the GADT extension of Appendix B).

        The traversal is an explicit depth-first worklist: each frame
        carries its structural depth, so budget and fault-injection hooks
        observe exactly the depths the old recursive engine reported.
        """
        base = self.depth
        budget = self.budget
        faults = self.faults
        stack: list = [(left, right, level, base + 1)]
        try:
            while stack:
                frame = stack.pop()
                if frame.__class__ is _PruneSkolems:
                    self.prune_skolems(frame.names)
                    continue
                l, r, lvl, depth = frame
                self.depth = depth
                if budget is not None:
                    budget.check_unify_depth(depth, l, r)
                if faults is not None:
                    faults.unify_depth(depth)
                if (
                    depth == 1
                    and self.tracer is not None
                    and self.tracer.enabled
                ):
                    self.tracer.inc("unify.calls")
                # Head resolution and shallow comparisons only:
                # decomposition re-resolves each child at its own frame,
                # so fully zonking — or deep-comparing — here would walk
                # every subtree once per ancestor (quadratic on deep
                # spines).  ``bind`` zonks its image itself, and equal
                # composites fall through to decomposition, which
                # discharges them in one frame per node.
                l = self.zonk_head(l)
                r = self.zonk_head(r)
                if l is r:
                    continue
                if isinstance(l, UVar):
                    self.bind(l, r, resolver)
                    continue
                if isinstance(r, UVar):
                    self.bind(r, l, resolver)
                    continue
                if isinstance(l, TVar) and isinstance(r, TVar):
                    if l.name == r.name:
                        continue
                if isinstance(l, TVar) or isinstance(r, TVar):
                    # Rigid variables match only themselves, modulo local
                    # givens; a rewrite continues one level deeper.
                    if resolver is not None:
                        if isinstance(l, TVar):
                            rewritten = resolver(l.name)
                            if rewritten is not None:
                                stack.append((rewritten, r, lvl, depth + 1))
                                continue
                        if isinstance(r, TVar):
                            rewritten = resolver(r.name)
                            if rewritten is not None:
                                stack.append((l, rewritten, lvl, depth + 1))
                                continue
                    raise UnificationError(l, r, "rigid type variable")
                if isinstance(l, TCon) and isinstance(r, TCon):
                    if l.name != r.name or len(l.args) != len(r.args):
                        raise UnificationError(l, r, "different type constructors")
                    for la, ra in zip(reversed(l.args), reversed(r.args)):
                        stack.append((la, ra, lvl, depth + 1))
                    continue
                if isinstance(l, Forall) and isinstance(r, Forall):
                    self._push_forall(stack, l, r, lvl, depth)
                    continue
                if isinstance(l, Forall) or isinstance(r, Forall):
                    raise UnificationError(
                        l,
                        r,
                        "a polymorphic type can only equal another polymorphic type; "
                        "all constructors in GI are invariant",
                    )
                raise UnificationError(l, r)
        except BaseException:
            # The call failed: none of the pending forall scopes will be
            # closed by the loop, so drop their skolems here.
            for frame in stack:
                if frame.__class__ is _PruneSkolems:
                    self.prune_skolems(frame.names)
            raise
        finally:
            self.depth = base

    def _push_forall(
        self, stack: list, left: Forall, right: Forall, level: int, depth: int
    ) -> None:
        """Equate two quantified types (eqrefl modulo α).

        Binders are matched positionally — quantifier order is significant
        — by renaming both bodies to shared fresh skolems one level deeper
        than the current scope, so that any attempt to leak a bound
        variable into an outer unification variable fails the escape
        check.  A sentinel frame below the sub-equations prunes the
        skolems again once they are solved.
        """
        if len(left.binders) != len(right.binders):
            raise UnificationError(left, right, "different numbers of quantifiers")
        if len(left.context) != len(right.context):
            raise UnificationError(left, right, "different class contexts")
        inner = level + 1
        shared = [self.fresh_skolem(name, inner) for name in left.binders]
        left_map = {name: TVar(skolem) for name, skolem in zip(left.binders, shared)}
        right_map = {name: TVar(skolem) for name, skolem in zip(right.binders, shared)}
        pairs: list[tuple[Type, Type]] = []
        try:
            for left_pred, right_pred in zip(left.context, right.context):
                if left_pred.class_name != right_pred.class_name or len(
                    left_pred.args
                ) != len(right_pred.args):
                    raise UnificationError(left, right, "different class contexts")
                for left_argument, right_argument in zip(
                    left_pred.args, right_pred.args
                ):
                    pairs.append(
                        (
                            subst_tvars(left_map, left_argument),
                            subst_tvars(right_map, right_argument),
                        )
                    )
            pairs.append(
                (
                    subst_tvars(left_map, left.body),
                    subst_tvars(right_map, right.body),
                )
            )
        except BaseException:
            self.prune_skolems(shared)
            raise
        stack.append(_PruneSkolems(tuple(shared)))
        for pair_left, pair_right in reversed(pairs):
            stack.append((pair_left, pair_right, inner, depth + 1))

    # -- variable binding -----------------------------------------------

    def bind(self, variable: UVar, type_: Type, resolver: TVarResolver | None = None) -> None:
        """Bind a unification variable, enforcing sorts and levels."""
        root = self._find(variable)
        type_ = self.zonk(type_)
        if type_ == root:
            return
        if isinstance(type_, UVar):
            self._bind_var_var(root, type_)
            return
        if root in self.fuv_of(type_):
            raise OccursCheckError(root, type_)
        type_ = self._enforce_sort(root, type_)
        type_ = self._promote(root, type_)
        self._check_skolems(root, type_)
        self._binding[root] = type_
        self.bindings += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.inc("unify.binds")
            self.tracer.event(
                "unify.bind",
                var=str(root),
                type=str(type_),
                sort=root.sort.symbol,
                level=root.level,
            )
        self._notify(root)

    def assign(self, variable: UVar, image: Type) -> None:
        """Record ``variable := image`` *without* the sort/level/occurs
        checks of :meth:`bind` — the solver's defaulting, refreshing and
        generalisation steps construct images that are correct by
        construction.  Still counts as a binding and fires ``on_bind``.
        """
        root = self._find(variable)
        if isinstance(image, UVar):
            target = self._find(image)
            if target == root:
                return
            self._union(root, target)
            return
        self._binding[root] = image
        self.bindings += 1
        self._notify(root)

    def _union(self, eliminated: UVar, kept: UVar) -> None:
        """Point ``eliminated`` at ``kept``; rank stays a height bound."""
        self._parent[eliminated] = kept
        rank = self._rank
        kept_rank = rank.get(kept, 0)
        eliminated_rank = rank.get(eliminated, 0)
        if kept_rank <= eliminated_rank:
            rank[kept] = eliminated_rank + 1
        self.bindings += 1
        self._notify(eliminated)

    def _notify(self, variable: UVar) -> None:
        callback = self.on_bind
        if callback is not None:
            callback(variable)

    def _bind_var_var(self, left: UVar, right: UVar) -> None:
        """Rule eqvar: the less restrictive variable is substituted away;
        among equal sorts, the deeper one (to avoid needless promotion).
        On a full sort-and-level tie the choice is semantically free, so
        union by rank keeps the find trees shallow."""
        if left.sort < right.sort:
            left, right = right, left
        elif left.sort == right.sort and left.level < right.level:
            left, right = right, left
        # ``left`` is now the variable to eliminate.
        if right.level > left.level:
            # Equal sorts cannot reach here (ordering above); a more
            # restrictive but deeper variable must be promoted first.
            promoted = self.fresh(right.sort, left.level)
            self._union(right, promoted)
            right = promoted
        if left.sort is right.sort and left.level == right.level:
            if self._rank.get(right, 0) < self._rank.get(left, 0):
                left, right = right, left
        self._union(left, right)

    def _enforce_sort(self, variable: UVar, type_: Type) -> Type:
        """Rules eqvar/eqfully: make the type respect the variable's sort."""
        if variable.sort is Sort.U:
            return type_
        if isinstance(type_, Forall):
            raise SortError(variable, type_, variable.sort)
        if variable.sort is Sort.T:
            return type_
        # Sort.M — demote every unification variable in the type (eqfully)
        # and reject any quantifier hiding under a constructor.
        if _mentions_forall(type_):
            raise SortError(variable, type_, Sort.M)
        mapping: dict[UVar, Type] = {}
        for inner in self.fuv_of(type_):
            if inner.sort is not Sort.M:
                demoted = self.fresh(Sort.M, inner.level)
                self._union(inner, demoted)
                mapping[inner] = demoted
        return subst_uvars(mapping, type_) if mapping else type_

    def _promote(self, variable: UVar, type_: Type) -> Type:
        """Rule float: deeper unification variables in the image of an
        outer variable are replaced by fresh outer ones."""
        mapping: dict[UVar, Type] = {}
        for inner in self.fuv_of(type_):
            if inner.level > variable.level:
                promoted = self.fresh(inner.sort, variable.level)
                self._union(inner, promoted)
                mapping[inner] = promoted
        return subst_uvars(mapping, type_) if mapping else type_

    def _check_skolems(self, variable: UVar, type_: Type) -> None:
        for name in self.ftv_of(type_):
            if self.skolem_level(name) > variable.level:
                raise SkolemEscapeError(name, type_)


def _mentions_forall(type_: Type) -> bool:
    stack: list[Type] = [type_]
    while stack:
        node = stack.pop()
        if isinstance(node, Forall):
            return True
        if isinstance(node, TCon):
            stack.extend(node.args)
    return False
