"""Term syntax of the GI source language (Figure 3, extended in Fig 11).

Expressions::

    e ::= x                        variable (a nullary application)
        | e0 e1 ... en             n-ary application
        | λx. e                    un-annotated lambda
        | λ(x :: σ). e             annotated lambda
        | (e0 e1 ... en :: σ)      annotated application
        | let x = e1 in e2
        | case e0 of { K x̄ -> e ; ... }
        | literal                  Int / Bool / Char / String literals

Application is *n-ary*: :class:`App` stores a head (never itself an
:class:`App`; the smart constructor :func:`app` flattens) plus a tuple of
arguments.  A lone variable is treated as a nullary application by the
typing rules, not by the syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.types import BOOL, CHAR, INT, STRING, Type


@dataclass(frozen=True)
class Term:
    """Base class of all term forms."""

    def __str__(self) -> str:
        from repro.syntax.pretty import pretty_term

        return pretty_term(self)


@dataclass(frozen=True)
class Var(Term):
    """A term variable occurrence."""

    name: str


@dataclass(frozen=True)
class Lit(Term):
    """A literal with a built-in type."""

    value: object

    # Python's ``True == 1`` (and ``hash(True) == hash(1)``) would make
    # the dataclass equality conflate ``Lit(True)`` with ``Lit(1)`` —
    # two terms that infer to *different* types — poisoning any
    # term-keyed cache or structural comparison (found by the
    # conformance fuzzer).  Equality must observe the value's type.
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Lit)
            and type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((Lit, type(self.value).__name__, self.value))

    @property
    def type_(self) -> Type:
        if isinstance(self.value, bool):
            return BOOL
        if isinstance(self.value, int):
            return INT
        if isinstance(self.value, str) and len(self.value) == 1:
            return CHAR
        if isinstance(self.value, str):
            return STRING
        raise TypeError(f"unsupported literal: {self.value!r}")


@dataclass(frozen=True)
class App(Term):
    """An n-ary application ``e0 e1 ... en`` (n ≥ 1).

    The head is never an :class:`App`: we always take as many arguments as
    possible, maximising the opportunities for guardedness (Section 3.2).
    """

    head: Term
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if not self.args:
            raise ValueError("App requires at least one argument; use the head alone")
        if isinstance(self.head, App):
            raise ValueError("App head must not itself be an App; use app()")


def app(head: Term, *arguments: Term) -> Term:
    """Build an application, flattening nested heads into one n-ary node."""
    if not arguments:
        return head
    if isinstance(head, App):
        return App(head.head, head.args + tuple(arguments))
    return App(head, tuple(arguments))


@dataclass(frozen=True)
class Lam(Term):
    """An un-annotated lambda ``λx. e``; the binder gets a fully
    monomorphic type (the Lambda Rule, Section 2.3)."""

    var: str
    body: Term


@dataclass(frozen=True)
class AnnLam(Term):
    """An annotated lambda ``λ(x :: σ). e``."""

    var: str
    annotation: Type
    body: Term


@dataclass(frozen=True)
class Ann(Term):
    """An annotated (possibly nullary) application ``(e :: σ)``."""

    expr: Term
    annotation: Type


@dataclass(frozen=True)
class Let(Term):
    """``let x = e1 in e2`` — no implicit generalisation (Section 3.5)."""

    var: str
    bound: Term
    body: Term


@dataclass(frozen=True)
class CaseAlt:
    """One alternative ``K x1 ... xn -> e`` of a case expression."""

    constructor: str
    binders: tuple[str, ...]
    rhs: Term

    def __post_init__(self) -> None:
        if not isinstance(self.binders, tuple):
            object.__setattr__(self, "binders", tuple(self.binders))


@dataclass(frozen=True)
class Case(Term):
    """``case e0 of { alts }`` (Appendix A)."""

    scrutinee: Term
    alts: tuple[CaseAlt, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.alts, tuple):
            object.__setattr__(self, "alts", tuple(self.alts))
        if not self.alts:
            raise ValueError("case expression needs at least one alternative")


def lam(*binders_and_body) -> Term:
    """Convenience: ``lam('x', 'y', body)`` builds nested lambdas."""
    *binders, body = binders_and_body
    if not binders:
        raise ValueError("lam() needs at least one binder")
    result = body
    for binder in reversed(binders):
        if isinstance(binder, tuple):
            name, annotation = binder
            result = AnnLam(name, annotation, result)
        else:
            result = Lam(binder, result)
    return result


def free_vars(term: Term) -> set[str]:
    """Free term variables of an expression."""
    result: set[str] = set()
    _collect_free(term, frozenset(), result)
    return result


def _collect_free(term: Term, bound: frozenset[str], out: set[str]) -> None:
    if isinstance(term, Var):
        if term.name not in bound:
            out.add(term.name)
    elif isinstance(term, Lit):
        pass
    elif isinstance(term, App):
        _collect_free(term.head, bound, out)
        for argument in term.args:
            _collect_free(argument, bound, out)
    elif isinstance(term, Lam):
        _collect_free(term.body, bound | {term.var}, out)
    elif isinstance(term, AnnLam):
        _collect_free(term.body, bound | {term.var}, out)
    elif isinstance(term, Ann):
        _collect_free(term.expr, bound, out)
    elif isinstance(term, Let):
        _collect_free(term.bound, bound, out)
        _collect_free(term.body, bound | {term.var}, out)
    elif isinstance(term, Case):
        _collect_free(term.scrutinee, bound, out)
        for alt in term.alts:
            _collect_free(alt.rhs, bound | set(alt.binders), out)
    else:
        raise TypeError(f"unknown term node: {term!r}")


def term_size(term: Term) -> int:
    """Number of AST nodes."""
    return sum(1 for _ in walk_terms(term))


def walk_terms(term: Term) -> Iterator[Term]:
    """Pre-order traversal of all term nodes."""
    yield term
    if isinstance(term, App):
        yield from walk_terms(term.head)
        for argument in term.args:
            yield from walk_terms(argument)
    elif isinstance(term, (Lam, AnnLam)):
        yield from walk_terms(term.body)
    elif isinstance(term, Ann):
        yield from walk_terms(term.expr)
    elif isinstance(term, Let):
        yield from walk_terms(term.bound)
        yield from walk_terms(term.body)
    elif isinstance(term, Case):
        yield from walk_terms(term.scrutinee)
        for alt in term.alts:
            yield from walk_terms(alt.rhs)


def subst_type_vars_in_term(mapping, term: Term) -> Term:
    """Rename free (skolem) type variables inside every annotation of a term.

    Used by rule AnnApp: the binders of a type annotation scope over the
    annotated expression (lexically scoped type variables), so when the
    generator freshens them to unique skolems it must apply the same
    renaming to nested annotations.
    """
    from repro.core.types import subst_tvars

    if not mapping:
        return term
    if isinstance(term, (Var, Lit)):
        return term
    if isinstance(term, App):
        return App(
            subst_type_vars_in_term(mapping, term.head),
            tuple(subst_type_vars_in_term(mapping, argument) for argument in term.args),
        )
    if isinstance(term, Lam):
        return Lam(term.var, subst_type_vars_in_term(mapping, term.body))
    if isinstance(term, AnnLam):
        return AnnLam(
            term.var,
            subst_tvars(mapping, term.annotation),
            subst_type_vars_in_term(mapping, term.body),
        )
    if isinstance(term, Ann):
        # A nested `forall` annotation re-binds its variables for the
        # expression it annotates, shadowing the outer scoped variables —
        # the same discipline subst_tvars applies to types (found by the
        # conformance fuzzer: without this, the outer skolem leaks into
        # open annotations under the inner quantifier).
        from repro.core.types import Forall

        inner_mapping = mapping
        if isinstance(term.annotation, Forall) and term.annotation.binders:
            inner_mapping = {
                name: image
                for name, image in mapping.items()
                if name not in term.annotation.binders
            }
        return Ann(
            subst_type_vars_in_term(inner_mapping, term.expr),
            subst_tvars(mapping, term.annotation),
        )
    if isinstance(term, Let):
        return Let(
            term.var,
            subst_type_vars_in_term(mapping, term.bound),
            subst_type_vars_in_term(mapping, term.body),
        )
    if isinstance(term, Case):
        return Case(
            subst_type_vars_in_term(mapping, term.scrutinee),
            tuple(
                CaseAlt(
                    alt.constructor,
                    alt.binders,
                    subst_type_vars_in_term(mapping, alt.rhs),
                )
                for alt in term.alts
            ),
        )
    raise TypeError(f"unknown term node: {term!r}")


def subst_term(term: Term, name: str, replacement: Term) -> Term:
    """Capture-avoiding-enough substitution ``e[x := u]``.

    Used by the metatheory tests (Theorem 3.4); we assume, as those tests
    arrange, that the replacement's free variables are not captured.
    """
    if isinstance(term, Var):
        return replacement if term.name == name else term
    if isinstance(term, Lit):
        return term
    if isinstance(term, App):
        new_head = subst_term(term.head, name, replacement)
        new_args = tuple(subst_term(argument, name, replacement) for argument in term.args)
        return app(new_head, *new_args)
    if isinstance(term, Lam):
        if term.var == name:
            return term
        return Lam(term.var, subst_term(term.body, name, replacement))
    if isinstance(term, AnnLam):
        if term.var == name:
            return term
        return AnnLam(term.var, term.annotation, subst_term(term.body, name, replacement))
    if isinstance(term, Ann):
        return Ann(subst_term(term.expr, name, replacement), term.annotation)
    if isinstance(term, Let):
        new_bound = subst_term(term.bound, name, replacement)
        new_body = term.body if term.var == name else subst_term(term.body, name, replacement)
        return Let(term.var, new_bound, new_body)
    if isinstance(term, Case):
        new_scrutinee = subst_term(term.scrutinee, name, replacement)
        new_alts = []
        for alt in term.alts:
            if name in alt.binders:
                new_alts.append(alt)
            else:
                new_alts.append(CaseAlt(alt.constructor, alt.binders, subst_term(alt.rhs, name, replacement)))
        return Case(new_scrutinee, tuple(new_alts))
    raise TypeError(f"unknown term node: {term!r}")
