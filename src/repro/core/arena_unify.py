"""Arena-backed unifier: the substitution store and free-variable
queries of :class:`~repro.core.unify.Unifier` rebuilt over int node ids.

The object-level algorithms — worklist unification, zonk rebuilds,
sort enforcement, promotion, skolem checks — are inherited or copied
verbatim from the base class, so every observable (supply draws, tracer
events, error types, returned object identity for unchanged subtrees)
is byte-identical to the view-layer fallback.  What changes is the
*storage layer*:

* union-find parent/rank/binding live in dense Python lists indexed by
  arena node id (``-1`` = absent), so ``find``/``union``/cleanliness are
  integer loops with no hashing and no per-step allocation;
* free-unification-variable and free-rigid-variable queries delegate to
  the arena's id-level memos (:meth:`Arena.fuv_ids` /
  :meth:`Arena.ftv_names`), which are shared by every consumer of the
  arena rather than per-unifier;
* a parallel id-level API (:meth:`fresh_id`, :meth:`assign_id`,
  :meth:`zonk_id`) lets power callers (benchmarks, batch drivers) run
  whole chains without ever materialising a ``Type`` object.

Identity contract: ``_bnd_obj`` keeps, per representative, the exact
object the base unifier would have stored (zonk results interned through
``self._intern``), so code upstream that relies on ``is``-equality of
zonk output (e.g. ``deep_prenex`` fixed points) behaves identically in
both modes.  The id column ``_bnd`` always describes the same structural
type; pure-id callers never touch the object column.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.arena import TAG_FORALL, TAG_TCON, TAG_TVAR, TAG_UVAR, Arena
from repro.core.errors import OccursCheckError
from repro.core.names import NameSupply
from repro.core.sorts import Sort
from repro.core.types import Forall, InternTable, Pred, TCon, TVar, Type, UVar
from repro.core.unify import SubstitutionView, Unifier

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.tracer import TracerLike
    from repro.robustness.budget import Budget
    from repro.robustness.faultinject import FaultPlan


def arena_enabled(flag: "bool | None" = None) -> bool:
    """Resolve the arena switch: an explicit flag wins, otherwise the
    ``REPRO_ARENA`` environment variable (default on; ``0``/``off``/
    ``false`` select the object-level fallback)."""
    if flag is not None:
        return flag
    import os

    return os.environ.get("REPRO_ARENA", "1").lower() not in ("0", "off", "false")


def make_unifier(
    supply: NameSupply | None = None,
    budget: "Budget | None" = None,
    faults: "FaultPlan | None" = None,
    tracer: "TracerLike | None" = None,
    intern: InternTable | None = None,
    arena: "bool | None" = None,
) -> Unifier:
    """Construct the configured unifier (arena-backed or fallback)."""
    if arena_enabled(arena):
        return ArenaUnifier(
            supply, budget=budget, faults=faults, tracer=tracer, intern=intern
        )
    return Unifier(
        supply, budget=budget, faults=faults, tracer=tracer, intern=intern
    )


class ArenaSubstitutionView(SubstitutionView):
    """The :class:`SubstitutionView` facade over the dense int store."""

    __slots__ = ()

    def __len__(self) -> int:
        unifier = self._unifier
        return unifier._npar + unifier._nbnd

    def __bool__(self) -> bool:
        unifier = self._unifier
        return (unifier._npar + unifier._nbnd) > 0

    def __contains__(self, variable: object) -> bool:
        if not isinstance(variable, UVar):
            return False
        unifier = self._unifier
        nid = unifier._tid(variable)
        return unifier._par[nid] >= 0 or unifier._bnd[nid] >= 0

    def __iter__(self) -> Iterator[UVar]:
        unifier = self._unifier
        view = unifier._arena.view
        par = unifier._par
        bnd = unifier._bnd
        for nid in range(len(par)):
            if par[nid] >= 0:
                yield view(nid)
        for nid in range(len(bnd)):
            if bnd[nid] >= 0:
                yield view(nid)

    def get(self, variable: UVar, default: Type | None = None) -> Type | None:
        unifier = self._unifier
        nid = unifier._tid(variable)
        parent = unifier._par[nid]
        if parent >= 0:
            return unifier._arena.view(parent)
        if unifier._bnd[nid] >= 0:
            return unifier._bound_obj(nid)
        return default


class ArenaUnifier(Unifier):
    """A drop-in :class:`Unifier` whose store is int-indexed.

    The arena is run-local and unbounded: per-run unification variables
    never pressure a capacity-bounded shared table (the shared
    ``intern`` hook is still honoured for zonk-rebuilt nodes, exactly
    like the base class).
    """

    def __init__(
        self,
        supply: NameSupply | None = None,
        budget: "Budget | None" = None,
        faults: "FaultPlan | None" = None,
        tracer: "TracerLike | None" = None,
        intern: InternTable | None = None,
        arena: Arena | None = None,
    ) -> None:
        super().__init__(supply, budget, faults, tracer, intern)
        self._arena = arena if arena is not None else Arena()
        size = len(self._arena)
        self._par: list[int] = [-1] * size
        self._rnk: list[int] = [0] * size
        self._bnd: list[int] = [-1] * size
        self._bnd_obj: dict[int, Type] = {}
        self._fuv_view_cache: dict[int, tuple[UVar, ...]] = {}
        # Nodes with no free unification variables are clean forever —
        # membership here short-circuits the hot clean check in zonk_id.
        self._ground: set[int] = set()
        self._npar = 0
        self._nbnd = 0
        self.subst = ArenaSubstitutionView(self)

    # -- boundary -------------------------------------------------------

    def _grow(self) -> None:
        missing = len(self._arena) - len(self._par)
        if missing > 0:
            self._par.extend([-1] * missing)
            self._rnk.extend([0] * missing)
            self._bnd.extend([-1] * missing)

    def _tid(self, type_: Type) -> int:
        """Node id of a type, encoding it into the arena on first sight."""
        arena = self._arena
        aid = type_.__dict__.get("_aid")
        if aid is not None and aid[0] is arena._token:
            nid = aid[1]
        else:
            nid = arena.add(type_)
        if nid >= len(self._par):
            self._grow()
        return nid

    def _bound_obj(self, root: int) -> Type:
        """The bound image as an object (lazy view when only the id-level
        API has touched this representative)."""
        obj = self._bnd_obj.get(root)
        if obj is None:
            obj = self._arena.view(self._bnd[root])
            self._bnd_obj[root] = obj
        return obj

    # -- substitution ---------------------------------------------------

    def _find_id(self, nid: int) -> int:
        par = self._par
        step = par[nid]
        if step < 0:
            return nid
        root = step
        while True:
            step = par[root]
            if step < 0:
                break
            root = step
        current = nid
        while True:
            step = par[current]
            if step == root:
                break
            par[current] = root
            current = step
        return root

    def _find(self, variable: UVar) -> UVar:
        return self._arena.view(self._find_id(self._tid(variable)))

    def fuv_of(self, type_: Type) -> tuple[UVar, ...]:
        if isinstance(type_, UVar):
            return (type_,)
        if isinstance(type_, TVar):
            return ()
        tid = self._tid(type_)
        cached = self._fuv_view_cache.get(tid)
        if cached is None:
            view = self._arena.view
            cached = tuple(view(i) for i in self._arena.fuv_ids(tid))
            self._fuv_view_cache[tid] = cached
        return cached

    def ftv_of(self, type_: Type) -> tuple[str, ...]:
        if isinstance(type_, TVar):
            return (type_.name,)
        if isinstance(type_, UVar):
            return ()
        return self._arena.ftv_names(self._tid(type_))

    def _clean_id(self, nid: int) -> bool:
        fuv = self._arena.fuv_ids(nid)
        if not fuv:
            self._ground.add(nid)
            return True
        par = self._par
        bnd = self._bnd
        for variable in fuv:
            if par[variable] >= 0 or bnd[variable] >= 0:
                return False
        return True

    def _is_clean(self, type_: Type) -> bool:
        return self._clean_id(self._tid(type_))

    def zonk(self, type_: Type) -> Type:
        if isinstance(type_, UVar):
            root = self._find_id(self._tid(type_))
            bid = self._bnd[root]
            if bid < 0:
                return self._arena.view(root)
            if self._clean_id(bid):
                return self._bound_obj(root)
            expanded = self._zonk_rebuild(self._bound_obj(root))
            self._bnd_obj[root] = expanded
            self._bnd[root] = self._tid(expanded)
            return expanded
        if isinstance(type_, TVar):
            return type_
        if self._clean_id(self._tid(type_)):
            return type_
        return self._zonk_rebuild(type_)

    def _zonk_rebuild(self, type_: Type) -> Type:
        """Base algorithm verbatim; only the store reads/writes differ.

        Frame kinds: 0 = visit, 1 = build, 2 = memo (payload is the
        representative's node id).
        """
        intern = self._intern.intern
        bnd = self._bnd
        results: list[Type] = []
        stack: list[tuple[int, object]] = [(0, type_)]
        while stack:
            kind, node = stack.pop()
            if kind == 0:
                if isinstance(node, UVar):
                    root = self._find_id(self._tid(node))
                    bid = bnd[root]
                    if bid < 0:
                        results.append(self._arena.view(root))
                    elif self._clean_id(bid):
                        results.append(self._bound_obj(root))
                    else:
                        stack.append((2, root))
                        stack.append((0, self._bound_obj(root)))
                elif isinstance(node, TVar):
                    results.append(node)
                elif isinstance(node, TCon):
                    stack.append((1, node))
                    for argument in reversed(node.args):
                        stack.append((0, argument))
                elif isinstance(node, Forall):
                    stack.append((1, node))
                    stack.append((0, node.body))
                    for predicate in reversed(node.context):
                        for argument in reversed(predicate.args):
                            stack.append((0, argument))
                else:
                    raise TypeError(f"unknown type node: {node!r}")
            elif kind == 1:
                if isinstance(node, TCon):
                    count = len(node.args)
                    if count:
                        args = tuple(results[-count:])
                        del results[-count:]
                        if all(a is b for a, b in zip(args, node.args)):
                            results.append(node)
                        else:
                            results.append(intern(TCon(node.name, args)))
                    else:
                        results.append(node)
                else:  # Forall
                    body = results.pop()
                    count = sum(len(p.args) for p in node.context)
                    flat = results[-count:] if count else []
                    if count:
                        del results[-count:]
                    changed = body is not node.body
                    context: list[Pred] = []
                    index = 0
                    for predicate in node.context:
                        width = len(predicate.args)
                        new_args = tuple(flat[index : index + width])
                        index += width
                        if all(a is b for a, b in zip(new_args, predicate.args)):
                            context.append(predicate)
                        else:
                            context.append(Pred(predicate.class_name, new_args))
                            changed = True
                    if changed:
                        results.append(
                            intern(Forall(node.binders, body, tuple(context)))
                        )
                    else:
                        results.append(node)
            else:  # memo: write the expansion back into the store
                expansion = results[-1]
                self._bnd_obj[node] = expansion
                bnd[node] = self._tid(expansion)
        return results[0]

    def zonk_head(self, type_: Type) -> Type:
        if not isinstance(type_, UVar):
            return type_
        root = self._find_id(self._tid(type_))
        if self._bnd[root] < 0:
            return self._arena.view(root)
        return self._bound_obj(root)

    # -- variable binding -----------------------------------------------

    def bind(
        self, variable: UVar, type_: Type, resolver=None
    ) -> None:
        root_id = self._find_id(self._tid(variable))
        root = self._arena.view(root_id)
        type_ = self.zonk(type_)
        if type_ == root:
            return
        if isinstance(type_, UVar):
            self._bind_var_var(root, type_)
            return
        if root_id in self._arena.fuv_ids(self._tid(type_)):
            raise OccursCheckError(root, type_)
        type_ = self._enforce_sort(root, type_)
        type_ = self._promote(root, type_)
        self._check_skolems(root, type_)
        if self._bnd[root_id] < 0:
            self._nbnd += 1
        self._bnd[root_id] = self._tid(type_)
        self._bnd_obj[root_id] = type_
        self.bindings += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.inc("unify.binds")
            self.tracer.event(
                "unify.bind",
                var=str(root),
                type=str(type_),
                sort=root.sort.symbol,
                level=root.level,
            )
        self._notify(root)

    def assign(self, variable: UVar, image: Type) -> None:
        root_id = self._find_id(self._tid(variable))
        if isinstance(image, UVar):
            target = self._find_id(self._tid(image))
            if target == root_id:
                return
            self._union_ids(root_id, target)
            callback = self.on_bind
            if callback is not None:
                callback(self._arena.view(root_id))
            return
        if self._bnd[root_id] < 0:
            self._nbnd += 1
        self._bnd[root_id] = self._tid(image)
        self._bnd_obj[root_id] = image
        self.bindings += 1
        callback = self.on_bind
        if callback is not None:
            callback(self._arena.view(root_id))

    def _union_ids(self, eliminated: int, kept: int) -> None:
        if self._par[eliminated] < 0:
            self._npar += 1
        self._par[eliminated] = kept
        rnk = self._rnk
        if rnk[kept] <= rnk[eliminated]:
            rnk[kept] = rnk[eliminated] + 1
        self.bindings += 1

    def _union(self, eliminated: UVar, kept: UVar) -> None:
        self._union_ids(self._tid(eliminated), self._tid(kept))
        self._notify(eliminated)

    def _bind_var_var(self, left: UVar, right: UVar) -> None:
        # Base logic verbatim; rank lives in the int column.
        if left.sort < right.sort:
            left, right = right, left
        elif left.sort == right.sort and left.level < right.level:
            left, right = right, left
        if right.level > left.level:
            promoted = self.fresh(right.sort, left.level)
            self._union(right, promoted)
            right = promoted
        if left.sort is right.sort and left.level == right.level:
            rnk = self._rnk
            if rnk[self._tid(right)] < rnk[self._tid(left)]:
                left, right = right, left
        self._union(left, right)

    # -- id-level fast path ---------------------------------------------

    def fresh_id(self, sort: Sort, level: int) -> int:
        """A fresh unification variable as a bare node id."""
        nid = self._arena.uvar(self.supply.fresh(), sort, level)
        if nid >= len(self._par):
            self._grow()
        return nid

    def assign_id(self, var_id: int, image_id: int) -> None:
        """Id-level :meth:`assign`: no sort/level/occurs checks, unions
        var→var images and stores anything else, zero allocation when no
        wake-up callback is attached."""
        par = self._par
        if image_id >= len(par):
            self._grow()
            par = self._par
        root = var_id
        step = par[root]
        while step >= 0:
            root = step
            step = par[root]
        if par[var_id] >= 0 and par[var_id] != root:
            self._find_id(var_id)
        if self._arena.tags[image_id] == TAG_UVAR:
            target = image_id
            step = par[target]
            while step >= 0:
                target = step
                step = par[target]
            if target == root:
                return
            if par[root] < 0:
                self._npar += 1
            par[root] = target
            rnk = self._rnk
            if rnk[target] <= rnk[root]:
                rnk[target] = rnk[root] + 1
            self.bindings += 1
        else:
            if self._bnd[root] < 0:
                self._nbnd += 1
            self._bnd[root] = image_id
            self._bnd_obj.pop(root, None)
            self.bindings += 1
        callback = self.on_bind
        if callback is not None:
            callback(self._arena.view(root))

    def zonk_id(self, nid: int) -> int:
        """Fully apply the substitution at the id level.

        The traversal is the same visit/build/memo machine as the object
        zonk, but every frame is a pair of ints and rebuilt nodes go
        straight through the arena constructors — no ``Type`` objects,
        no hashing, no per-step allocation beyond the result tuples.
        """
        arena = self._arena
        par = self._par
        if len(par) < len(arena):
            self._grow()
            par = self._par
        tags = arena.tags
        bnd = self._bnd
        if tags[nid] == TAG_UVAR:
            # Fast path for the dominant query shape — a bare variable
            # whose image (if any) is already fully zonked: one inlined
            # find with path compression, no frame machine.
            root = nid
            step = par[root]
            while step >= 0:
                root = step
                step = par[root]
            if par[nid] >= 0 and par[nid] != root:
                current = nid
                while True:
                    step = par[current]
                    if step == root:
                        break
                    par[current] = root
                    current = step
            bid = bnd[root]
            if bid < 0:
                return root
            if bid in self._ground or self._clean_id(bid):
                return bid
        results: list[int] = []
        stack: list[tuple[int, int]] = [(0, nid)]
        while stack:
            kind, node = stack.pop()
            if kind == 0:
                tag = tags[node]
                if tag == TAG_UVAR:
                    root = self._find_id(node)
                    bid = bnd[root]
                    if bid < 0:
                        results.append(root)
                    elif self._clean_id(bid):
                        results.append(bid)
                    else:
                        stack.append((2, root))
                        stack.append((0, bid))
                elif tag == TAG_TVAR:
                    results.append(node)
                elif self._clean_id(node):
                    results.append(node)
                elif tag == TAG_TCON:
                    stack.append((1, node))
                    start, count = arena.y[node], arena.z[node]
                    kids = arena.kids
                    for index in range(start + count - 1, start - 1, -1):
                        stack.append((0, kids[index]))
                else:  # FORALL
                    stack.append((1, node))
                    _, body, preds = arena._forall_parts(node)
                    stack.append((0, body))
                    for _, args in reversed(preds):
                        for child in reversed(args):
                            stack.append((0, child))
            elif kind == 1:
                tag = tags[node]
                if tag == TAG_TCON:
                    count = arena.z[node]
                    args = tuple(results[-count:]) if count else ()
                    if count:
                        del results[-count:]
                    start = arena.y[node]
                    kids = arena.kids
                    if all(args[i] == kids[start + i] for i in range(count)):
                        results.append(node)
                    else:
                        results.append(arena.tcon_by_sid(arena.x[node], args))
                        if len(self._par) < len(arena):
                            self._grow()
                else:  # FORALL
                    binder_ids, old_body, preds = arena._forall_parts(node)
                    body = results.pop()
                    n_args = sum(len(args) for _, args in preds)
                    index = len(results) - n_args
                    flat = results[index:]
                    del results[index:]
                    changed = body != old_body
                    new_preds: list[tuple[int, tuple[int, ...]]] = []
                    offset = 0
                    for class_id, args in preds:
                        width = len(args)
                        new_args = tuple(flat[offset : offset + width])
                        offset += width
                        if new_args != args:
                            changed = True
                        new_preds.append((class_id, new_args))
                    if changed:
                        results.append(
                            arena.forall_node(binder_ids, body, tuple(new_preds))
                        )
                        if len(self._par) < len(arena):
                            self._grow()
                    else:
                        results.append(node)
            else:  # memo
                expansion = results[-1]
                bnd[node] = expansion
                self._bnd_obj.pop(node, None)
        return results[0]

    def zonk_ids(self, ids) -> list[int]:
        """Batch :meth:`zonk_id` — the shape generalisation sweeps want
        (zonk every free variable of a scope in one call).  The bare-
        variable fast path is inlined once for the whole batch, so the
        per-id cost is a handful of array reads; anything structured
        falls back to the frame machine."""
        arena = self._arena
        par = self._par
        if len(par) < len(arena):
            self._grow()
            par = self._par
        tags = arena.tags
        bnd = self._bnd
        ground = self._ground
        zonk = self.zonk_id
        out: list[int] = []
        append = out.append
        for nid in ids:
            if tags[nid] == TAG_UVAR:
                root = nid
                step = par[root]
                while step >= 0:
                    root = step
                    step = par[root]
                if par[nid] >= 0 and par[nid] != root:
                    current = nid
                    while True:
                        step = par[current]
                        if step == root:
                            break
                        par[current] = root
                        current = step
                bid = bnd[root]
                if bid < 0:
                    append(root)
                    continue
                if bid in ground or self._clean_id(bid):
                    append(bid)
                    continue
            append(zonk(nid))
        return out
