"""Evidence recording for elaboration into System F.

Constraint generation tags every instantiation (``⩽``), generalisation
(``⪯``) and quantification site with the *path* of the term node it came
from (a tuple of child indices from the root).  While solving, the solver
records:

* for each instantiation constraint, the interleaved trace of type
  arguments chosen by rule inst∀l and explicit arguments consumed by rule
  inst→ — exactly the shape ``ψ1 e1 ψ2 e2 ... ψr`` of Figure 16;
* for each generalisation constraint, the skolems introduced by rule
  inst∀r (the ``Λb̄`` binders of rules ArgGen / VarGen in Figure 16) and,
  for VarGen, the unrestricted variables used to pre-instantiate the
  variable's rank-1 type;
* for each quantification constraint, nothing extra (its binders are the
  user-written ones, already known from the annotation).

After solving, all recorded types are zonked through the final
substitution, so elaboration sees ground System F types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.types import Type, UVar

Path = tuple[int, ...]


@dataclass
class TypeArgs:
    """``ψ``: a block of type arguments chosen by one inst∀l step."""

    types: list[Type]


@dataclass
class TakeArg:
    """Marker: the next explicit argument is consumed here (rule inst→)."""


InstEvent = Union[TypeArgs, TakeArg]


@dataclass
class GenEvidence:
    """What happened when a generalisation constraint was discharged."""

    skolems: list[str] = field(default_factory=list)
    star: bool = False
    """Whether the argument was typed by rule VarGen (bit ⋆)."""
    # VarGen only: the unrestricted variables substituted for the rank-1
    # binders ``p̄`` (in binder order), to become type applications.
    star_type_args: list[Type] = field(default_factory=list)
    # ArgGen release: type arguments used to instantiate a top-level
    # quantifier of the scheme's own type (only when the scheme type is an
    # annotation result ``∀ā.η`` that is released against a mono type).
    release_type_args: list[Type] = field(default_factory=list)


@dataclass
class CaseEvidence:
    """Instantiation data for one case expression (Figure 12)."""

    tycon_args: list[Type] = field(default_factory=list)
    alt_skolems: list[list[str]] = field(default_factory=list)
    field_types: list[list[Type]] = field(default_factory=list)


@dataclass
class EvidenceStore:
    """All evidence collected for one inference run, keyed by term path."""

    inst_traces: dict[Path, list[InstEvent]] = field(default_factory=dict)
    gen_infos: dict = field(default_factory=dict)
    lam_binders: dict[Path, Type] = field(default_factory=dict)
    let_types: dict[Path, Type] = field(default_factory=dict)
    case_infos: dict[Path, CaseEvidence] = field(default_factory=dict)

    def inst_trace(self, path: Path) -> list[InstEvent]:
        return self.inst_traces.setdefault(path, [])

    def gen_info(self, path) -> GenEvidence:
        return self.gen_infos.setdefault(path, GenEvidence())

    def case_info(self, path: Path) -> CaseEvidence:
        return self.case_infos.setdefault(path, CaseEvidence())

    def zonk(self, zonker) -> None:
        """Apply a type-normalising function to every recorded type."""
        for trace in self.inst_traces.values():
            for event in trace:
                if isinstance(event, TypeArgs):
                    event.types = [zonker(type_) for type_ in event.types]
        for info in self.gen_infos.values():
            info.star_type_args = [zonker(type_) for type_ in info.star_type_args]
            info.release_type_args = [zonker(type_) for type_ in info.release_type_args]
        for path, type_ in self.lam_binders.items():
            self.lam_binders[path] = zonker(type_)
        for path, type_ in self.let_types.items():
            self.let_types[path] = zonker(type_)
        for info in self.case_infos.values():
            info.tycon_args = [zonker(type_) for type_ in info.tycon_args]
            info.field_types = [
                [zonker(type_) for type_ in fields] for fields in info.field_types
            ]
