"""Instantiation policies — the eager/lazy × deep/shallow design space.

The paper fixes one instantiation discipline: guarded instantiation at
application spines, with *shallow* skolemisation (rule inst∀r opens only
the top-level binders) and *eager* instantiation of nullary variable
occurrences.  "Seeking Stability by being Lazy and Shallow" (Bottu &
Eisenberg, Haskell 2021) observes that this is a **policy**, one point in
a 2×2 grid, and that each axis has testable stability consequences:

* ``speed`` — *eager* instantiates a variable's quantifiers the moment it
  is mentioned; *lazy* keeps the polytype until an elimination context
  forces instantiation.  GI's constraint generator is already lazy at
  application heads and arguments (``⊢fun`` and rule ArgGen carry σ
  verbatim); the one remaining eager site whose effect survives
  generalisation is the ``let`` rule, because GI deliberately does *not*
  re-generalise let bindings (Section 3.5).  ``speed="lazy"`` therefore
  makes a let-bound *variable* an alias for its environment polytype,
  which is exactly what makes let-inlining and let-extraction of a
  variable type-preserving (the stability paper's §4.2).
* ``depth`` — *shallow* instantiates/skolemises only top-level
  quantifiers; *deep* first hoists quantifiers buried to the right of
  arrows into a prenex (GHC ≤ 8.10's ``deeplyInstantiate`` /
  ``deeplySkolemise``, resurrected as ``-XDeepSubsumption``).  Deep
  makes eta-expansion type-preserving even for types like
  ``Int -> ∀a. a -> a``, at the cost of breaking η-irrelevance of
  runtime semantics and stability under signature inlining.

The named policies:

=================  ==============================================
``eager-shallow``  the paper's system and this repo's default —
                   also GHC 9.0+ (simplified subsumption)
``eager-deep``     GHC ≤ 8.10 (deep subsumption)
``lazy-shallow``   the stability paper's recommendation
``lazy-deep``      the remaining corner, for completeness
=================  ==============================================

``DEFAULT_POLICY`` (eager-shallow) is bit-for-bit the behaviour the rest
of the code base had before this knob existed; every other value is an
experimental variant measured descriptively by the evalsuite matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import (
    Forall,
    Pred,
    TVar,
    Type,
    arrow_parts,
    forall,
    ftv,
    fun,
    is_arrow,
    subst_tvars,
)

SPEEDS = ("eager", "lazy")
DEPTHS = ("shallow", "deep")


@dataclass(frozen=True)
class InstantiationPolicy:
    """One point in the eager/lazy × deep/shallow grid."""

    speed: str
    depth: str

    def __post_init__(self) -> None:
        if self.speed not in SPEEDS:
            raise ValueError(f"speed must be one of {SPEEDS}, got {self.speed!r}")
        if self.depth not in DEPTHS:
            raise ValueError(f"depth must be one of {DEPTHS}, got {self.depth!r}")

    @property
    def name(self) -> str:
        return f"{self.speed}-{self.depth}"

    @property
    def lazy(self) -> bool:
        return self.speed == "lazy"

    @property
    def deep(self) -> bool:
        return self.depth == "deep"

    def __str__(self) -> str:
        return self.name


EAGER_SHALLOW = InstantiationPolicy("eager", "shallow")
EAGER_DEEP = InstantiationPolicy("eager", "deep")
LAZY_SHALLOW = InstantiationPolicy("lazy", "shallow")
LAZY_DEEP = InstantiationPolicy("lazy", "deep")

DEFAULT_POLICY = EAGER_SHALLOW
"""The reference configuration — identical to pre-knob behaviour."""

POLICIES: tuple[InstantiationPolicy, ...] = (
    EAGER_SHALLOW,
    EAGER_DEEP,
    LAZY_SHALLOW,
    LAZY_DEEP,
)

POLICY_NAMES: tuple[str, ...] = tuple(policy.name for policy in POLICIES)

_BY_NAME = {policy.name: policy for policy in POLICIES}


def parse_policy(name: str) -> InstantiationPolicy:
    """Look up a policy by its ``speed-depth`` name.

    Raises :class:`ValueError` listing the valid names — callers (CLI,
    REPL, serve) reuse the message verbatim.
    """
    policy = _BY_NAME.get(name)
    if policy is None:
        raise ValueError(
            f"unknown policy {name!r} (available: {', '.join(POLICY_NAMES)})"
        )
    return policy


# ----------------------------------------------------------------------
# Deep skolemisation/instantiation support
# ----------------------------------------------------------------------


def has_nested_forall(type_: Type) -> bool:
    """Whether quantifiers hide to the right of arrows (so
    :func:`deep_prenex` would change the type)."""
    seen_top = False
    current = type_
    while True:
        if isinstance(current, Forall):
            if seen_top:
                return True
            current = current.body
        elif is_arrow(current):
            seen_top = True
            _, current = arrow_parts(current)
        else:
            return False


def deep_prenex(type_: Type, intern=None) -> Type:
    """Hoist quantifiers (and their contexts) buried to the right of
    arrows into a single prenex — GHC's ``deeplySkolemise`` shape.

    Only *result* positions of arrows are walked: quantifiers inside
    argument types or under other constructors stay put (they bound
    higher-rank arguments, which deep subsumption never opens).  Hoisted
    binders are freshened against every name already in scope so the
    rewrite is capture-avoiding; when nothing needs hoisting the input is
    returned unchanged (object identity), keeping the eager paths free of
    re-allocation.

    The fixed point is detected *by identity* (``deep_prenex(t) is t``),
    so a reconstructed result must itself be canonical: pass the run's
    ``intern`` table (:class:`~repro.core.types.InternTable` or the
    arena-backed variant) and the rebuilt prenex is re-interned, keeping
    object identity equal to structural identity even when the same type
    is hoisted again through a second, fresh-but-shared table (the serve
    multi-session case).  Without a table the rebuild is returned as
    constructed — correct, but a fresh object per call.
    """
    if not has_nested_forall(type_):
        return type_
    used = set(ftv(type_))
    binders: list[str] = []
    context: list[Pred] = []
    spine: list[Type] = []
    current = type_
    while True:
        if isinstance(current, Forall):
            renaming: dict[str, Type] = {}
            for binder in current.binders:
                name = binder
                if name in used:
                    suffix = 1
                    while f"{binder}{suffix}" in used:
                        suffix += 1
                    name = f"{binder}{suffix}"
                    renaming[binder] = TVar(name)
                used.add(name)
                binders.append(name)
            for predicate in current.context:
                context.append(
                    Pred(
                        predicate.class_name,
                        tuple(
                            subst_tvars(renaming, argument)
                            for argument in predicate.args
                        ),
                    )
                )
            current = subst_tvars(renaming, current.body)
        elif is_arrow(current):
            argument, result = arrow_parts(current)
            spine.append(argument)
            current = result
        else:
            break
    body = current
    for argument in reversed(spine):
        body = fun(argument, body)
    result = forall(binders, body, tuple(context))
    return intern.intern(result) if intern is not None else result
