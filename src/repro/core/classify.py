"""Guardedness classification — the ``σ ▷s_ω Δ`` judgements of Figures 4–5.

These implement the Instantiation Rule of Section 2.1: given the type of a
function and the number (and kind) of arguments it is applied to, compute a
*sort assignment* ``Δ`` saying how each quantified variable may be
instantiated:

* ``U`` (unrestricted) if the variable occurs **under a type constructor**
  (guarded) in one of the first ``n`` argument types — rule ArgGuard;
* ``T`` (top-level monomorphic) if it occurs naked in an argument — rule
  ArgTyVar;
* ``M`` (fully monomorphic) if it only occurs in the result — rule ArgsRes
  with ``s = m`` (or ``s`` itself for annotated applications).

The bit vector ``ω`` has one entry per argument: ``•`` (GEN) for arguments
typed with rule ArgGen and ``⋆`` (STAR) for bare-variable arguments typed
with rule VarGen.  Rule ArgsStar *resets* the variables of a ⋆ argument to
``M`` so that an impredicatively pre-instantiated variable argument cannot
itself justify impredicative instantiation of the others (Section 3.3).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.core.sorts import Sort, SortAssignment
from repro.core.types import Forall, TCon, TVar, Type, UVar, ftv, is_arrow


class Bit(enum.Enum):
    """One element of the vector ``ω``: how the argument was typed."""

    GEN = "•"
    STAR = "⋆"

    def __str__(self) -> str:
        return self.value


def classify_argument(type_: Type) -> SortAssignment:
    """The judgement ``σ ▷g Δ`` for a single argument position.

    * ArgPoly strips quantifiers (their variables are not ours to solve);
    * ArgGuard maps every variable under a constructor application to ``U``
      (the function arrow counts: it is an ordinary constructor);
    * ArgTyVar maps a naked variable to ``T``.
    """
    if isinstance(type_, Forall):
        return classify_argument(type_.body).without(type_.binders)
    if isinstance(type_, TVar):
        return SortAssignment({type_.name: Sort.T})
    if isinstance(type_, UVar):
        # Unification variables are not subject to classification; they do
        # not appear in Δ (classification only ever decides skolem binders).
        return SortAssignment()
    if isinstance(type_, TCon):
        return SortAssignment({name: Sort.U for name in ftv(type_)})
    raise TypeError(f"unknown type node: {type_!r}")


def classify(type_: Type, sort: Sort, bits: Sequence[Bit]) -> SortAssignment:
    """The judgement ``σ ▷s_ω Δ`` (Figures 4 and 5).

    ``type_`` is the (possibly quantified) function type, ``sort`` the sort
    parameter ``s`` (``M`` for plain applications, ``U`` for annotated
    ones), and ``bits`` the vector ``ω`` with one entry per argument.
    """
    bits = list(bits)
    if isinstance(type_, Forall):
        # ArgsPoly: strip the binders, classify the body, forget them.
        inner = classify(type_.body, sort, bits)
        return inner.without(type_.binders)
    if not bits:
        # ArgsRes: everything left in the result is classified ``s``.
        return SortAssignment({name: sort for name in ftv(type_)})
    if is_arrow(type_):
        assert isinstance(type_, TCon)
        argument, rest = type_.args
        if bits[0] is Bit.STAR:
            # ArgsStar.  A ⋆ argument was typed by rule VarGen, whose
            # unrestricted pre-instantiation must not by itself justify
            # impredicative instantiation: its *naked* variables are reset
            # to ``m`` (so ``choose [] []`` stays fully monomorphic and no
            # impredicativity is ever guessed, Theorem 3.2).  Guarded
            # occurrences still classify ``u`` — the reading required by
            # the paper's own examples: ``map head (single ids)`` (C10)
            # needs ``q``, which occurs only under the arrow of the
            # ⋆-argument ``head``, to admit a polymorphic instantiation.
            head = SortAssignment(
                {
                    name: (Sort.M if sort is Sort.T else sort)
                    for name, sort in classify_argument(argument).items()
                }
            )
        else:
            # ArgsArrow: classify the argument with ▷g.
            head = classify_argument(argument)
        tail = classify(rest, sort, bits[1:])
        return head.joined_with(tail)
    # ArgsTyVar (generalised): the function type cannot be split into an
    # arrow although arguments remain; its variables may only be
    # instantiated fully monomorphically.  (For a bare variable this is
    # exactly rule ArgsTyVar; for a non-arrow constructor the subsequent
    # unification with an arrow will fail with a proper type error.)
    return SortAssignment({name: Sort.M for name in ftv(type_)})


def classified_binders(
    type_: Type, sort: Sort, bits: Sequence[Bit], tracer=None
) -> SortAssignment:
    """Sorts for exactly the *top-level binders* of a quantified type.

    This is what rule InstPoly needs: variables of the type that are not
    bound at the top level keep whatever status they already have.  Binders
    that do not receive a classification (impossible given the grammar's
    ``ā ⊆ ftv(µ)`` invariant, but kept safe) default to ``M``.

    ``tracer`` optionally records the classification verdict — the
    invisible ``▷s_ω`` judgement the trace explainer narrates.
    """
    binders, body = (type_.binders, type_.body) if isinstance(type_, Forall) else ((), type_)
    assignment = classify(body, sort, bits)
    result = SortAssignment(
        {name: assignment.get(name, Sort.M) for name in binders}
    )
    if tracer is not None and tracer.enabled:
        tracer.event(
            "classify.binders",
            type=str(type_),
            sort=sort.symbol,
            bits="".join(str(bit) for bit in bits),
            sorts={name: assigned.symbol for name, assigned in result.items()},
        )
    return result
