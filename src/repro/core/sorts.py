"""The three-point sort lattice of GI (Figure 3 of the paper).

Sorts classify types (and unification variables) by how much polymorphism
they may carry:

* ``M`` (written ``m`` in the paper) — *fully monomorphic*: no ``forall``
  anywhere.  These are ordinary Hindley-Milner monotypes.
* ``T`` (``t``) — *top-level monomorphic*: no quantifier at the top of the
  type, but arbitrary polymorphism is allowed under a type constructor
  (e.g. ``[forall a. a -> a]``).
* ``U`` (``u``) — *unrestricted*: any polymorphic type.

They form the total order ``M ⊏ T ⊏ U``.  Classification of a function
type's quantified variables (``repro.core.classify``) produces a *sort
assignment* mapping each variable to the most permissive sort its
occurrences justify; the lattice join is therefore ``max``.
"""

from __future__ import annotations

import enum
from typing import Iterable


class Sort(enum.IntEnum):
    """A sort in the lattice ``M ⊏ T ⊏ U``.

    ``IntEnum`` so that the lattice order coincides with the integer order:
    ``Sort.M < Sort.T < Sort.U``.
    """

    M = 0
    T = 1
    U = 2

    @property
    def symbol(self) -> str:
        """The superscript letter used in the paper (``m``, ``t``, ``u``)."""
        return self.name.lower()

    def join(self, other: "Sort") -> "Sort":
        """Least upper bound: the more permissive of the two sorts."""
        return self if self >= other else other

    def meet(self, other: "Sort") -> "Sort":
        """Greatest lower bound: the more restrictive of the two sorts."""
        return self if self <= other else other

    def permits(self, other: "Sort") -> bool:
        """Whether a variable of this sort may stand for a type of ``other``.

        A unification variable of sort ``s`` may only be unified with types
        that *respect* ``s``; a type respecting a more restrictive sort also
        respects every more permissive one.
        """
        return other <= self


def join_all(sorts: Iterable[Sort]) -> Sort:
    """Join of a collection of sorts; ``M`` (bottom) for the empty one."""
    result = Sort.M
    for sort in sorts:
        result = result.join(sort)
    return result


class SortAssignment(dict):
    """A finite map from type-variable names to sorts (``Δ`` in the paper).

    Joining two assignments (the ``⊔`` of rule ArgsArrow) takes, for each
    variable, the most permissive sort either side justifies: if a variable
    occurs guarded in *some* argument it may be instantiated impredicatively
    even if it also occurs naked elsewhere.
    """

    def joined_with(self, other: "SortAssignment") -> "SortAssignment":
        """Pointwise lattice join of two assignments."""
        result = SortAssignment(self)
        for name, sort in other.items():
            if name in result:
                result[name] = result[name].join(sort)
            else:
                result[name] = sort
        return result

    def without(self, names: Iterable[str]) -> "SortAssignment":
        """The assignment with the given variables removed (``Δ\\a``)."""
        removed = set(names)
        return SortAssignment(
            (name, sort) for name, sort in self.items() if name not in removed
        )

    def overridden_by(self, other: "SortAssignment") -> "SortAssignment":
        """Right-biased override (used by ArgsStar, which *resets* sorts)."""
        result = SortAssignment(self)
        result.update(other)
        return result
